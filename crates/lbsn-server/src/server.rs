//! The LBSN server: registration, the check-in pipeline, and state access.
//!
//! # Concurrency model
//!
//! Server state is lock-striped, not monolithic: users and venues each
//! live in a [`ShardedVec`] — a power-of-two number of independently
//! locked shards, id-hashed — so the §2 check-in pipeline runs in
//! parallel across shards while §3.2-style crawler threads scrape read
//! paths that only touch the shards they need. The deadlock-freedom
//! rules (user shards before venue shards, ascending order within a
//! family, at most one venue shard at a time, side maps as leaf locks)
//! are documented on [`crate::shard`] and in DESIGN.md.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lbsn_geo::{GeoGrid, GeoPoint, Meters};
use lbsn_obs::names::server as obs_names;
use lbsn_obs::{DecisionBuilder, DecisionOutcome, MemFootprint, Registry};
use lbsn_sim::{SimClock, Timestamp, DAY};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::checkin::{
    AdmissionOutcome, CheckinError, CheckinEvidence, CheckinOutcome, CheckinRecord, CheckinRequest,
};
use crate::compact::{ArenaStr, StrArena};
use crate::metrics::ServerMetrics;
use crate::pipeline::{AdmissionPipeline, CheckinVerifier, RuleContext, VerifyContext};
use crate::policy::{DetectorConfig, PolicyConfig};
use crate::shard::{LeafLock, ShardFamily, ShardWriteGuard, ShardedVec, WriteSet};
use crate::user::{User, UserSpec};
use crate::venue::{Venue, VenueCategory, VenueSpec};
use crate::{UserId, VenueId};

/// After this many optimistic lock-set retries (the venue's mayor kept
/// hopping to shards outside the held set), fall back to locking every
/// user shard — slow but guaranteed to converge.
const MAYOR_LOCK_RETRIES: u32 = 3;

/// Minimum sim-clock seconds between periodic memory samples (6
/// virtual hours). Virtual time alone is not enough to pace the sweep:
/// a bench advancing ~90 virtual seconds per check-in would sweep every
/// ~240 ops, and the sweep walks the whole world. The amortization
/// guard below adds the missing dimension.
const MEM_SAMPLE_INTERVAL_SECS: u64 = 6 * 3600;

/// Amortization guard for the periodic sweep: once a sample is due,
/// the sweep waits for one further check-in per this many bytes the
/// *last* sweep accounted. Walking a byte costs well under a
/// nanosecond, so one op per 64 bytes bounds the sweep's amortized
/// cost to a few tens of nanoseconds per check-in — noise against a
/// multi-microsecond check-in, regardless of world size or how fast
/// the caller spins virtual time (the obs-overhead <5% budget holds by
/// construction). The first sweep (cost 0) runs on the first check-in.
const MEM_SWEEP_BYTES_PER_OP: u64 = 64;

/// Specs staged between lock acquisitions by the bulk registration
/// paths. Large enough to amortize locking across a shard's worth of
/// entities, small enough that staging stays cache- and
/// allocation-friendly at paper scale.
const BULK_CHUNK: usize = 65_536;

/// Server-wide configuration: the admission policy plus deployment
/// parameters. Serde-round-trippable, so a whole scenario lives in one
/// JSON file (`policies/default.json` is the committed default policy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// The admission policy: detector thresholds/switches and reward
    /// rules (see [`crate::policy`]).
    pub policy: PolicyConfig,
    /// Length of each venue's public "Who's been here" list. The paper
    /// crawled these lists; their truncation is what makes a user's
    /// *recent check-in* count (Fig 4.1) diverge from their total.
    pub recent_visitors_len: usize,
    /// Lock-stripe width for user and venue state. Rounded up to a
    /// power of two (minimum 1) at construction; exposed as the
    /// `server.shard.count` gauge.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            policy: PolicyConfig::default(),
            recent_visitors_len: 10,
            shards: 16,
        }
    }
}

impl ServerConfig {
    /// A default deployment running the given admission policy.
    pub fn with_policy(policy: PolicyConfig) -> Self {
        ServerConfig {
            policy,
            ..ServerConfig::default()
        }
    }

    /// A default deployment with the given detector set (rewards stay
    /// at their defaults).
    pub fn with_detectors(detectors: DetectorConfig) -> Self {
        Self::with_policy(PolicyConfig::with_detectors(detectors))
    }
}

/// The simulated location-based social network service.
///
/// Thread-safe: the crawler hammers the read paths from worker threads
/// while check-ins run concurrently on every shard pair. All mutation
/// funnels through [`LbsnServer::check_in`], which reproduces the full
/// §2 pipeline: GPS verification → cheater code → rewards.
///
/// ```
/// use lbsn_server::{CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserSpec, VenueSpec};
/// use lbsn_sim::SimClock;
/// use lbsn_geo::GeoPoint;
///
/// let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
/// let cafe = server.register_venue(VenueSpec::new(
///     "Starbucks",
///     GeoPoint::new(35.0844, -106.6504).unwrap(),
/// ));
/// let user = server.register_user(UserSpec::named("mayor-hopeful"));
/// let outcome = server
///     .check_in(&CheckinRequest {
///         user,
///         venue: cafe,
///         reported_location: GeoPoint::new(35.0845, -106.6503).unwrap(),
///         source: CheckinSource::MobileApp,
///     })
///     .unwrap();
/// assert!(outcome.rewarded());
/// assert!(outcome.became_mayor, "vacant venue: one check-in takes it");
/// ```
pub struct LbsnServer {
    clock: SimClock,
    config: ServerConfig,
    pipeline: AdmissionPipeline,
    metrics: ServerMetrics,
    users: ShardedVec<User>,
    venues: ShardedVec<Venue>,
    /// Vanity-name resolution (leaf lock).
    usernames: LeafLock<HashMap<String, UserId>>,
    /// Spatial index for `venues_near` (leaf lock) — read paths never
    /// touch a venue shard just to find ids near a point.
    venue_grid: LeafLock<GeoGrid<VenueId>>,
    /// Per-venue category, append-only (leaf lock). Categories are
    /// immutable after registration, so badge evaluation reads this
    /// table instead of locking arbitrary venue shards mid-check-in.
    venue_categories: LeafLock<Vec<VenueCategory>>,
    /// Per-venue-shard string arenas holding interned name+address
    /// text (see [`crate::StrArena`]). Locked *before* the venue shard
    /// during registration, never while a shard lock is held. Bulk
    /// loading seals whole batches into shared chunks.
    venue_arenas: Vec<Mutex<StrArena>>,
    /// Serializes user registration so shard slots fill densely in id
    /// order. Holds the count of registered users.
    user_reg: Mutex<u64>,
    /// Serializes venue registration; holds the registered count.
    venue_reg: Mutex<u64>,
    user_count: AtomicU64,
    venue_count: AtomicU64,
    /// Sim-clock second at which the next periodic memory sample is
    /// due; claimed by CAS so concurrent check-ins elect one sampler.
    next_mem_sample: AtomicU64,
    /// Bytes accounted by the last sweep — the proxy for its cost that
    /// the amortization guard in [`LbsnServer::maybe_sample_memory`]
    /// divides by [`MEM_SWEEP_BYTES_PER_OP`].
    mem_sweep_cost: AtomicU64,
    /// Check-ins observed since the current sample became due; the
    /// guard requires enough of them to amortize the last sweep before
    /// the next one runs.
    mem_sweep_ops: AtomicU64,
    /// Test seam for the check-in lock-acquisition loop: called with
    /// the attempt number at the top of every iteration, with no locks
    /// held, so a test can deterministically force the mayor to hop
    /// shards between attempts and drive the all-shards fallback.
    #[cfg(test)]
    retry_probe: Mutex<Option<RetryProbe>>,
}

/// Callback installed by tests to interleave state changes between
/// check-in lock-acquisition attempts.
#[cfg(test)]
type RetryProbe = Box<dyn FnMut(u32) + Send>;

impl std::fmt::Debug for LbsnServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LbsnServer")
            .field("users", &self.user_count())
            .field("venues", &self.venue_count())
            .field("shards", &self.users.shard_count())
            .field("pipeline", &self.pipeline)
            .finish()
    }
}

impl LbsnServer {
    /// Creates a server reading the given virtual clock, reporting
    /// metrics into the process-wide [`lbsn_obs::global`] registry.
    pub fn new(clock: SimClock, config: ServerConfig) -> Self {
        Self::with_registry(clock, config, lbsn_obs::global())
    }

    /// Creates a server reporting metrics into an injected registry —
    /// what the bench harness uses to keep per-experiment snapshots
    /// isolated from each other.
    pub fn with_registry(clock: SimClock, config: ServerConfig, registry: Arc<Registry>) -> Self {
        Self::with_pipeline(clock, config, registry, Vec::new())
    }

    /// Creates a server whose admission pipeline includes the given
    /// pre-admission verifier stages (§5.1 defenses). A verified
    /// deployment is thereby a pipeline *configuration*, not a wrapper
    /// service: check-ins flow through verify → detect → record →
    /// reward on the one code path.
    pub fn with_pipeline(
        clock: SimClock,
        config: ServerConfig,
        registry: Arc<Registry>,
        verifiers: Vec<Box<dyn CheckinVerifier>>,
    ) -> Self {
        let metrics = ServerMetrics::new(registry);
        let pipeline = AdmissionPipeline::from_policy(&config.policy, &metrics, verifiers);
        let shards = config.shards.max(1).next_power_of_two();
        metrics.shard_count.set(shards as f64);
        let users = ShardedVec::new(
            ShardFamily::Users,
            shards,
            metrics.shard_lock_wait.clone(),
            metrics
                .registry()
                .shard_heat(&obs_names::shard_heat("users"), shards),
        );
        let venues = ShardedVec::new(
            ShardFamily::Venues,
            shards,
            metrics.shard_lock_wait.clone(),
            metrics
                .registry()
                .shard_heat(&obs_names::shard_heat("venues"), shards),
        );
        LbsnServer {
            clock,
            config,
            pipeline,
            metrics,
            users,
            venues,
            usernames: LeafLock::new("usernames", HashMap::new()),
            venue_grid: LeafLock::new("venue_grid", GeoGrid::new(1_000.0)),
            venue_categories: LeafLock::new("venue_categories", Vec::new()),
            venue_arenas: (0..shards).map(|_| Mutex::new(StrArena::new())).collect(),
            user_reg: Mutex::new(0),
            venue_reg: Mutex::new(0),
            user_count: AtomicU64::new(0),
            venue_count: AtomicU64::new(0),
            next_mem_sample: AtomicU64::new(0),
            mem_sweep_cost: AtomicU64::new(0),
            mem_sweep_ops: AtomicU64::new(0),
            #[cfg(test)]
            retry_probe: Mutex::new(None),
        }
    }

    /// The server's clock handle.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The server's resolved metric handles.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The number of lock stripes over user and venue state.
    pub fn shard_count(&self) -> usize {
        self.users.shard_count()
    }

    /// The user-shard index `user`'s record lives in — the routing key
    /// the request frontend uses to bind a submission to its shard
    /// queue (same-user submissions always land on the same queue, so
    /// per-user FIFO order survives batching).
    pub fn user_shard(&self, user: UserId) -> usize {
        self.users.shard_of(user.value())
    }

    /// Elects this call to run [`LbsnServer::sample_memory`] when the
    /// periodic sample is due at `now` *and* enough traffic has passed
    /// to amortize the last sweep ([`MEM_SWEEP_BYTES_PER_OP`]). The
    /// common path — sample not yet due — is one relaxed atomic load; a
    /// CAS claims the slot so concurrent check-ins run at most one
    /// sweep per interval.
    fn maybe_sample_memory(&self, now: Timestamp) {
        let due = self.next_mem_sample.load(Ordering::Relaxed);
        if now.secs() < due {
            return;
        }
        // A disabled registry degrades every update to a flag check;
        // the sweep would walk all shards only to set muted gauges. The
        // slot stays unclaimed, so re-enabling resumes sampling.
        if !self.metrics.registry().is_enabled() {
            return;
        }
        let ticket = self.mem_sweep_ops.fetch_add(1, Ordering::Relaxed);
        if ticket < self.mem_sweep_cost.load(Ordering::Relaxed) / MEM_SWEEP_BYTES_PER_OP {
            return;
        }
        if self
            .next_mem_sample
            .compare_exchange(
                due,
                now.secs() + MEM_SAMPLE_INTERVAL_SECS,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.mem_sweep_ops.store(0, Ordering::Relaxed);
            self.sample_memory();
        }
    }

    /// Walks all server state, refreshing the `server.mem.*` gauges and
    /// each shard family's occupancy column in the contention heatmap.
    ///
    /// Takes one shard read lock at a time — never two — so it composes
    /// with the documented lock order from any calling context. The
    /// sweep's own acquisitions count in the heatmap's ops column, a
    /// deliberate choice: the heatmap answers "who touched this shard",
    /// and the sampler did. Runs automatically every
    /// 6 virtual hours during check-in traffic; benches and tests may
    /// also call it directly before snapshotting.
    pub fn sample_memory(&self) {
        let mut user_bytes = 0usize;
        for shard in 0..self.users.shard_count() {
            let guard = self.users.read_shard(shard);
            self.users.heat().set_occupancy(shard, guard.len() as u64);
            user_bytes += guard.deep_bytes();
        }
        let mut venue_bytes = 0usize;
        for shard in 0..self.venues.shard_count() {
            let guard = self.venues.read_shard(shard);
            self.venues.heat().set_occupancy(shard, guard.len() as u64);
            venue_bytes += guard.deep_bytes();
        }
        // One leaf lock per statement — rule 4 allows no two at once.
        let mut side_bytes = self.usernames.read().deep_bytes();
        side_bytes += self.venue_grid.read().approx_heap_bytes();
        side_bytes += self.venue_categories.read().deep_bytes();
        // Interned venue text is charged here, once per shard, rather
        // than per venue handle (`ArenaStr` reports zero).
        for arena in &self.venue_arenas {
            side_bytes += arena.lock().bytes();
        }
        let total = user_bytes + venue_bytes + side_bytes;
        self.mem_sweep_cost.store(total as u64, Ordering::Relaxed);
        self.metrics.mem_users_bytes.set(user_bytes as f64);
        self.metrics.mem_venues_bytes.set(venue_bytes as f64);
        self.metrics.mem_side_maps_bytes.set(side_bytes as f64);
        self.metrics.mem_total_bytes.set(total as f64);
        self.metrics
            .mem_bytes_per_user
            .set(total as f64 / self.user_count().max(1) as f64);
        self.metrics.mem_samples.inc();
    }

    /// Arms the process-wide [`lbsn_obs::flight`] recorder: a panic
    /// anywhere in the process (and any explicit
    /// [`LbsnServer::dump_flight`] call) writes a forensic dump into
    /// `dir` — last trace events, open spans, this server's final
    /// snapshot, and, in debug builds, the lock-order sentinel's
    /// held-lock state for the dumping thread.
    pub fn arm_flight_recorder(&self, dir: impl Into<std::path::PathBuf>) {
        #[cfg(debug_assertions)]
        lbsn_obs::flight::set_held_locks_provider(Box::new(
            crate::shard::sentinel::held_descriptions,
        ));
        lbsn_obs::flight::arm(Arc::clone(self.metrics.registry()), dir);
    }

    /// Writes a flight dump now (the recorder must be armed), recording
    /// a `server.flight.dump` trace event first so the dump explains
    /// itself. Returns the dump path, or `None` when not armed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating or writing the dump file.
    pub fn dump_flight(&self, reason: &str) -> std::io::Result<Option<std::path::PathBuf>> {
        self.metrics.registry().event(
            obs_names::FLIGHT_DUMP_EVENT,
            &[("reason", reason.to_string())],
        );
        lbsn_obs::flight::dump_flight(reason)
    }

    /// Registers a user; IDs are dense and incrementing from 1.
    pub fn register_user(&self, spec: UserSpec) -> UserId {
        let mut registered = self.user_reg.lock();
        let id = UserId(*registered + 1);
        let user = User::from_spec(id, spec, self.clock.now());
        let username = user.username.clone();
        {
            let mut shard = self.users.write_shard(self.users.shard_of(id.value()));
            debug_assert_eq!(shard.len(), self.users.slot_of(id.value()));
            shard.push(user);
        }
        // The name resolves only once the profile is visible.
        if let Some(name) = username {
            self.usernames.write().insert(name, id);
        }
        *registered += 1;
        self.user_count.fetch_add(1, Ordering::Release);
        id
    }

    /// Registers a venue; IDs are dense and incrementing from 1.
    pub fn register_venue(&self, spec: VenueSpec) -> VenueId {
        let mut registered = self.venue_reg.lock();
        let id = VenueId(*registered + 1);
        let venue = {
            // Arena before shard lock — never the other way around.
            let mut arena = self.venue_arenas[self.venues.shard_of(id.value())].lock();
            Venue::from_spec(id, spec, self.clock.now(), &mut arena)
        };
        let location = venue.location;
        // Category first: by the time the venue is visible in its
        // shard, badge evaluation can already resolve its category.
        self.venue_categories.write().push(venue.category);
        {
            let mut shard = self.venues.write_shard(self.venues.shard_of(id.value()));
            debug_assert_eq!(shard.len(), self.venues.slot_of(id.value()));
            shard.push(venue);
        }
        // Discoverability last.
        self.venue_grid.write().insert(location, id);
        *registered += 1;
        self.venue_count.fetch_add(1, Ordering::Release);
        id
    }

    /// Bulk-registers users, returning how many were added. IDs are
    /// assigned exactly as by repeated [`LbsnServer::register_user`]
    /// calls (dense, incrementing, in iteration order); the difference
    /// is purely mechanical: specs are staged per shard in chunks, so a
    /// paper-scale population takes a handful of lock acquisitions per
    /// shard instead of two per user.
    pub fn bulk_register_users(&self, specs: impl IntoIterator<Item = UserSpec>) -> u64 {
        let mut registered = self.user_reg.lock();
        let now = self.clock.now();
        let shards = self.users.shard_count();
        let mut staged: Vec<Vec<User>> = (0..shards).map(|_| Vec::new()).collect();
        let mut names: Vec<(String, UserId)> = Vec::new();
        let mut count = 0u64;
        let mut iter = specs.into_iter();
        loop {
            let mut in_chunk = 0usize;
            for spec in iter.by_ref().take(BULK_CHUNK) {
                let id = UserId(*registered + count + 1);
                count += 1;
                in_chunk += 1;
                let user = User::from_spec(id, spec, now);
                if let Some(name) = &user.username {
                    names.push((name.clone(), id));
                }
                staged[self.users.shard_of(id.value())].push(user);
            }
            for (shard, batch) in staged.iter_mut().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let mut guard = self.users.write_shard(shard);
                debug_assert_eq!(guard.len(), self.users.slot_of(batch[0].id.value()));
                guard.append(batch);
            }
            // Names resolve only once the profiles are visible.
            if !names.is_empty() {
                self.usernames.write().extend(names.drain(..));
            }
            if in_chunk < BULK_CHUNK {
                break;
            }
        }
        *registered += count;
        self.user_count.fetch_add(count, Ordering::Release);
        count
    }

    /// Bulk-registers venues, returning how many were added. Same ID
    /// assignment as repeated [`LbsnServer::register_venue`]; name and
    /// address text for each chunk's worth of venues in a shard is
    /// sealed into one shared arena chunk (one allocation per shard per
    /// chunk, against two `String`s per venue on the incremental path).
    pub fn bulk_register_venues(&self, specs: impl IntoIterator<Item = VenueSpec>) -> u64 {
        let mut registered = self.venue_reg.lock();
        let now = self.clock.now();
        let shards = self.venues.shard_count();
        let mut staged: Vec<Vec<(VenueId, VenueSpec)>> = (0..shards).map(|_| Vec::new()).collect();
        let mut built: Vec<Venue> = Vec::new();
        let mut categories: Vec<VenueCategory> = Vec::new();
        let mut grid_entries: Vec<(GeoPoint, VenueId)> = Vec::new();
        let mut count = 0u64;
        let mut iter = specs.into_iter();
        loop {
            let mut in_chunk = 0usize;
            for spec in iter.by_ref().take(BULK_CHUNK) {
                let id = VenueId(*registered + count + 1);
                count += 1;
                in_chunk += 1;
                categories.push(spec.category);
                grid_entries.push((spec.location, id));
                staged[self.venues.shard_of(id.value())].push((id, spec));
            }
            // Categories first, as on the incremental path: by the time
            // a venue is visible in its shard, badge evaluation can
            // already resolve its category.
            if !categories.is_empty() {
                self.venue_categories.write().extend(categories.drain(..));
            }
            for (shard, batch) in staged.iter_mut().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                {
                    // Arena before shard lock — never the other way
                    // around, and never both at once.
                    let mut arena = self.venue_arenas[shard].lock();
                    let spans: Vec<(u32, u32, u16)> = batch
                        .iter()
                        .map(|(_, spec)| {
                            let (off, _) = arena.stage(&spec.name);
                            let (_, addr_len) = arena.stage(&spec.address);
                            (
                                off,
                                spec.name.len() as u32 + addr_len,
                                spec.name.len() as u16,
                            )
                        })
                        .collect();
                    let chunk = arena.seal();
                    built.extend(batch.drain(..).zip(spans).map(
                        |((id, spec), (off, len, name_len))| {
                            Venue::from_parts(
                                id,
                                spec.location,
                                spec.category,
                                spec.special,
                                now,
                                ArenaStr::slice(&chunk, off, len),
                                name_len,
                            )
                        },
                    ));
                }
                let mut guard = self.venues.write_shard(shard);
                debug_assert_eq!(guard.len(), self.venues.slot_of(built[0].id.value()));
                guard.append(&mut built);
            }
            // Discoverability last.
            if !grid_entries.is_empty() {
                let mut grid = self.venue_grid.write();
                for (location, id) in grid_entries.drain(..) {
                    grid.insert(location, id);
                }
            }
            if in_chunk < BULK_CHUNK {
                break;
            }
        }
        *registered += count;
        self.venue_count.fetch_add(count, Ordering::Release);
        count
    }

    /// Drops excess capacity across all server state — entity shard
    /// vectors, per-entity collections, the spatial grid, and the side
    /// maps. Bulk loading grows everything by doubling, which leaves up
    /// to 2× slack that the capacity-charging [`MemFootprint`] sweeps
    /// would faithfully report; call this once after a load (the scale
    /// harness does) so the gauges reflect steady-state residency.
    ///
    /// Takes one lock at a time, so it composes with the documented
    /// lock order from any calling context.
    pub fn compact_memory(&self) {
        for shard in 0..self.users.shard_count() {
            let mut guard = self.users.write_shard(shard);
            for user in guard.iter_mut() {
                user.shrink_to_fit();
            }
            guard.shrink_to_fit();
        }
        for shard in 0..self.venues.shard_count() {
            let mut guard = self.venues.write_shard(shard);
            for venue in guard.iter_mut() {
                venue.shrink_to_fit();
            }
            guard.shrink_to_fit();
        }
        for arena in &self.venue_arenas {
            arena.lock().shrink_to_fit();
        }
        self.usernames.write().shrink_to_fit();
        self.venue_grid.write().shrink_to_fit();
        self.venue_categories.write().shrink_to_fit();
    }

    /// Venues within `radius` metres of `center`, nearest first, capped
    /// at `limit` — the "suggested list of nearby venues" the client app
    /// shows (§2.2), which is also what the spoofing attack scrolls
    /// through after forging a fix. Touches only the spatial index —
    /// never a venue shard.
    pub fn venues_near(
        &self,
        center: GeoPoint,
        radius: Meters,
        limit: usize,
    ) -> Vec<(VenueId, Meters)> {
        let grid = self.venue_grid.read();
        grid.within_radius(center, radius)
            .into_iter()
            .take(limit)
            .map(|(id, d)| (*id, d))
            .collect()
    }

    /// Records a symmetric friendship. Locks only the two users'
    /// shards, in ascending shard order.
    pub fn add_friendship(&self, a: UserId, b: UserId) -> Result<(), CheckinError> {
        let mut set = self.users.write_set(&mut vec![
            self.users.shard_of(a.value()),
            self.users.shard_of(b.value()),
        ]);
        for id in [a, b] {
            if set.get(id.value()).is_none() {
                return Err(CheckinError::UnknownUser(id));
            }
        }
        set.get_mut(a.value()).unwrap().friends.insert(b); // lint:allow(no-unwrap-hot-path): both ids validated above
        set.get_mut(b.value()).unwrap().friends.insert(a); // lint:allow(no-unwrap-hot-path): both ids validated above
        Ok(())
    }

    /// Processes a check-in through the full pipeline.
    ///
    /// Flagged check-ins are recorded (they count toward the user's
    /// total) but earn nothing and do not touch venue state — exactly the
    /// policy §4.2 infers from the caught-cheater cohort.
    ///
    /// Locking: the submitting user's shard and the venue's shard are
    /// held for the whole pipeline; the incumbent mayor's shard (needed
    /// to judge a mayorship challenge) is discovered optimistically and
    /// added to the lock set on retry if the first guess misses.
    ///
    /// # Errors
    ///
    /// [`CheckinError`] for unknown user or venue IDs; nothing is
    /// recorded in that case. On a server built with verifier stages
    /// ([`LbsnServer::with_pipeline`]), a pre-admission rejection
    /// surfaces as [`CheckinError::VerifierRejected`] — use
    /// [`LbsnServer::check_in_with_evidence`] to observe it as an
    /// [`AdmissionOutcome`] instead.
    pub fn check_in(&self, req: &CheckinRequest) -> Result<CheckinOutcome, CheckinError> {
        match self.check_in_with_evidence(req, None)? {
            AdmissionOutcome::Processed(outcome) => Ok(outcome),
            AdmissionOutcome::VerifierRejected { verifier } => {
                Err(CheckinError::VerifierRejected(verifier))
            }
        }
    }

    /// Processes a check-in through the full admission pipeline,
    /// including the pre-admission verifier stages, with optional
    /// out-of-band [`CheckinEvidence`] for the verifiers to judge.
    ///
    /// The verify stage runs *before* any shard lock is taken: a
    /// rejected check-in is dropped, not recorded, so it must not touch
    /// user or venue state at all. On a server with no verifier stages
    /// the stage is skipped entirely — no span, no histogram sample —
    /// keeping the plain pipeline's cost profile unchanged.
    ///
    /// # Errors
    ///
    /// [`CheckinError`] for unknown user or venue IDs; nothing is
    /// recorded in that case.
    pub fn check_in_with_evidence(
        &self,
        req: &CheckinRequest,
        evidence: Option<&CheckinEvidence>,
    ) -> Result<AdmissionOutcome, CheckinError> {
        let now = self.clock.now();
        // No locks are held yet: safe point for the periodic sweep.
        self.maybe_sample_memory(now);
        // The wide-event accumulator for this decision: stack-allocated,
        // `Copy` contents only, so the unsampled accept path allocates
        // nothing (see `lbsn_obs::audit`).
        let mut decision = DecisionBuilder::new(req.user.value(), req.venue.value(), now.secs());
        if self.pipeline.has_verifiers() {
            let mut span = self.metrics.registry().span(obs_names::STAGE_VERIFY);
            span.attr("user", req.user.value());
            span.attr("venue", req.venue.value());
            let stage = self.metrics.stage_verify.start_timer();
            let venue_location = self
                .with_venue(req.venue, |v| v.location)
                .ok_or(CheckinError::UnknownVenue(req.venue))?;
            let ctx = VerifyContext {
                request: req,
                venue_location,
                evidence,
                now,
            };
            let rejected_by = self.pipeline.verify(&ctx, &mut decision);
            decision.verify_ns(stage.stop());
            if let Some(verifier) = rejected_by {
                self.metrics.verifier_rejected.inc();
                span.event_with(|| format!("verifier.rejected.{verifier}"));
                span.end();
                self.metrics
                    .audit
                    .finish(&decision, DecisionOutcome::VerifierRejected(verifier));
                return Ok(AdmissionOutcome::VerifierRejected { verifier });
            }
            span.end();
        }
        let user_shard = self.users.shard_of(req.user.value());
        let venue_shard = self.venues.shard_of(req.venue.value());
        let venue_slot = self.venues.slot_of(req.venue.value());

        // Peek the incumbent mayor's shard with a cheap try-read so the
        // first real acquisition almost always covers it (the venue's
        // mayor usually lives in a different user shard than the
        // requester; without the peek nearly every check-in would pay
        // an acquire-drop-reacquire round trip). Racy by design — the
        // covered-incumbent re-check under the real locks catches any
        // change.
        let mut incumbent_shard: Option<usize> = self
            .venues
            .try_read_shard(venue_shard)
            .and_then(|guard| guard.get(venue_slot).and_then(|v| v.mayor))
            .map(|m| self.users.shard_of(m.value()));
        let mut shard_ids: Vec<usize> = Vec::with_capacity(2);
        let mut attempt: u32 = 0;
        loop {
            #[cfg(test)]
            if let Some(probe) = self.retry_probe.lock().as_mut() {
                probe(attempt);
            }
            // User shards (ascending) strictly before the venue shard.
            shard_ids.clear();
            if attempt >= MAYOR_LOCK_RETRIES {
                self.metrics.lock_fallback.inc();
                shard_ids.extend(0..self.users.shard_count());
            } else {
                shard_ids.push(user_shard);
                if let Some(extra) = incumbent_shard {
                    shard_ids.push(extra);
                }
            }
            let uset = self.users.write_set(&mut shard_ids);
            if uset.get(req.user.value()).is_none() {
                return Err(CheckinError::UnknownUser(req.user));
            }
            let vguard = self.venues.write_shard(venue_shard);
            let Some(venue) = vguard.get(venue_slot) else {
                return Err(CheckinError::UnknownVenue(req.venue));
            };
            // The mayorship decision reads the incumbent's record; if
            // the current mayor's shard is outside the held set, retry
            // with it included (the venue shard is re-checked because
            // the mayor may change between attempts).
            if let Some(mayor) = venue.mayor {
                if !uset.covers(mayor.value()) {
                    self.metrics.lock_retry.inc();
                    incumbent_shard = Some(self.users.shard_of(mayor.value()));
                    attempt += 1;
                    drop(vguard);
                    drop(uset);
                    continue;
                }
            }
            return Ok(AdmissionOutcome::Processed(
                self.check_in_locked(req, now, decision, uset, vguard, venue_slot),
            ));
        }
    }

    /// Processes a slice of check-ins in submission order under an
    /// *amortized* lock protocol: one user-shard `write_set` covering
    /// every remaining requester (plus peeked incumbent-mayor shards)
    /// is acquired once, and ops are walked FIFO under it, switching
    /// the single held venue-shard guard as the venue changes. This is
    /// the batch-drain entry point the request frontend uses to admit
    /// up to `batch_max` queued check-ins per acquisition.
    ///
    /// Decisions are bit-for-bit identical to calling
    /// [`LbsnServer::check_in`] per element in the same order under the
    /// same clock: ops are never reordered, every mayorship challenge
    /// re-validates incumbent coverage under the real locks (releasing
    /// and widening exactly like the per-op retry loop, with the same
    /// `MAYOR_LOCK_RETRIES` all-shards fallback), and a decision that
    /// brands the account releases everything for the two-phase mayor
    /// strip before later ops run.
    ///
    /// Lock-order discipline is preserved: user shards are acquired
    /// ascending and strictly before any venue shard (rules 1–2), at
    /// most one venue shard is held at a time (rule 3 — the guard is
    /// dropped before the next venue's is taken), and no side map is
    /// held across acquisitions (rule 4).
    ///
    /// On a server built with verifier stages the batch falls back to
    /// per-op admission (verifiers judge out-of-band evidence the batch
    /// path does not carry); correctness is unchanged, only the
    /// amortization is lost. Unknown ids yield per-op `Err` entries
    /// without disturbing the rest of the batch.
    pub fn check_in_batch(
        &self,
        reqs: &[CheckinRequest],
    ) -> Vec<Result<CheckinOutcome, CheckinError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        if self.pipeline.has_verifiers() {
            return reqs.iter().map(|r| self.check_in(r)).collect();
        }
        let mut results: Vec<Result<CheckinOutcome, CheckinError>> = Vec::with_capacity(reqs.len());
        // `i` is the next unprocessed op; `attempt` counts lock-set
        // acquisitions made on op `i`'s behalf (reset as `i` advances).
        let mut i = 0usize;
        let mut attempt: u32 = 0;
        // Incumbent-mayor shards learned under the real locks; kept for
        // the rest of the batch so a re-acquisition covers them.
        let mut extra_shards: Vec<usize> = Vec::new();
        let mut shard_ids: Vec<usize> = Vec::with_capacity(reqs.len() + 2);
        'acquire: while i < reqs.len() {
            // No locks are held here: safe point for the periodic sweep.
            self.maybe_sample_memory(self.clock.now());
            #[cfg(test)]
            if let Some(probe) = self.retry_probe.lock().as_mut() {
                probe(attempt);
            }
            shard_ids.clear();
            if attempt >= MAYOR_LOCK_RETRIES {
                self.metrics.lock_fallback.inc();
                shard_ids.extend(0..self.users.shard_count());
            } else {
                // Requester shards for every remaining op, plus each
                // remaining venue's incumbent-mayor shard peeked with a
                // cheap try-read. Racy by design — the coverage
                // re-check under the real locks catches any change.
                for req in &reqs[i..] {
                    shard_ids.push(self.users.shard_of(req.user.value()));
                    let vshard = self.venues.shard_of(req.venue.value());
                    let vslot = self.venues.slot_of(req.venue.value());
                    if let Some(mayor) = self
                        .venues
                        .try_read_shard(vshard)
                        .and_then(|guard| guard.get(vslot).and_then(|v| v.mayor))
                    {
                        shard_ids.push(self.users.shard_of(mayor.value()));
                    }
                }
                shard_ids.extend_from_slice(&extra_shards);
            }
            let mut uset = self.users.write_set(&mut shard_ids);
            // Walk ops FIFO under this one user lock set. Rule 3: the
            // venue guard is held one shard at a time, released before
            // the next venue's shard is acquired.
            let mut vguard: Option<(usize, ShardWriteGuard<'_, Venue>)> = None;
            while i < reqs.len() {
                let req = &reqs[i];
                let now = self.clock.now();
                if uset.get(req.user.value()).is_none() {
                    results.push(Err(CheckinError::UnknownUser(req.user)));
                    i += 1;
                    attempt = 0;
                    continue;
                }
                let vshard = self.venues.shard_of(req.venue.value());
                let vslot = self.venues.slot_of(req.venue.value());
                if vguard.as_ref().map(|(held, _)| *held) != Some(vshard) {
                    drop(vguard.take()); // release before switching (rule 3)
                    vguard = Some((vshard, self.venues.write_shard(vshard)));
                }
                let Some((_, guard)) = vguard.as_mut() else {
                    unreachable!("venue guard installed above")
                };
                let Some(venue) = guard.get(vslot) else {
                    results.push(Err(CheckinError::UnknownVenue(req.venue)));
                    i += 1;
                    attempt = 0;
                    continue;
                };
                // Same re-validation as the per-op loop: if the current
                // incumbent's shard is outside the held set, release
                // everything and re-acquire with it included.
                if let Some(mayor) = venue.mayor {
                    if !uset.covers(mayor.value()) {
                        self.metrics.lock_retry.inc();
                        extra_shards.push(self.users.shard_of(mayor.value()));
                        attempt += 1;
                        continue 'acquire;
                    }
                }
                let decision =
                    DecisionBuilder::new(req.user.value(), req.venue.value(), now.secs());
                let (outcome, stripped) =
                    self.check_in_core(req, now, decision, &mut uset, guard, vslot);
                results.push(Ok(outcome));
                i += 1;
                attempt = 0;
                if !stripped.is_empty() {
                    // This decision branded the account: run the
                    // two-phase mayor strip with nothing held, then
                    // re-acquire for the remainder of the batch.
                    drop(vguard.take());
                    drop(uset);
                    self.strip_mayor_seats(req.user, &stripped);
                    continue 'acquire;
                }
            }
            return results;
        }
        results
    }

    /// The pipeline body, entered with the user lock set and the venue
    /// shard held and every id validated. Owns the guards so it can
    /// release them before the two-phase mayor strip.
    fn check_in_locked(
        &self,
        req: &CheckinRequest,
        now: Timestamp,
        decision: DecisionBuilder,
        mut uset: WriteSet<'_, User>,
        mut vguard: ShardWriteGuard<'_, Venue>,
        venue_slot: usize,
    ) -> CheckinOutcome {
        let (outcome, stripped) =
            self.check_in_core(req, now, decision, &mut uset, &mut vguard, venue_slot);
        // Two-phase strip (lock rule 3): the user-side mayorship set is
        // already drained; release the held shards, then clear the
        // venue-side seats one shard at a time. A concurrent check-in
        // by this user is already rejected (`branded_cheater` is set),
        // so nothing re-enters the set.
        drop(vguard);
        drop(uset);
        self.strip_mayor_seats(req.user, &stripped);
        outcome
    }

    /// The pipeline body proper, borrowing the caller's held locks so
    /// [`LbsnServer::check_in_batch`] can run many ops under one
    /// acquisition. Returns the venue seats to strip when this decision
    /// branded the account: the caller must release every held shard,
    /// run [`LbsnServer::strip_mayor_seats`], and only then process
    /// further ops — a branded account's subsequent check-ins are
    /// already rejected by the terminal detector, but a *stale seat*
    /// would change how later ops judge a mayorship challenge.
    fn check_in_core(
        &self,
        req: &CheckinRequest,
        now: Timestamp,
        mut decision: DecisionBuilder,
        uset: &mut WriteSet<'_, User>,
        vguard: &mut ShardWriteGuard<'_, Venue>,
        venue_slot: usize,
    ) -> (CheckinOutcome, Vec<VenueId>) {
        let uid = req.user.value();
        let total_timer = self.metrics.checkin_total.start_timer();
        // One root span per check-in (head-sampled); stages become
        // children and cheater flags become span events, so a sampled
        // request can be followed end to end in chrome://tracing.
        let mut span = self.metrics.registry().span(obs_names::CHECKIN_SPAN);
        span.attr("user", req.user.value());
        span.attr("venue", req.venue.value());

        // 1. Judge the check-in with immutable borrows. The detector
        // chain starts with the terminal branded-account detector, so a
        // branded account short-circuits to rejection before any
        // threshold rule runs.
        let stage_span = span.child(obs_names::STAGE_CHEATER_CODE);
        let stage = self.metrics.stage_cheater_code.start_timer();
        let flags = {
            let user = uset.get(uid).unwrap(); // lint:allow(no-unwrap-hot-path): uid validated before entry
            let ctx = RuleContext {
                user,
                venue: &vguard[venue_slot],
                request: req,
                now,
            };
            self.pipeline.detect(&ctx, &mut decision)
        };
        decision.detect_ns(stage.stop());
        stage_span.end();
        for &flag in &flags {
            self.metrics.flag_counter(flag).inc();
            span.event_with(|| format!("flag.{flag:?}"));
        }

        // 2. Record it (always — totals include flagged check-ins).
        let mut stage_span = span.child(obs_names::STAGE_RECORD);
        let stage = self.metrics.stage_record.start_timer();
        let rewarded = flags.is_empty();
        let record = CheckinRecord {
            venue: req.venue,
            at: now,
            location: req.reported_location,
            source: req.source,
            rewarded,
            flags: flags.clone(),
        };

        // Attributes that must be read *before* the record is appended.
        let day_start = Timestamp(now.secs() / DAY * DAY);
        let (first_of_day, first_visit) = {
            let user = uset.get(uid).unwrap(); // lint:allow(no-unwrap-hot-path): uid validated before entry
            (
                user.valid_checkins_since(day_start).next().is_none(),
                !user.visited_venues.contains(&req.venue),
            )
        };

        uset.get_mut(uid).unwrap().push_record(record); // lint:allow(no-unwrap-hot-path): uid validated before entry

        if !rewarded {
            self.metrics.rejected.inc();
            // Escalate to account branding once the flags pile up: the
            // account loses everything, including held mayorships.
            let mut stripped: Vec<VenueId> = Vec::new();
            let mut branded_now = false;
            {
                let user = uset.get_mut(uid).unwrap(); // lint:allow(no-unwrap-hot-path): uid validated before entry
                user.flagged_checkins += 1;
                if let Some(threshold) = self.config.policy.detectors.account_flag_threshold {
                    if !user.branded_cheater && user.flagged_checkins >= threshold {
                        user.branded_cheater = true;
                        branded_now = true;
                        stripped = user.mayorships.drain().collect();
                    }
                }
            }
            if branded_now {
                self.metrics.branded.inc();
                stage_span.event("account.branded");
                let flagged = uset.get(uid).unwrap().flagged_checkins; // lint:allow(no-unwrap-hot-path): uid validated before entry
                self.metrics.registry().event(
                    obs_names::ACCOUNT_BRANDED_EVENT,
                    &[
                        ("user", req.user.value().to_string()),
                        ("flagged_checkins", flagged.to_string()),
                    ],
                );
            }
            let is_mayor = if branded_now {
                false
            } else {
                vguard[venue_slot].mayor == Some(req.user)
            };
            decision.record_ns(stage.stop());
            stage_span.end();
            decision.total_ns(total_timer.stop());
            // The terminal reason is the *first* flag raised (detector
            // order); branding on this decision escalates it.
            let flag_slug = flags.first().map(|f| f.slug()).unwrap_or("");
            let outcome = if branded_now {
                DecisionOutcome::Branded(flag_slug)
            } else {
                DecisionOutcome::Rejected(flag_slug)
            };
            self.metrics.audit.finish(&decision, outcome);
            return (
                CheckinOutcome {
                    user: req.user,
                    venue: req.venue,
                    at: now,
                    points: 0,
                    new_badges: Vec::new(),
                    is_mayor,
                    became_mayor: false,
                    special_unlocked: None,
                    flags,
                },
                stripped,
            );
        }

        decision.record_ns(stage.stop());
        stage_span.end();
        self.metrics.accepted.inc();

        // 3. Apply the valid check-in to user and venue state.
        let stage_span = span.child(obs_names::STAGE_REWARDS);
        let stage = self.metrics.stage_rewards.start_timer();
        {
            let user = uset.get_mut(uid).unwrap(); // lint:allow(no-unwrap-hot-path): uid validated before entry
            user.valid_checkins += 1;
            if first_visit {
                user.visited_venues.insert(req.venue);
            }
        }
        if first_visit {
            let category = vguard[venue_slot].category;
            let user = uset.get_mut(uid).unwrap(); // lint:allow(no-unwrap-hot-path): uid validated before entry
            user.venues_by_category.bump(category);
        }
        let recent_cap = self.config.recent_visitors_len;
        vguard[venue_slot].record_valid_checkin(req.user, recent_cap);

        // 4. Run the reward-rule chain (mayorship → badges → points →
        // specials under the default policy). The incumbent mayor (if
        // any) is covered by the lock set — `check_in_with_evidence`
        // validated that before entering.
        let reward = self.pipeline.reward(
            req,
            now,
            first_visit,
            first_of_day,
            uset,
            vguard,
            venue_slot,
            &self.venue_categories,
        );
        let crate::pipeline::RewardOutcome {
            points,
            new_badges,
            is_mayor,
            became_mayor,
            special_unlocked,
        } = reward;

        if became_mayor {
            self.metrics.mayorships_granted.inc();
        }
        self.metrics.badges_granted.add(new_badges.len() as u64);
        self.metrics.points_granted.add(points);
        decision.reward(
            points,
            new_badges.len() as u64,
            became_mayor,
            special_unlocked.is_some(),
        );
        decision.rewards_ns(stage.stop());
        stage_span.end();
        decision.total_ns(total_timer.stop());
        self.metrics
            .audit
            .finish(&decision, DecisionOutcome::Accepted);

        (
            CheckinOutcome {
                user: req.user,
                venue: req.venue,
                at: now,
                points,
                new_badges,
                is_mayor,
                became_mayor,
                special_unlocked,
                flags,
            },
            Vec::new(),
        )
    }

    /// Clears `user` out of the mayor seat of every venue in `venues`,
    /// one shard at a time in ascending shard order (no other lock is
    /// held on entry). A venue whose seat has already been taken over
    /// by someone else is left alone.
    fn strip_mayor_seats(&self, user: UserId, venues: &[VenueId]) {
        if venues.is_empty() {
            return;
        }
        let mut by_shard: Vec<(usize, VenueId)> = venues
            .iter()
            .map(|v| (self.venues.shard_of(v.value()), *v))
            .collect();
        by_shard.sort_unstable_by_key(|(shard, v)| (*shard, v.value()));
        let mut i = 0;
        while i < by_shard.len() {
            let shard = by_shard[i].0;
            let mut guard = self.venues.write_shard(shard);
            while i < by_shard.len() && by_shard[i].0 == shard {
                let v = by_shard[i].1;
                if let Some(venue) = guard.get_mut(self.venues.slot_of(v.value())) {
                    if venue.mayor == Some(user) {
                        venue.mayor = None;
                    }
                }
                i += 1;
            }
        }
    }

    /// Number of registered users.
    pub fn user_count(&self) -> u64 {
        self.user_count.load(Ordering::Acquire)
    }

    /// Number of registered venues.
    pub fn venue_count(&self) -> u64 {
        self.venue_count.load(Ordering::Acquire)
    }

    /// Clones a user's full record (history included — prefer
    /// [`LbsnServer::with_user`] on hot paths, or
    /// [`LbsnServer::user_profile`] for profile-page reads).
    pub fn user(&self, id: UserId) -> Option<User> {
        self.users.with(id.value(), |u| u.clone())
    }

    /// The profile-page projection of a user — just the fields the web
    /// frontend renders. Scrape-shaped read paths over a paper-scale
    /// world go through here so each page view copies a few dozen
    /// bytes, not a lifetime check-in history.
    pub fn user_profile(&self, id: UserId) -> Option<crate::user::UserProfile> {
        self.users.with(id.value(), |u| u.profile())
    }

    /// Clones a venue's full record.
    pub fn venue(&self, id: VenueId) -> Option<Venue> {
        self.venues.with(id.value(), |v| v.clone())
    }

    /// Runs a closure against a user's record without cloning, under
    /// only that user's shard lock.
    pub fn with_user<R>(&self, id: UserId, f: impl FnOnce(&User) -> R) -> Option<R> {
        self.users.with(id.value(), f)
    }

    /// Runs a closure against a venue's record without cloning, under
    /// only that venue's shard lock.
    pub fn with_venue<R>(&self, id: VenueId, f: impl FnOnce(&Venue) -> R) -> Option<R> {
        self.venues.with(id.value(), f)
    }

    /// Resolves a vanity username to an ID.
    pub fn user_id_by_name(&self, name: &str) -> Option<UserId> {
        self.usernames.read().get(name).copied()
    }

    /// Searches venues by name substring (case-insensitive), ID order —
    /// §2.2's "searching for a venue by name". Capped at `limit`.
    /// Scans one shard at a time; within a shard slots are already in
    /// id order, so each shard contributes its first `limit` matches
    /// and the merged result is the global first `limit` by id.
    pub fn search_venues_by_name(&self, query: &str, limit: usize) -> Vec<VenueId> {
        let needle = query.to_lowercase();
        let mut hits: Vec<VenueId> = Vec::new();
        for shard in 0..self.venues.shard_count() {
            let guard = self.venues.read_shard(shard);
            hits.extend(
                guard
                    .iter()
                    .filter(|v| v.name().to_lowercase().contains(&needle))
                    .take(limit)
                    .map(|v| v.id),
            );
        }
        hits.sort_unstable_by_key(|v| v.value());
        hits.truncate(limit);
        hits
    }

    /// Leaves a tip/comment on a venue, newest first.
    ///
    /// Tips require no check-in — which is exactly what makes §2.2's
    /// badmouthing attack sting: a location cheat plus a tip reads like
    /// a real recent customer's complaint.
    ///
    /// # Errors
    ///
    /// [`CheckinError`] for unknown user or venue IDs.
    pub fn leave_tip(
        &self,
        user: UserId,
        venue: VenueId,
        text: impl Into<String>,
    ) -> Result<(), CheckinError> {
        let now = self.clock.now();
        if self.users.with(user.value(), |_| ()).is_none() {
            return Err(CheckinError::UnknownUser(user));
        }
        let mut guard = self.venues.write_shard(self.venues.shard_of(venue.value()));
        let v = guard
            .get_mut(self.venues.slot_of(venue.value()))
            .ok_or(CheckinError::UnknownVenue(venue))?;
        v.activity_mut().tips.insert(
            0,
            crate::venue::Tip {
                user,
                text: text.into(),
                at: now,
            },
        );
        Ok(())
    }

    /// The points leaderboard: the top `n` users by points, ties broken
    /// by lower (older) ID. Foursquare surfaced a weekly leaderboard;
    /// the reproduction uses the global all-time variant.
    ///
    /// Bounded top-n selection: a size-`n` min-heap over one shard at a
    /// time — no full clone, no full sort, and writers on other shards
    /// keep running.
    pub fn leaderboard(&self, n: usize) -> Vec<(UserId, u64)> {
        if n == 0 {
            return Vec::new();
        }
        // Key order: more points wins, then lower id wins.
        let mut heap: BinaryHeap<Reverse<(u64, Reverse<u64>)>> = BinaryHeap::with_capacity(n + 1);
        for shard in 0..self.users.shard_count() {
            let guard = self.users.read_shard(shard);
            for u in guard.iter() {
                let key = (u.points, Reverse(u.id.value()));
                if heap.len() < n {
                    heap.push(Reverse(key));
                } else if heap.peek().is_some_and(|min| key > min.0) {
                    heap.pop();
                    heap.push(Reverse(key));
                }
            }
        }
        let mut rows: Vec<(UserId, u64)> = heap
            .into_iter()
            .map(|Reverse((points, Reverse(id)))| (UserId(id), points))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Visits every user, one shard read lock at a time, in shard-major
    /// order (ids interleave across shards — not global id order).
    pub fn for_each_user(&self, mut f: impl FnMut(&User)) {
        for shard in 0..self.users.shard_count() {
            let guard = self.users.read_shard(shard);
            for u in guard.iter() {
                f(u);
            }
        }
    }

    /// Visits every venue, one shard read lock at a time, in
    /// shard-major order (not global id order).
    pub fn for_each_venue(&self, mut f: impl FnMut(&Venue)) {
        for shard in 0..self.venues.shard_count() {
            let guard = self.venues.read_shard(shard);
            for v in guard.iter() {
                f(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::{CheatFlag, CheckinSource};
    use crate::rewards::Badge;
    use crate::venue::SpecialKind;
    use lbsn_geo::{destination, GeoPoint};
    use lbsn_sim::Duration;

    /// A default deployment whose branding threshold is `threshold`.
    fn branding_config(threshold: Option<u64>) -> ServerConfig {
        ServerConfig::with_detectors(DetectorConfig::default().branding_threshold(threshold))
    }

    fn abq() -> GeoPoint {
        GeoPoint::new(35.0844, -106.6504).unwrap()
    }

    fn setup() -> (LbsnServer, UserId, VenueId) {
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let user = server.register_user(UserSpec::named("tester"));
        (server, user, venue)
    }

    fn req(user: UserId, venue: VenueId, loc: GeoPoint) -> CheckinRequest {
        CheckinRequest {
            user,
            venue,
            reported_location: loc,
            source: CheckinSource::MobileApp,
        }
    }

    #[test]
    fn bulk_registration_matches_incremental() {
        // The bulk path must be an observably identical mechanical
        // shortcut: same IDs, same profile state, same discoverability.
        let make_user_specs = || {
            (0..40u64).map(|i| {
                if i % 3 == 0 {
                    UserSpec::named(format!("user-{i}")).home(destination(
                        abq(),
                        10.0,
                        50.0 * i as f64,
                    ))
                } else {
                    UserSpec::anonymous()
                }
            })
        };
        let make_venue_specs = || {
            (0..40u64).map(|i| {
                let spec = VenueSpec::new(
                    format!("Venue {i}"),
                    destination(abq(), (i * 9 % 360) as f64, 100.0 + 40.0 * i as f64),
                )
                .address(format!("{i} Central Ave"))
                .category(if i % 4 == 0 {
                    VenueCategory::Coffee
                } else {
                    VenueCategory::Bar
                });
                if i % 5 == 0 {
                    spec.special(crate::venue::Special {
                        description: format!("Deal {i}"),
                        kind: SpecialKind::MayorOnly,
                    })
                } else {
                    spec
                }
            })
        };

        let incremental = LbsnServer::new(SimClock::new(), ServerConfig::default());
        for spec in make_user_specs() {
            incremental.register_user(spec);
        }
        for spec in make_venue_specs() {
            incremental.register_venue(spec);
        }
        let bulk = LbsnServer::new(SimClock::new(), ServerConfig::default());
        assert_eq!(bulk.bulk_register_users(make_user_specs()), 40);
        assert_eq!(bulk.bulk_register_venues(make_venue_specs()), 40);
        bulk.compact_memory();

        assert_eq!(bulk.user_count(), incremental.user_count());
        assert_eq!(bulk.venue_count(), incremental.venue_count());
        for id in 1..=40u64 {
            let (a, b) = (
                incremental.user(UserId(id)).unwrap(),
                bulk.user(UserId(id)).unwrap(),
            );
            assert_eq!(a.id, b.id);
            assert_eq!(a.username, b.username);
            assert_eq!(a.home, b.home);
            let (va, vb) = (
                incremental.venue(VenueId(id)).unwrap(),
                bulk.venue(VenueId(id)).unwrap(),
            );
            assert_eq!(va.id, vb.id);
            assert_eq!(va.name(), vb.name());
            assert_eq!(va.address(), vb.address());
            assert_eq!(va.location, vb.location);
            assert_eq!(va.category, vb.category);
            assert_eq!(va.special, vb.special);
        }
        assert_eq!(
            bulk.user_id_by_name("user-39"),
            incremental.user_id_by_name("user-39")
        );
        assert_eq!(
            bulk.search_venues_by_name("venue 1", 50),
            incremental.search_venues_by_name("venue 1", 50)
        );
        let near_bulk: Vec<(VenueId, f64)> = bulk.venues_near(abq(), 2_000.0, 10);
        let near_inc: Vec<(VenueId, f64)> = incremental.venues_near(abq(), 2_000.0, 10);
        assert_eq!(near_bulk, near_inc);
        // Registration continues seamlessly after a bulk load.
        assert_eq!(bulk.register_user(UserSpec::anonymous()), UserId(41));
        assert_eq!(
            bulk.register_venue(VenueSpec::new("After", abq())),
            VenueId(41)
        );
    }

    #[test]
    fn ids_are_dense_and_incrementing() {
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        assert_eq!(server.register_user(UserSpec::anonymous()), UserId(1));
        assert_eq!(server.register_user(UserSpec::anonymous()), UserId(2));
        assert_eq!(
            server.register_venue(VenueSpec::new("A", abq())),
            VenueId(1)
        );
        assert_eq!(
            server.register_venue(VenueSpec::new("B", abq())),
            VenueId(2)
        );
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let server = LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                shards: 5,
                ..ServerConfig::default()
            },
        );
        assert_eq!(server.shard_count(), 8);
        let single = LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                shards: 0,
                ..ServerConfig::default()
            },
        );
        assert_eq!(single.shard_count(), 1);
    }

    #[test]
    fn single_shard_server_runs_the_pipeline() {
        // The degenerate one-lock configuration must behave identically.
        let server = LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                shards: 1,
                ..ServerConfig::default()
            },
        );
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let user = server.register_user(UserSpec::anonymous());
        let out = server.check_in(&req(user, venue, abq())).unwrap();
        assert!(out.rewarded());
        assert!(out.became_mayor);
    }

    #[test]
    fn valid_checkin_awards_points_and_newbie() {
        let (server, user, venue) = setup();
        let out = server.check_in(&req(user, venue, abq())).unwrap();
        assert!(out.rewarded());
        // per_checkin 1 + first visit 4 + first of day 2 + new mayor 5.
        assert_eq!(out.points, 12);
        assert!(out.new_badges.contains(&Badge::Newbie));
        assert!(out.became_mayor);
        let u = server.user(user).unwrap();
        assert_eq!(u.total_checkins, 1);
        assert_eq!(u.valid_checkins, 1);
        assert_eq!(u.points, 12);
    }

    #[test]
    fn unknown_ids_record_nothing() {
        let (server, user, venue) = setup();
        assert_eq!(
            server.check_in(&req(UserId(99), venue, abq())),
            Err(CheckinError::UnknownUser(UserId(99)))
        );
        assert_eq!(
            server.check_in(&req(user, VenueId(99), abq())),
            Err(CheckinError::UnknownVenue(VenueId(99)))
        );
        assert_eq!(server.user(user).unwrap().total_checkins, 0);
        assert_eq!(
            server.check_in(&req(UserId(0), venue, abq())),
            Err(CheckinError::UnknownUser(UserId(0)))
        );
    }

    #[test]
    fn flagged_checkin_counts_but_earns_nothing() {
        let (server, user, venue) = setup();
        // Report a fix 5 km from the venue: GPS mismatch.
        let far = destination(abq(), 90.0, 5_000.0);
        let out = server.check_in(&req(user, venue, far)).unwrap();
        assert!(!out.rewarded());
        assert_eq!(out.flags, vec![CheatFlag::GpsMismatch]);
        assert_eq!(out.points, 0);
        assert!(out.new_badges.is_empty());
        let u = server.user(user).unwrap();
        assert_eq!(u.total_checkins, 1, "flagged check-ins count in totals");
        assert_eq!(u.valid_checkins, 0);
        assert_eq!(u.points, 0);
        // Venue state untouched.
        let v = server.venue(venue).unwrap();
        assert_eq!(v.checkins_here, 0);
        assert!(v.recent_visitors().is_empty());
        assert_eq!(v.mayor, None);
    }

    #[test]
    fn cooldown_then_allowed_after_hour() {
        let (server, user, venue) = setup();
        assert!(server
            .check_in(&req(user, venue, abq()))
            .unwrap()
            .rewarded());
        server.clock().advance(Duration::minutes(30));
        let blocked = server.check_in(&req(user, venue, abq())).unwrap();
        assert_eq!(blocked.flags, vec![CheatFlag::TooFrequent]);
        server.clock().advance(Duration::minutes(31));
        let ok = server.check_in(&req(user, venue, abq())).unwrap();
        assert!(ok.rewarded());
        let u = server.user(user).unwrap();
        assert_eq!(u.total_checkins, 3);
        assert_eq!(u.valid_checkins, 2);
    }

    #[test]
    fn mayorship_transfers_on_more_days() {
        let (server, alice, venue) = setup();
        let bob = server.register_user(UserSpec::named("bob"));
        // Alice checks in on 2 days.
        for _ in 0..2 {
            assert!(server
                .check_in(&req(alice, venue, abq()))
                .unwrap()
                .rewarded());
            server.clock().advance(Duration::days(1));
        }
        assert_eq!(server.venue(venue).unwrap().mayor, Some(alice));
        // Bob checks in on 3 days: takes the crown on the third.
        let mut took = false;
        for _ in 0..3 {
            let out = server.check_in(&req(bob, venue, abq())).unwrap();
            took = out.became_mayor;
            server.clock().advance(Duration::days(1));
        }
        assert!(took);
        assert_eq!(server.venue(venue).unwrap().mayor, Some(bob));
        assert!(server.user(alice).unwrap().mayorships.is_empty());
        assert!(server.user(bob).unwrap().mayorships.contains(&venue));
    }

    #[test]
    fn mayorship_transfer_across_shards() {
        // Challenger and incumbent land in different user shards, so
        // the optimistic lock set must widen on retry.
        let server = LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                shards: 4,
                ..ServerConfig::default()
            },
        );
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let alice = server.register_user(UserSpec::anonymous()); // shard 0
        let _pad = server.register_user(UserSpec::anonymous());
        let bob = server.register_user(UserSpec::anonymous()); // shard 2
        assert_ne!(
            server.users.shard_of(alice.value()),
            server.users.shard_of(bob.value())
        );
        for _ in 0..2 {
            server.check_in(&req(alice, venue, abq())).unwrap();
            server.clock().advance(Duration::days(1));
        }
        let mut took = false;
        for _ in 0..3 {
            took = server
                .check_in(&req(bob, venue, abq()))
                .unwrap()
                .became_mayor;
            server.clock().advance(Duration::days(1));
        }
        assert!(took);
        assert_eq!(server.venue(venue).unwrap().mayor, Some(bob));
        assert!(server.user(alice).unwrap().mayorships.is_empty());
    }

    #[test]
    fn mayor_only_special_goes_to_mayor() {
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()).special(crate::Special {
            description: "Free coffee for the mayor!".into(),
            kind: SpecialKind::MayorOnly,
        }));
        let user = server.register_user(UserSpec::anonymous());
        let out = server.check_in(&req(user, venue, abq())).unwrap();
        assert!(out.became_mayor);
        assert_eq!(
            out.special_unlocked.as_deref(),
            Some("Free coffee for the mayor!")
        );
        // A second user checking in does not unlock it.
        let other = server.register_user(UserSpec::anonymous());
        server.clock().advance(Duration::hours(2));
        let out2 = server.check_in(&req(other, venue, abq())).unwrap();
        assert!(out2.rewarded());
        assert_eq!(out2.special_unlocked, None);
    }

    #[test]
    fn loyalty_special_unlocks_at_threshold() {
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let venue =
            server.register_venue(VenueSpec::new("Sandwiches", abq()).special(crate::Special {
                description: "Free sub after 3 visits".into(),
                kind: SpecialKind::Loyalty { visits: 3 },
            }));
        let user = server.register_user(UserSpec::anonymous());
        for i in 0..3 {
            let out = server.check_in(&req(user, venue, abq())).unwrap();
            assert!(out.rewarded());
            if i < 2 {
                assert_eq!(out.special_unlocked, None, "visit {}", i + 1);
            } else {
                assert_eq!(
                    out.special_unlocked.as_deref(),
                    Some("Free sub after 3 visits")
                );
            }
            server.clock().advance(Duration::hours(2));
        }
    }

    #[test]
    fn username_resolution() {
        let (server, user, _) = setup();
        assert_eq!(server.user_id_by_name("tester"), Some(user));
        assert_eq!(server.user_id_by_name("nobody"), None);
    }

    #[test]
    fn friendship_is_symmetric() {
        let (server, alice, _) = setup();
        let bob = server.register_user(UserSpec::anonymous());
        server.add_friendship(alice, bob).unwrap();
        assert!(server.user(alice).unwrap().friends.contains(&bob));
        assert!(server.user(bob).unwrap().friends.contains(&alice));
        assert!(server.add_friendship(alice, UserId(999)).is_err());
    }

    #[test]
    fn recent_visitor_list_capped_by_config() {
        let server = LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                recent_visitors_len: 2,
                ..ServerConfig::default()
            },
        );
        let venue = server.register_venue(VenueSpec::new("Hot Spot", abq()));
        for _ in 0..4 {
            let u = server.register_user(UserSpec::anonymous());
            server.check_in(&req(u, venue, abq())).unwrap();
            server.clock().advance(Duration::minutes(5));
        }
        let v = server.venue(venue).unwrap();
        assert_eq!(v.recent_visitors().len(), 2);
        assert_eq!(v.unique_visitors().len(), 4);
        assert_eq!(v.checkins_here, 4);
    }

    #[test]
    fn adventurer_badge_after_ten_venues() {
        // Reproduces the paper's §3.1 result: ten distant venues, spoofed
        // fixes at each venue's own location, all accepted; the tenth
        // unlocks Adventurer.
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let user = server.register_user(UserSpec::named("cheater"));
        let mut venues = Vec::new();
        for i in 0..10 {
            let loc = destination(abq(), 90.0, 2_000.0 * i as f64);
            venues.push(server.register_venue(VenueSpec::new(format!("V{i}"), loc)));
        }
        let mut last = None;
        for v in &venues {
            let loc = server.venue(*v).unwrap().location;
            last = Some(server.check_in(&req(user, *v, loc)).unwrap());
            server.clock().advance(Duration::minutes(10));
        }
        let last = last.unwrap();
        assert!(last.rewarded());
        assert!(last.new_badges.contains(&Badge::Adventurer));
    }

    #[test]
    fn tips_post_newest_first_and_validate_ids() {
        let (server, user, venue) = setup();
        server.leave_tip(user, venue, "Great coffee").unwrap();
        server.clock().advance(Duration::minutes(5));
        server.leave_tip(user, venue, "Long line today").unwrap();
        let v = server.venue(venue).unwrap();
        assert_eq!(v.tips().len(), 2);
        assert_eq!(v.tips()[0].text, "Long line today");
        assert_eq!(v.tips()[1].text, "Great coffee");
        assert!(v.tips()[0].at > v.tips()[1].at);
        assert_eq!(
            server.leave_tip(UserId(99), venue, "x"),
            Err(CheckinError::UnknownUser(UserId(99)))
        );
        assert_eq!(
            server.leave_tip(user, VenueId(99), "x"),
            Err(CheckinError::UnknownVenue(VenueId(99)))
        );
    }

    #[test]
    fn leaderboard_ranks_by_points_then_id() {
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let a = server.register_user(UserSpec::anonymous());
        let b = server.register_user(UserSpec::anonymous());
        let c = server.register_user(UserSpec::anonymous());
        // a takes the venue first (first-visit + mayor bonuses: 12
        // points); b revisits twice without the mayor bonus (7 + 1);
        // c never checks in.
        server.check_in(&req(a, venue, abq())).unwrap();
        server.clock().advance(Duration::hours(2));
        server.check_in(&req(b, venue, abq())).unwrap();
        server.clock().advance(Duration::hours(2));
        server.check_in(&req(b, venue, abq())).unwrap();
        let (pa, pb) = (
            server.user(a).unwrap().points,
            server.user(b).unwrap().points,
        );
        assert!(pa > pb, "a {pa} vs b {pb}");
        let board = server.leaderboard(10);
        assert_eq!(board[0], (a, pa));
        assert_eq!(board[1], (b, pb));
        assert_eq!(board[2], (c, 0));
        assert_eq!(server.leaderboard(1).len(), 1);
        assert!(server.leaderboard(0).is_empty());
    }

    #[test]
    fn leaderboard_bounded_selection_matches_full_sort() {
        // Many users spread across shards with colliding point totals:
        // the heap selection must agree with a naive full sort.
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let n = 100;
        for _ in 0..n {
            server.register_user(UserSpec::anonymous());
        }
        for i in 1..=n {
            // Every third user revisits for extra points.
            for _ in 0..(i % 3 + 1) {
                server.check_in(&req(UserId(i), venue, abq())).unwrap();
                server.clock().advance(Duration::hours(2));
            }
        }
        let mut naive: Vec<(UserId, u64)> = Vec::new();
        server.for_each_user(|u| naive.push((u.id, u.points)));
        naive.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        naive.truncate(10);
        assert_eq!(server.leaderboard(10), naive);
    }

    #[test]
    fn leaderboard_ties_are_identical_across_shard_counts() {
        // Regression: with every user on an equal score, a truncated
        // leaderboard must pick (and order) the same users no matter
        // how they were distributed over shards — ids interleave across
        // shards differently at each shard count, so any heap-eviction
        // or merge-order dependence shows up as a reordering here.
        let board_at = |shards: usize| {
            let server = LbsnServer::new(
                SimClock::new(),
                ServerConfig {
                    shards,
                    ..ServerConfig::default()
                },
            );
            for i in 0..40 {
                let user = server.register_user(UserSpec::anonymous());
                let venue = server.register_venue(VenueSpec::new(format!("Spot {i}"), abq()));
                // One first-visit check-in each: identical point totals.
                assert!(server
                    .check_in(&req(user, venue, abq()))
                    .unwrap()
                    .rewarded());
            }
            server.leaderboard(10)
        };
        let reference = board_at(1);
        assert_eq!(reference.len(), 10);
        let points = reference[0].1;
        assert!(reference.iter().all(|&(_, p)| p == points), "all tied");
        // Ties resolve to the lowest (oldest) ids, in ascending order.
        let ids: Vec<u64> = reference.iter().map(|&(u, _)| u.value()).collect();
        assert_eq!(ids, (1..=10).collect::<Vec<u64>>());
        for shards in [2, 4, 16, 64] {
            assert_eq!(board_at(shards), reference, "shards={shards}");
        }
    }

    #[test]
    fn repeated_flags_brand_the_account_and_strip_mayorships() {
        let server = LbsnServer::new(SimClock::new(), branding_config(Some(3)));
        let venue = server.register_venue(VenueSpec::new("Home", abq()));
        let user = server.register_user(UserSpec::anonymous());
        // A legitimate mayorship first.
        assert!(
            server
                .check_in(&req(user, venue, abq()))
                .unwrap()
                .became_mayor
        );
        // Three GPS-mismatch attempts: branded on the third.
        let far = destination(abq(), 90.0, 10_000.0);
        for _ in 0..3 {
            server.clock().advance(Duration::hours(2));
            assert!(!server.check_in(&req(user, venue, far)).unwrap().rewarded());
        }
        let u = server.user(user).unwrap();
        assert!(u.branded_cheater);
        assert_eq!(u.flagged_checkins, 3);
        assert!(u.mayorships.is_empty(), "mayorships stripped");
        assert_eq!(server.venue(venue).unwrap().mayor, None);
        // Even a perfectly-formed check-in is now invalidated.
        server.clock().advance(Duration::days(2));
        let out = server.check_in(&req(user, venue, abq())).unwrap();
        assert_eq!(out.flags, vec![CheatFlag::AccountFlagged]);
        assert_eq!(server.user(user).unwrap().total_checkins, 5);
    }

    #[test]
    fn branding_strips_mayorships_across_every_shard() {
        // Venues in every shard, all held by one user: branding must
        // clear every seat via the two-phase shard walk.
        let server = LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                shards: 8,
                ..branding_config(Some(3))
            },
        );
        let user = server.register_user(UserSpec::anonymous());
        let mut venues = Vec::new();
        for i in 0..16u64 {
            let loc = destination(abq(), (i * 20 % 360) as f64, 300.0 * (i + 1) as f64);
            venues.push(server.register_venue(VenueSpec::new(format!("V{i}"), loc)));
        }
        for v in &venues {
            let loc = server.venue(*v).unwrap().location;
            assert!(server.check_in(&req(user, *v, loc)).unwrap().became_mayor);
            server.clock().advance(Duration::hours(2));
        }
        assert_eq!(server.user(user).unwrap().mayorships.len(), 16);
        let far = destination(abq(), 90.0, 50_000.0);
        for _ in 0..3 {
            server.clock().advance(Duration::hours(2));
            server.check_in(&req(user, venues[0], far)).unwrap();
        }
        assert!(server.user(user).unwrap().mayorships.is_empty());
        for v in &venues {
            assert_eq!(server.venue(*v).unwrap().mayor, None, "seat {v:?} cleared");
        }
    }

    #[test]
    fn branding_disabled_keeps_per_checkin_judgement() {
        let server = LbsnServer::new(SimClock::new(), branding_config(None));
        let venue = server.register_venue(VenueSpec::new("Home", abq()));
        let user = server.register_user(UserSpec::anonymous());
        let far = destination(abq(), 90.0, 10_000.0);
        for _ in 0..20 {
            server.clock().advance(Duration::hours(2));
            server.check_in(&req(user, venue, far)).unwrap();
        }
        // Still not branded; an honest check-in succeeds.
        server.clock().advance(Duration::hours(2));
        assert!(server
            .check_in(&req(user, venue, abq()))
            .unwrap()
            .rewarded());
        assert!(!server.user(user).unwrap().branded_cheater);
    }

    #[test]
    fn mayor_hopping_exhausts_retries_and_falls_back_to_all_shards() {
        // Regression for the 3-miss lock-all fallback: if the venue's
        // mayor keeps moving to a user shard outside the held lock set,
        // the optimistic widening loop must give up after
        // `MAYOR_LOCK_RETRIES` attempts and lock every user shard —
        // converging instead of spinning. The retry probe fires at the
        // top of every attempt with no locks held, so it can hop the
        // mayor adversarially between attempts; under debug_assertions
        // the whole dance also runs against the lock-order sentinel,
        // proving the fallback path (the widest lock set the server
        // ever takes) obeys the shard discipline.
        let registry = Arc::new(Registry::new());
        let server = Arc::new(LbsnServer::with_registry(
            SimClock::new(),
            ServerConfig {
                shards: 4,
                ..ServerConfig::default()
            },
            Arc::clone(&registry),
        ));
        let venue = server.register_venue(VenueSpec::new("Contested", abq()));
        // Users 1..=4 land in shards 0..=3; user 1 (shard 0) checks in.
        for _ in 0..4 {
            server.register_user(UserSpec::anonymous());
        }
        let checker = UserId(1);
        {
            let hopper = Arc::clone(&server);
            let venue_shard = server.venues.shard_of(venue.value());
            let venue_slot = server.venues.slot_of(venue.value());
            *server.retry_probe.lock() = Some(Box::new(move |attempt| {
                if attempt >= MAYOR_LOCK_RETRIES {
                    // Fallback attempt: every user shard is about to be
                    // locked, so hopping can no longer evade coverage.
                    return;
                }
                // Park the mayor in a shard the next lock set cannot
                // cover: rotate through shards 1, 2, 3 (never the
                // checker's shard 0, never the previous attempt's).
                let mayor = UserId(2 + u64::from(attempt % 3));
                hopper.venues.write_shard(venue_shard)[venue_slot].mayor = Some(mayor);
            }));
        }
        let out = server.check_in(&req(checker, venue, abq())).unwrap();
        assert!(out.rewarded());
        assert!(out.became_mayor, "hopping incumbents never accrued days");
        assert_eq!(server.venue(venue).unwrap().mayor, Some(checker));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("server.checkin.lock_retry"),
            u64::from(MAYOR_LOCK_RETRIES),
            "one widening per evaded attempt"
        );
        assert_eq!(snap.counter("server.checkin.lock_fallback"), 1);
        // The fallback is a one-check-in affair: a quiet follow-up
        // check-in takes the fast path again.
        *server.retry_probe.lock() = None;
        server.clock().advance(Duration::hours(2));
        server.check_in(&req(checker, venue, abq())).unwrap();
        assert_eq!(
            registry.snapshot().counter("server.checkin.lock_fallback"),
            1
        );
    }

    #[test]
    fn concurrent_reads_during_writes() {
        use std::sync::Arc;
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let venue = server.register_venue(VenueSpec::new("Busy", abq()));
        for _ in 0..50 {
            server.register_user(UserSpec::anonymous());
        }
        let reader = {
            let s = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut seen = 0;
                for _ in 0..200 {
                    s.for_each_venue(|v| seen += v.checkins_here);
                }
                seen
            })
        };
        for i in 1..=50 {
            server.check_in(&req(UserId(i), venue, abq())).unwrap();
            server.clock().advance(Duration::minutes(2));
        }
        reader.join().unwrap();
        assert_eq!(server.venue(venue).unwrap().checkins_here, 50);
    }

    #[test]
    fn shard_metrics_are_exported() {
        let registry = Arc::new(Registry::new());
        let server = LbsnServer::with_registry(
            SimClock::new(),
            ServerConfig::default(),
            Arc::clone(&registry),
        );
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let user = server.register_user(UserSpec::anonymous());
        server.check_in(&req(user, venue, abq())).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("server.shard.count"), 16.0);
        assert!(
            snap.quantile_ns("server.shard.lock_wait", 0.99).is_some(),
            "lock-wait stat populated"
        );
    }

    #[test]
    fn memory_sampler_tracks_state_and_paces_by_sim_time() {
        let registry = Arc::new(Registry::new());
        let server = LbsnServer::with_registry(
            SimClock::new(),
            ServerConfig::default(),
            Arc::clone(&registry),
        );
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let user = server.register_user(UserSpec::named("measured"));
        // The very first check-in elects itself as the sampler (the
        // first sweep is due at virtual time zero).
        server.check_in(&req(user, venue, abq())).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.mem.samples"), 1);
        assert!(snap.gauge("server.mem.users_bytes") > 0.0);
        assert!(snap.gauge("server.mem.venues_bytes") > 0.0);
        assert!(snap.gauge("server.mem.side_maps_bytes") > 0.0);
        let total = snap.gauge("server.mem.total_bytes");
        assert_eq!(
            total,
            snap.gauge("server.mem.users_bytes")
                + snap.gauge("server.mem.venues_bytes")
                + snap.gauge("server.mem.side_maps_bytes")
        );
        // One registered user: per-user equals the total.
        assert_eq!(snap.gauge("server.mem.bytes_per_user"), total);
        // Inside the 6-virtual-hour interval no further sweep runs,
        // however much traffic flows…
        for _ in 0..40 {
            server.clock().advance(Duration::minutes(2));
            server.check_in(&req(user, venue, abq())).unwrap();
        }
        assert_eq!(registry.snapshot().counter("server.mem.samples"), 1);
        // …and once the interval elapses, the sweep still waits for
        // enough further check-ins to amortize the last sweep's cost
        // (one per MEM_SWEEP_BYTES_PER_OP accounted bytes).
        server.clock().advance(Duration::hours(6));
        server.check_in(&req(user, venue, abq())).unwrap();
        assert_eq!(
            registry.snapshot().counter("server.mem.samples"),
            1,
            "the amortization guard defers the due sweep"
        );
        let mut ops = 0;
        while registry.snapshot().counter("server.mem.samples") < 2 {
            server.clock().advance(Duration::minutes(2));
            server.check_in(&req(user, venue, abq())).unwrap();
            ops += 1;
            assert!(ops < 1024, "sweep never re-ran under sustained traffic");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.mem.samples"), 2);
        // The sweep also filled the occupancy column of the heatmap.
        let heat = snap
            .shard_heat
            .iter()
            .find(|h| h.family == "server.shard.heat.users")
            .expect("users heat family in snapshot");
        let occupied: u64 = heat.shards.iter().map(|r| r.occupancy).sum();
        assert_eq!(occupied, 1, "one user resident across all shards");
        assert!(heat.shards.iter().any(|r| r.ops > 0));
    }

    /// Acceptance check for the flight recorder: a worker thread killed
    /// by the lock-order sentinel must leave a dump carrying the
    /// violating thread's held-lock state and the retained trace.
    #[cfg(debug_assertions)]
    #[test]
    fn sentinel_kill_writes_flight_dump_with_forensics() {
        use lbsn_obs::FlightDump;
        let dir = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/flight-test-server"
        );
        let _ = std::fs::remove_dir_all(dir);
        let registry = Arc::new(Registry::new());
        let server = Arc::new(LbsnServer::with_registry(
            SimClock::new(),
            ServerConfig::default(),
            Arc::clone(&registry),
        ));
        server.register_venue(VenueSpec::new("Cafe", abq()));
        server.register_user(UserSpec::named("witness"));
        // A marker event that must survive into the dump's trace tail.
        registry.event(
            lbsn_obs::names::server::ACCOUNT_BRANDED_EVENT,
            &[("user", "u424242".to_string())],
        );
        server.arm_flight_recorder(dir);
        let worker = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                // Rule 1 violation: a user shard while holding a venue
                // shard. The sentinel panics; the flight hook fires
                // before unwinding releases the guards.
                let _venue_guard = server.venues.write_shard(0);
                let _user_guard = server.users.read_shard(0);
            })
        };
        assert!(worker.join().is_err(), "sentinel must kill the worker");
        lbsn_obs::disarm();
        let mut found = false;
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            let dump = FlightDump::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
            if dump.reason.contains("rule 1") {
                assert!(
                    dump.held_locks.iter().any(|l| l.contains("venue shard 0")),
                    "held locks must name the venue shard: {:?}",
                    dump.held_locks
                );
                assert!(
                    dump.events
                        .iter()
                        .any(|e| e.fields.iter().any(|(_, v)| v == "u424242")),
                    "marker event must be in the dump's trace tail"
                );
                found = true;
            }
        }
        assert!(found, "no dump carries the sentinel panic reason");
    }
}
