//! Venues: places users check into, with specials and a mayor.
//!
//! Like [`crate::user`], the struct is split hot/cold (DESIGN.md §13):
//! the check-in hot path reads only location, category, mayor and the
//! valid-check-in counter, which sit inline in [`Venue`]; name/address
//! text (arena-interned), the special, and the visitor-activity block
//! live behind one cold pointer. At paper scale ~97 % of venues never
//! see a check-in, so [`VenueActivity`] is lazily allocated — an idle
//! venue owns no collection headers at all.

use lbsn_geo::GeoPoint;
use lbsn_obs::MemFootprint;
use lbsn_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::compact::{ArenaStr, IdSet, StrArena};
use crate::{UserId, VenueId};

/// Coarse venue category, used by category badges (Fresh Brew, Gym Rat…)
/// and by the workload generator's chain synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VenueCategory {
    /// Coffee shops (the paper's Starbucks free-coffee example).
    Coffee,
    /// Restaurants.
    Restaurant,
    /// Bars and nightlife.
    Bar,
    /// Gyms.
    Gym,
    /// Hotels.
    Hotel,
    /// Airports.
    Airport,
    /// Tourist landmarks (e.g. "Fisherman's Wharf Sign").
    Landmark,
    /// Retail.
    Shop,
    /// Offices.
    Office,
    /// Parks.
    Park,
    /// Anything else.
    Other,
}

impl VenueCategory {
    /// Human-readable label, as the web frontend prints it.
    pub fn label(self) -> &'static str {
        match self {
            VenueCategory::Coffee => "Coffee Shop",
            VenueCategory::Restaurant => "Restaurant",
            VenueCategory::Bar => "Bar",
            VenueCategory::Gym => "Gym",
            VenueCategory::Hotel => "Hotel",
            VenueCategory::Airport => "Airport",
            VenueCategory::Landmark => "Landmark",
            VenueCategory::Shop => "Shop",
            VenueCategory::Office => "Office",
            VenueCategory::Park => "Park",
            VenueCategory::Other => "Other",
        }
    }
}

/// Who qualifies for a venue's real-world special.
///
/// The paper found that "more than 90 % of the rewards were only for
/// mayors", and §3.4 notes some specials "do not require mayorship which
/// are much easier to obtain".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialKind {
    /// Only the current mayor gets the special.
    MayorOnly,
    /// Every valid check-in gets the special.
    EveryCheckin,
    /// Unlocks after `visits` valid check-ins by the same user.
    Loyalty {
        /// Check-ins needed to unlock.
        visits: u32,
    },
}

/// A real-world reward offered by a partner venue (§2.1's "free cup of
/// coffee from Starbucks").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Special {
    /// What the business offers ("Free coffee for the mayor!").
    pub description: String,
    /// Eligibility rule.
    pub kind: SpecialKind,
}

/// A user-left tip/comment on a venue — the medium of §2.2's
/// badmouthing scenario: "A business owner may use location cheating to
/// check into a competing business, and badmouth that business by
/// leaving negative comments."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tip {
    /// The author.
    pub user: UserId,
    /// The comment text.
    pub text: String,
    /// When it was left.
    pub at: Timestamp,
}

/// Parameters for registering a venue.
#[derive(Debug, Clone)]
pub struct VenueSpec {
    /// Venue display name.
    pub name: String,
    /// Street address shown on the profile page.
    pub address: String,
    /// Geographic location.
    pub location: GeoPoint,
    /// Category.
    pub category: VenueCategory,
    /// Partner special, if any.
    pub special: Option<Special>,
}

impl VenueSpec {
    /// A minimal spec: name and location, `Other` category, no special.
    pub fn new(name: impl Into<String>, location: GeoPoint) -> Self {
        VenueSpec {
            name: name.into(),
            address: String::new(),
            location,
            category: VenueCategory::Other,
            special: None,
        }
    }

    /// Sets the category.
    pub fn category(mut self, category: VenueCategory) -> Self {
        self.category = category;
        self
    }

    /// Sets the street address.
    pub fn address(mut self, address: impl Into<String>) -> Self {
        self.address = address.into();
        self
    }

    /// Attaches a special.
    pub fn special(mut self, special: Special) -> Self {
        self.special = Some(special);
        self
    }
}

/// Server-side venue state: the hot half.
///
/// The public profile page (crate [`crate::web`]) exposes the name,
/// address, coordinates, `checkins_here`, unique visitors, the
/// special, the mayor link, and the recent-visitor list — the exact
/// fields the paper's `VenueInfo` table stores (Fig 3.3). Only what
/// the admission pipeline reads per check-in sits inline; the rest is
/// one hop away in [`VenueCold`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Venue {
    /// Venue ID (dense, incrementing).
    pub id: VenueId,
    /// Location.
    pub location: GeoPoint,
    /// Category.
    pub category: VenueCategory,
    /// Current mayor, if any.
    pub mayor: Option<UserId>,
    /// Total *valid* check-ins here.
    pub checkins_here: u64,
    /// Registration time.
    pub created_at: Timestamp,
    /// Cold state (profile text, special, visitor activity).
    cold: Box<VenueCold>,
}

/// Server-side venue state: the cold half. Reached by web-page,
/// reward (specials) and forensics paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VenueCold {
    /// Name + address, concatenated and arena-interned; `name_len`
    /// splits the two (see [`Venue::name`] / [`Venue::address`]).
    text: ArenaStr,
    /// Byte length of the name prefix of `text`.
    name_len: u16,
    /// Partner special, if any (boxed: >99 % of synthesized venues have
    /// none, so only the `Option` niche is resident).
    pub special: Option<Box<Special>>,
    /// Visitor activity, allocated on the first valid check-in or tip.
    activity: Option<Box<VenueActivity>>,
}

/// The per-venue state that only exists once somebody actually checks
/// in (or leaves a tip). At rung scale ~97 % of venues never do.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VenueActivity {
    /// Distinct users who have validly checked in here.
    pub unique_visitors: IdSet<UserId>,
    /// The "Who's been here" list: most recent distinct visitors,
    /// newest first, capped at the server's configured length.
    pub recent_visitors: Vec<UserId>,
    /// User-left tips, newest first.
    pub tips: Vec<Tip>,
}

impl std::ops::Deref for Venue {
    type Target = VenueCold;
    fn deref(&self) -> &VenueCold {
        &self.cold
    }
}

impl std::ops::DerefMut for Venue {
    fn deref_mut(&mut self) -> &mut VenueCold {
        &mut self.cold
    }
}

static EMPTY_USERS: [UserId; 0] = [];
static EMPTY_TIPS: [Tip; 0] = [];

impl Venue {
    pub(crate) fn from_spec(
        id: VenueId,
        spec: VenueSpec,
        now: Timestamp,
        arena: &mut StrArena,
    ) -> Self {
        let mut text = String::with_capacity(spec.name.len() + spec.address.len());
        text.push_str(&spec.name);
        text.push_str(&spec.address);
        Venue::from_parts(
            id,
            spec.location,
            spec.category,
            spec.special,
            now,
            arena.intern(&text),
            spec.name.len() as u16,
        )
    }

    /// Assembles a venue around already-interned profile text — the
    /// bulk-load entry point, where whole batches share one arena chunk.
    pub(crate) fn from_parts(
        id: VenueId,
        location: GeoPoint,
        category: VenueCategory,
        special: Option<Special>,
        now: Timestamp,
        text: ArenaStr,
        name_len: u16,
    ) -> Self {
        Venue {
            id,
            location,
            category,
            mayor: None,
            checkins_here: 0,
            created_at: now,
            cold: Box::new(VenueCold {
                text,
                name_len,
                special: special.map(Box::new),
                activity: None,
            }),
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.cold.text[..self.cold.name_len as usize]
    }

    /// Street address.
    pub fn address(&self) -> &str {
        &self.cold.text[self.cold.name_len as usize..]
    }

    /// Distinct users who have validly checked in here, ascending by ID.
    pub fn unique_visitors(&self) -> &[UserId] {
        self.cold
            .activity
            .as_ref()
            .map_or(&EMPTY_USERS, |a| a.unique_visitors.as_slice())
    }

    /// The "Who's been here" list, newest first.
    pub fn recent_visitors(&self) -> &[UserId] {
        self.cold
            .activity
            .as_ref()
            .map_or(&EMPTY_USERS, |a| &a.recent_visitors)
    }

    /// User-left tips, newest first.
    pub fn tips(&self) -> &[Tip] {
        self.cold.activity.as_ref().map_or(&EMPTY_TIPS, |a| &a.tips)
    }

    /// The activity block, allocated on first use.
    pub(crate) fn activity_mut(&mut self) -> &mut VenueActivity {
        self.cold.activity.get_or_insert_with(Default::default)
    }

    /// Records a valid check-in's effect on venue counters and the
    /// recent-visitor list. A visitor already on the list is moved to the
    /// front rather than duplicated (the paper's list diffing relies on
    /// presence, not multiplicity).
    pub(crate) fn record_valid_checkin(&mut self, user: UserId, recent_cap: usize) {
        self.checkins_here += 1;
        let activity = self.activity_mut();
        activity.unique_visitors.insert(user);
        if let Some(pos) = activity.recent_visitors.iter().position(|u| *u == user) {
            activity.recent_visitors.remove(pos);
        }
        activity.recent_visitors.insert(0, user);
        activity.recent_visitors.truncate(recent_cap);
    }

    /// Whether this venue currently has a mayor-only special with no
    /// mayor — the §3.4 "easy win" target class.
    pub fn is_unclaimed_special(&self) -> bool {
        self.mayor.is_none()
            && matches!(
                self.special.as_deref(),
                Some(Special {
                    kind: SpecialKind::MayorOnly,
                    ..
                })
            )
    }

    /// Drops excess collection capacity (post-bulk-load compaction).
    pub fn shrink_to_fit(&mut self) {
        if let Some(activity) = &mut self.cold.activity {
            activity.unique_visitors.shrink_to_fit();
            activity.recent_visitors.shrink_to_fit();
            activity.tips.shrink_to_fit();
        }
    }
}

// Inline leaves of venue state: no owned heap.
lbsn_obs::mem_footprint_inline!(VenueCategory, SpecialKind);

impl MemFootprint for Special {
    fn heap_bytes(&self) -> usize {
        let Special {
            description,
            kind: _,
        } = self;
        description.heap_bytes()
    }
}

impl MemFootprint for Tip {
    fn heap_bytes(&self) -> usize {
        let Tip {
            user: _,
            text,
            at: _,
        } = self;
        text.heap_bytes()
    }
}

impl MemFootprint for Venue {
    fn heap_bytes(&self) -> usize {
        // Exhaustive destructure so the `mem-footprint-field-missing`
        // lint sees every field; inline fields contribute nothing.
        let Venue {
            id: _,
            location: _,
            category: _,
            mayor: _,
            checkins_here: _,
            created_at: _,
            cold,
        } = self;
        cold.heap_bytes()
    }
}

impl MemFootprint for VenueCold {
    fn heap_bytes(&self) -> usize {
        // `text` charges nothing here: arena chunk bytes are accounted
        // once per shard (side_maps_bytes), not per venue.
        let VenueCold {
            text,
            name_len: _,
            special,
            activity,
        } = self;
        text.heap_bytes() + special.heap_bytes() + activity.heap_bytes()
    }
}

impl MemFootprint for VenueActivity {
    fn heap_bytes(&self) -> usize {
        let VenueActivity {
            unique_visitors,
            recent_visitors,
            tips,
        } = self;
        unique_visitors.heap_bytes() + recent_visitors.heap_bytes() + tips.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn venue() -> Venue {
        let spec = VenueSpec::new("Test Cafe", GeoPoint::new(35.0, -106.0).unwrap())
            .category(VenueCategory::Coffee)
            .address("123 Central Ave")
            .special(Special {
                description: "Free coffee for the mayor!".into(),
                kind: SpecialKind::MayorOnly,
            });
        Venue::from_spec(VenueId(1), spec, Timestamp(0), &mut StrArena::new())
    }

    #[test]
    fn from_spec_initialises_counters() {
        let v = venue();
        assert_eq!(v.checkins_here, 0);
        assert!(v.unique_visitors().is_empty());
        assert!(v.recent_visitors().is_empty());
        assert_eq!(v.mayor, None);
        assert_eq!(v.category.label(), "Coffee Shop");
        assert_eq!(v.name(), "Test Cafe");
        assert_eq!(v.address(), "123 Central Ave");
    }

    #[test]
    fn idle_venue_owns_no_activity_heap() {
        let v = venue();
        // The special is boxed; everything else an idle venue holds is
        // the cold block itself. No collection headers.
        let expected = std::mem::size_of::<VenueCold>()
            + std::mem::size_of::<Special>()
            + "Free coffee for the mayor!".len();
        assert_eq!(v.heap_bytes(), expected);
    }

    #[test]
    fn recent_list_dedupes_and_caps() {
        let mut v = venue();
        for i in 1..=5 {
            v.record_valid_checkin(UserId(i), 3);
        }
        // Cap 3: only the 3 most recent remain, newest first.
        assert_eq!(v.recent_visitors(), &[UserId(5), UserId(4), UserId(3)]);
        // Revisit by user 3 moves them to the front without duplication.
        v.record_valid_checkin(UserId(3), 3);
        assert_eq!(v.recent_visitors(), &[UserId(3), UserId(5), UserId(4)]);
        assert_eq!(v.checkins_here, 6);
        assert_eq!(v.unique_visitors().len(), 5);
    }

    #[test]
    fn unclaimed_special_detection() {
        let mut v = venue();
        assert!(v.is_unclaimed_special());
        v.mayor = Some(UserId(9));
        assert!(!v.is_unclaimed_special());
        v.mayor = None;
        v.special = Some(Box::new(Special {
            description: "10% off any check-in".into(),
            kind: SpecialKind::EveryCheckin,
        }));
        assert!(!v.is_unclaimed_special(), "non-mayor specials don't count");
        v.special = None;
        assert!(!v.is_unclaimed_special());
    }
}
