//! Venues: places users check into, with specials and a mayor.

use std::collections::{HashSet, VecDeque};

use lbsn_geo::GeoPoint;
use lbsn_obs::MemFootprint;
use lbsn_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::{UserId, VenueId};

/// Coarse venue category, used by category badges (Fresh Brew, Gym Rat…)
/// and by the workload generator's chain synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VenueCategory {
    /// Coffee shops (the paper's Starbucks free-coffee example).
    Coffee,
    /// Restaurants.
    Restaurant,
    /// Bars and nightlife.
    Bar,
    /// Gyms.
    Gym,
    /// Hotels.
    Hotel,
    /// Airports.
    Airport,
    /// Tourist landmarks (e.g. "Fisherman's Wharf Sign").
    Landmark,
    /// Retail.
    Shop,
    /// Offices.
    Office,
    /// Parks.
    Park,
    /// Anything else.
    Other,
}

impl VenueCategory {
    /// Human-readable label, as the web frontend prints it.
    pub fn label(self) -> &'static str {
        match self {
            VenueCategory::Coffee => "Coffee Shop",
            VenueCategory::Restaurant => "Restaurant",
            VenueCategory::Bar => "Bar",
            VenueCategory::Gym => "Gym",
            VenueCategory::Hotel => "Hotel",
            VenueCategory::Airport => "Airport",
            VenueCategory::Landmark => "Landmark",
            VenueCategory::Shop => "Shop",
            VenueCategory::Office => "Office",
            VenueCategory::Park => "Park",
            VenueCategory::Other => "Other",
        }
    }
}

/// Who qualifies for a venue's real-world special.
///
/// The paper found that "more than 90 % of the rewards were only for
/// mayors", and §3.4 notes some specials "do not require mayorship which
/// are much easier to obtain".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialKind {
    /// Only the current mayor gets the special.
    MayorOnly,
    /// Every valid check-in gets the special.
    EveryCheckin,
    /// Unlocks after `visits` valid check-ins by the same user.
    Loyalty {
        /// Check-ins needed to unlock.
        visits: u32,
    },
}

/// A real-world reward offered by a partner venue (§2.1's "free cup of
/// coffee from Starbucks").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Special {
    /// What the business offers ("Free coffee for the mayor!").
    pub description: String,
    /// Eligibility rule.
    pub kind: SpecialKind,
}

/// A user-left tip/comment on a venue — the medium of §2.2's
/// badmouthing scenario: "A business owner may use location cheating to
/// check into a competing business, and badmouth that business by
/// leaving negative comments."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tip {
    /// The author.
    pub user: UserId,
    /// The comment text.
    pub text: String,
    /// When it was left.
    pub at: Timestamp,
}

/// Parameters for registering a venue.
#[derive(Debug, Clone)]
pub struct VenueSpec {
    /// Venue display name.
    pub name: String,
    /// Street address shown on the profile page.
    pub address: String,
    /// Geographic location.
    pub location: GeoPoint,
    /// Category.
    pub category: VenueCategory,
    /// Partner special, if any.
    pub special: Option<Special>,
}

impl VenueSpec {
    /// A minimal spec: name and location, `Other` category, no special.
    pub fn new(name: impl Into<String>, location: GeoPoint) -> Self {
        VenueSpec {
            name: name.into(),
            address: String::new(),
            location,
            category: VenueCategory::Other,
            special: None,
        }
    }

    /// Sets the category.
    pub fn category(mut self, category: VenueCategory) -> Self {
        self.category = category;
        self
    }

    /// Sets the street address.
    pub fn address(mut self, address: impl Into<String>) -> Self {
        self.address = address.into();
        self
    }

    /// Attaches a special.
    pub fn special(mut self, special: Special) -> Self {
        self.special = Some(special);
        self
    }
}

/// Server-side venue state.
///
/// The public profile page (crate [`crate::web`]) exposes `name`,
/// `address`, coordinates, `checkins_here`, `unique_visitors`, the
/// special, the mayor link, and the recent-visitor list — the exact
/// fields the paper's `VenueInfo` table stores (Fig 3.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Venue {
    /// Venue ID (dense, incrementing).
    pub id: VenueId,
    /// Display name.
    pub name: String,
    /// Street address.
    pub address: String,
    /// Location.
    pub location: GeoPoint,
    /// Category.
    pub category: VenueCategory,
    /// Partner special, if any.
    pub special: Option<Special>,
    /// Current mayor, if any.
    pub mayor: Option<UserId>,
    /// Total *valid* check-ins here.
    pub checkins_here: u64,
    /// Distinct users who have validly checked in here.
    pub unique_visitors: HashSet<UserId>,
    /// The "Who's been here" list: most recent distinct visitors,
    /// newest first, capped at the server's configured length.
    pub recent_visitors: VecDeque<UserId>,
    /// User-left tips, newest first.
    pub tips: Vec<Tip>,
    /// Registration time.
    pub created_at: Timestamp,
}

impl Venue {
    pub(crate) fn from_spec(id: VenueId, spec: VenueSpec, now: Timestamp) -> Self {
        Venue {
            id,
            name: spec.name,
            address: spec.address,
            location: spec.location,
            category: spec.category,
            special: spec.special,
            mayor: None,
            checkins_here: 0,
            unique_visitors: HashSet::new(),
            recent_visitors: VecDeque::new(),
            tips: Vec::new(),
            created_at: now,
        }
    }

    /// Records a valid check-in's effect on venue counters and the
    /// recent-visitor list. A visitor already on the list is moved to the
    /// front rather than duplicated (the paper's list diffing relies on
    /// presence, not multiplicity).
    pub(crate) fn record_valid_checkin(&mut self, user: UserId, recent_cap: usize) {
        self.checkins_here += 1;
        self.unique_visitors.insert(user);
        if let Some(pos) = self.recent_visitors.iter().position(|u| *u == user) {
            self.recent_visitors.remove(pos);
        }
        self.recent_visitors.push_front(user);
        while self.recent_visitors.len() > recent_cap {
            self.recent_visitors.pop_back();
        }
    }

    /// Whether this venue currently has a mayor-only special with no
    /// mayor — the §3.4 "easy win" target class.
    pub fn is_unclaimed_special(&self) -> bool {
        self.mayor.is_none()
            && matches!(
                self.special,
                Some(Special {
                    kind: SpecialKind::MayorOnly,
                    ..
                })
            )
    }
}

// Inline leaves of venue state: no owned heap.
lbsn_obs::mem_footprint_inline!(VenueCategory, SpecialKind);

impl MemFootprint for Special {
    fn heap_bytes(&self) -> usize {
        let Special {
            description,
            kind: _,
        } = self;
        description.heap_bytes()
    }
}

impl MemFootprint for Tip {
    fn heap_bytes(&self) -> usize {
        let Tip {
            user: _,
            text,
            at: _,
        } = self;
        text.heap_bytes()
    }
}

impl MemFootprint for Venue {
    fn heap_bytes(&self) -> usize {
        // Exhaustive destructure so the `mem-footprint-field-missing`
        // lint sees every field; inline fields contribute nothing.
        let Venue {
            id: _,
            name,
            address,
            location: _,
            category: _,
            special,
            mayor: _,
            checkins_here: _,
            unique_visitors,
            recent_visitors,
            tips,
            created_at: _,
        } = self;
        name.heap_bytes()
            + address.heap_bytes()
            + special.heap_bytes()
            + unique_visitors.heap_bytes()
            + recent_visitors.heap_bytes()
            + tips.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn venue() -> Venue {
        let spec = VenueSpec::new("Test Cafe", GeoPoint::new(35.0, -106.0).unwrap())
            .category(VenueCategory::Coffee)
            .address("123 Central Ave")
            .special(Special {
                description: "Free coffee for the mayor!".into(),
                kind: SpecialKind::MayorOnly,
            });
        Venue::from_spec(VenueId(1), spec, Timestamp(0))
    }

    #[test]
    fn from_spec_initialises_counters() {
        let v = venue();
        assert_eq!(v.checkins_here, 0);
        assert!(v.unique_visitors.is_empty());
        assert!(v.recent_visitors.is_empty());
        assert_eq!(v.mayor, None);
        assert_eq!(v.category.label(), "Coffee Shop");
    }

    #[test]
    fn recent_list_dedupes_and_caps() {
        let mut v = venue();
        for i in 1..=5 {
            v.record_valid_checkin(UserId(i), 3);
        }
        // Cap 3: only the 3 most recent remain, newest first.
        assert_eq!(
            v.recent_visitors,
            VecDeque::from(vec![UserId(5), UserId(4), UserId(3)])
        );
        // Revisit by user 3 moves them to the front without duplication.
        v.record_valid_checkin(UserId(3), 3);
        assert_eq!(
            v.recent_visitors,
            VecDeque::from(vec![UserId(3), UserId(5), UserId(4)])
        );
        assert_eq!(v.checkins_here, 6);
        assert_eq!(v.unique_visitors.len(), 5);
    }

    #[test]
    fn unclaimed_special_detection() {
        let mut v = venue();
        assert!(v.is_unclaimed_special());
        v.mayor = Some(UserId(9));
        assert!(!v.is_unclaimed_special());
        v.mayor = None;
        v.special = Some(Special {
            description: "10% off any check-in".into(),
            kind: SpecialKind::EveryCheckin,
        });
        assert!(!v.is_unclaimed_special(), "non-mayor specials don't count");
        v.special = None;
        assert!(!v.is_unclaimed_special());
    }
}
