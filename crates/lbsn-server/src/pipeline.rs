//! The staged check-in **admission pipeline**: detectors → record →
//! reward rules, with an optional verifier stage up front.
//!
//! The paper's core claim (§2.3, §5.1) is about *which admission rules
//! run on a check-in* — Foursquare's concealed cheater code, and the
//! proposed location-verification defenses. This module makes that rule
//! chain first-class: every §2.3 rule is an independent [`Detector`],
//! reward tiers are composable [`RewardRule`]s, and §5.1-style location
//! verifiers slot in as [`CheckinVerifier`] stages — so a verified
//! deployment is a different pipeline *configuration*, not a different
//! code path. The whole chain is assembled from a serde-loadable
//! [`PolicyConfig`], which is what lets
//! rule-ablation sweeps and defense-vs-attack matrices run from JSON
//! alone.
//!
//! # Stage order
//!
//! 1. **Verify** (only when verifiers are installed): each
//!    [`CheckinVerifier`] judges the request against out-of-band
//!    [`CheckinEvidence`] *before any shard lock
//!    is taken* — a rejected check-in is never recorded, matching the
//!    §5.1 premise that verification happens at submission time.
//! 2. **Detect**: every [`Detector`] runs in order under the check-in
//!    lock set with a read-only [`RuleContext`]. A terminal detector
//!    (the branded-account check) short-circuits the rest.
//! 3. **Record** (fixed): the check-in is appended to history whether or
//!    not it was flagged, and flag escalation (account branding) runs.
//! 4. **Reward**: each [`RewardRule`] mutates user/venue state through a
//!    [`RewardContext`] — mayorship, then badges, then points, then
//!    specials, matching the §2.1 ladder.
//!
//! # What each stage may touch
//!
//! Detectors get immutable borrows of the submitting user and the
//! claimed venue only. Reward rules get mutable access to the locked
//! user shard set and venue shard, plus the append-only category table
//! (a leaf lock, per rule 4 of the locking discipline documented on the
//! `shard` module). Verifiers run before locks exist and see only the
//! request, the venue's registered location, and the evidence.

use lbsn_geo::GeoPoint;
use lbsn_obs::{Counter, DecisionBuilder, Histogram};
use lbsn_sim::Timestamp;

use crate::checkin::{CheatFlag, CheckinEvidence, CheckinRequest};
use crate::metrics::ServerMetrics;
use crate::policy::PolicyConfig;
use crate::rewards::{decide_mayor, evaluate_badges, Badge, PointsPolicy, VenueLookup};
use crate::shard::{LeafLock, WriteSet};
use crate::user::User;
use crate::venue::{SpecialKind, Venue, VenueCategory};
use crate::VenueId;

pub use crate::cheatercode::{CheatRule as Detector, Judgement, RuleContext};
use crate::cheatercode::{
    FrequentCheckinRule, GpsProximityRule, RapidFireRule, SuperhumanSpeedRule,
};

/// The branded-account detector: once the §4.2 escalation has marked an
/// account as a cheater, every subsequent check-in is invalidated
/// without consulting any other rule.
///
/// Terminal (see [`Detector::is_terminal`]): matching the observed
/// policy, a branded account's check-in carries *only*
/// [`CheatFlag::AccountFlagged`] — the per-check-in rules never run.
#[derive(Debug, Clone, Default)]
pub struct BrandedAccountDetector;

impl Detector for BrandedAccountDetector {
    fn name(&self) -> &'static str {
        "branded-account"
    }

    fn check(&self, ctx: &RuleContext<'_>) -> Option<CheatFlag> {
        ctx.user
            .branded_cheater
            .then_some(CheatFlag::AccountFlagged)
    }

    fn judge(&self, ctx: &RuleContext<'_>) -> Judgement {
        let branded = ctx.user.branded_cheater;
        Judgement {
            flag: branded.then_some(CheatFlag::AccountFlagged),
            observed: if branded { 1.0 } else { 0.0 },
            threshold: 1.0,
            unit: "branded",
        }
    }

    fn is_terminal(&self) -> bool {
        true
    }
}

/// Out-of-band verdict from a [`CheckinVerifier`] stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifierVerdict {
    /// Positive evidence the user is where they claim.
    Admit,
    /// Positive evidence of location cheating: drop the check-in.
    Reject,
    /// No judgement (no evidence, unequipped venue, …): fall through to
    /// the detector stage, like an unverified deployment would.
    Abstain,
}

/// What a verifier stage may inspect. Verifiers run *before* the
/// check-in lock set is acquired, so no entity state appears here —
/// only the request, the venue's immutable registered location, and
/// whatever out-of-band evidence the transport captured.
pub struct VerifyContext<'a> {
    /// The raw request.
    pub request: &'a CheckinRequest,
    /// Registered location of the claimed venue.
    pub venue_location: GeoPoint,
    /// Transport-level evidence, when the deployment captures any.
    /// `None` on the plain [`LbsnServer::check_in`](crate::LbsnServer::check_in) path.
    pub evidence: Option<&'a CheckinEvidence>,
    /// Server time of the submission.
    pub now: Timestamp,
}

/// A pre-admission location-verification stage (§5.1): judges a
/// check-in from transport evidence before it is recorded.
///
/// `lbsn-defense` adapts its `VerifierStack` into this trait, making a
/// verified deployment one [`LbsnServer::with_pipeline`](crate::LbsnServer::with_pipeline)
/// call instead of an external wrapper service.
pub trait CheckinVerifier: Send + Sync {
    /// Stable stage name, used for the per-verifier rejection counter.
    fn name(&self) -> &'static str;
    /// Judge a check-in.
    fn verify(&self, ctx: &VerifyContext<'_>) -> VerifierVerdict;
    /// Judge a check-in and name the deciding inner mechanism (e.g. the
    /// rejecting verifier inside a composite stack), for the decision
    /// audit plane. The default reports no inner evidence.
    fn verify_explained(&self, ctx: &VerifyContext<'_>) -> (VerifierVerdict, &'static str) {
        (self.verify(ctx), "")
    }
}

/// Mutable state a [`RewardRule`] works against: the locked user shard
/// set and venue shard, plus the running outcome accumulators.
///
/// Only the pipeline constructs one. Rules use the accessor methods; the
/// struct's fields stay private so the lock discipline (user shards and
/// one venue shard held; category table taken as a leaf read lock) is
/// enforced by construction.
pub struct RewardContext<'a, 'w> {
    request: &'a CheckinRequest,
    now: Timestamp,
    first_visit: bool,
    first_of_day: bool,
    became_mayor: bool,
    is_mayor: bool,
    points: u64,
    new_badges: Vec<Badge>,
    special_unlocked: Option<String>,
    users: &'a mut WriteSet<'w, User>,
    venues: &'a mut Vec<Venue>,
    venue_slot: usize,
    categories: &'a LeafLock<Vec<VenueCategory>>,
}

impl<'a, 'w> RewardContext<'a, 'w> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        request: &'a CheckinRequest,
        now: Timestamp,
        first_visit: bool,
        first_of_day: bool,
        users: &'a mut WriteSet<'w, User>,
        venues: &'a mut Vec<Venue>,
        venue_slot: usize,
        categories: &'a LeafLock<Vec<VenueCategory>>,
    ) -> Self {
        // `is_mayor` starts as the *current* seat holder check so a
        // pipeline without the mayorship rule still reports the seat
        // truthfully; the mayorship rule overwrites it after deciding.
        let is_mayor = venues[venue_slot].mayor == Some(request.user);
        RewardContext {
            request,
            now,
            first_visit,
            first_of_day,
            became_mayor: false,
            is_mayor,
            points: 0,
            new_badges: Vec::new(),
            special_unlocked: None,
            users,
            venues,
            venue_slot,
            categories,
        }
    }

    /// The raw request.
    pub fn request(&self) -> &CheckinRequest {
        self.request
    }

    /// Server time of the submission.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Whether this is the user's first-ever visit to the venue.
    pub fn first_visit(&self) -> bool {
        self.first_visit
    }

    /// Whether this is the user's first valid check-in of the virtual day.
    pub fn first_of_day(&self) -> bool {
        self.first_of_day
    }

    /// Whether an earlier rule transferred the mayorship to this user.
    pub fn became_mayor(&self) -> bool {
        self.became_mayor
    }

    /// Whether the user holds the venue's mayor seat right now.
    pub fn is_mayor(&self) -> bool {
        self.is_mayor
    }

    /// Points accumulated so far by earlier rules.
    pub fn points(&self) -> u64 {
        self.points
    }

    /// The submitting user (the triggering check-in is already in their
    /// history).
    pub fn user(&self) -> &User {
        self.users
            .get(self.request.user.value())
            .expect("check_in validated the user id") // lint:allow(no-unwrap-hot-path): id validated at admission
    }

    /// Mutable access to the submitting user.
    pub fn user_mut(&mut self) -> &mut User {
        self.users
            .get_mut(self.request.user.value())
            .expect("check_in validated the user id") // lint:allow(no-unwrap-hot-path): id validated at admission
    }

    /// The claimed venue (the check-in is already counted on it).
    pub fn venue(&self) -> &Venue {
        &self.venues[self.venue_slot]
    }

    /// Mutable access to the claimed venue.
    pub fn venue_mut(&mut self) -> &mut Venue {
        &mut self.venues[self.venue_slot]
    }

    /// Category of any registered venue, via the append-only category
    /// table (leaf read lock — safe to call while shard locks are held).
    pub fn category_of(&self, venue: VenueId) -> Option<VenueCategory> {
        let categories = self.categories.read();
        CategoryTable(&categories).category_of(venue)
    }

    /// Awards `points` to the submitting user and the running outcome.
    pub fn award_points(&mut self, points: u64) {
        self.user_mut().points += points;
        self.points += points;
    }

    /// Grants `badge` to the submitting user and the running outcome
    /// (no-op if already held).
    pub fn award_badge(&mut self, badge: Badge) {
        if self.user_mut().badges.insert(badge) {
            self.new_badges.push(badge);
        }
    }

    /// Marks a venue special as unlocked by this check-in.
    pub fn unlock_special(&mut self, description: impl Into<String>) {
        self.special_unlocked = Some(description.into());
    }

    fn finish(self) -> RewardOutcome {
        RewardOutcome {
            points: self.points,
            new_badges: self.new_badges,
            is_mayor: self.is_mayor,
            became_mayor: self.became_mayor,
            special_unlocked: self.special_unlocked,
        }
    }
}

/// What the reward stage produced, folded into the
/// [`CheckinOutcome`](crate::CheckinOutcome) by the server.
pub(crate) struct RewardOutcome {
    pub points: u64,
    pub new_badges: Vec<Badge>,
    pub is_mayor: bool,
    pub became_mayor: bool,
    pub special_unlocked: Option<String>,
}

/// One composable stage of the §2.1 reward ladder, applied to a
/// check-in that passed every detector.
pub trait RewardRule: Send + Sync {
    /// Stable rule name, used in ablation reports.
    fn name(&self) -> &'static str;
    /// Apply the rule's effects to user/venue state and the outcome.
    fn apply(&self, ctx: &mut RewardContext<'_, '_>);
}

/// Category lookup backed by the server's append-only category table.
struct CategoryTable<'a>(&'a [VenueCategory]);

impl VenueLookup for CategoryTable<'_> {
    fn category_of(&self, venue: VenueId) -> Option<VenueCategory> {
        let idx = venue.value().checked_sub(1)? as usize;
        self.0.get(idx).copied()
    }
}

/// The §2.1 mayorship contest: most distinct check-in days in the
/// trailing 60-day window takes the seat; ties keep the incumbent.
#[derive(Debug, Clone, Default)]
pub struct MayorshipRule;

impl RewardRule for MayorshipRule {
    fn name(&self) -> &'static str {
        "mayorship"
    }

    fn apply(&self, ctx: &mut RewardContext<'_, '_>) {
        let uid = ctx.request.user.value();
        let venue_id = ctx.request.venue;
        // The incumbent (if any) is covered by the lock set —
        // `check_in` validated that before entering the pipeline.
        let became_mayor = {
            let venue = &ctx.venues[ctx.venue_slot];
            let challenger = ctx.users.get(uid).expect("validated"); // lint:allow(no-unwrap-hot-path): id validated at admission
            let incumbent = venue.mayor.and_then(|m| ctx.users.get(m.value()));
            decide_mayor(venue, challenger, incumbent, ctx.now)
        };
        if became_mayor {
            if let Some(old) = ctx.venues[ctx.venue_slot].mayor {
                if let Some(old_mayor) = ctx.users.get_mut(old.value()) {
                    old_mayor.mayorships.remove(&venue_id);
                }
            }
            ctx.venues[ctx.venue_slot].mayor = Some(ctx.request.user);
            ctx.users
                .get_mut(uid)
                .expect("validated") // lint:allow(no-unwrap-hot-path): id validated at admission
                .mayorships
                .insert(venue_id);
        }
        ctx.became_mayor = became_mayor;
        ctx.is_mayor = ctx.venues[ctx.venue_slot].mayor == Some(ctx.request.user);
    }
}

/// Badge evaluation on post-update state (§2.1's second tier).
#[derive(Debug, Clone, Default)]
pub struct BadgeRule;

impl RewardRule for BadgeRule {
    fn name(&self) -> &'static str {
        "badges"
    }

    fn apply(&self, ctx: &mut RewardContext<'_, '_>) {
        let uid = ctx.request.user.value();
        // Categories come from the append-only table — no extra venue
        // shards locked (leaf-lock rule).
        let new_badges = {
            let categories = ctx.categories.read();
            let user = ctx.users.get(uid).expect("validated"); // lint:allow(no-unwrap-hot-path): id validated at admission
            evaluate_badges(
                user,
                &ctx.venues[ctx.venue_slot],
                ctx.now,
                &CategoryTable(&categories),
            )
        };
        for b in &new_badges {
            ctx.users.get_mut(uid).expect("validated").badges.insert(*b); // lint:allow(no-unwrap-hot-path): id validated at admission
        }
        ctx.new_badges = new_badges;
    }
}

/// Point awards per the configured [`PointsPolicy`] (§2.1's first tier).
#[derive(Debug, Clone)]
pub struct PointsRule {
    /// Point values.
    pub policy: PointsPolicy,
}

impl RewardRule for PointsRule {
    fn name(&self) -> &'static str {
        "points"
    }

    fn apply(&self, ctx: &mut RewardContext<'_, '_>) {
        let points = self
            .policy
            .award(ctx.first_visit, ctx.first_of_day, ctx.became_mayor);
        ctx.users
            .get_mut(ctx.request.user.value())
            .expect("validated") // lint:allow(no-unwrap-hot-path): id validated at admission
            .points += points;
        ctx.points = points;
    }
}

/// Venue specials — the "real world rewards" tier of §2.1, and the
/// economic damage vector of §6's free-goods analysis.
#[derive(Debug, Clone, Default)]
pub struct SpecialsRule;

impl RewardRule for SpecialsRule {
    fn name(&self) -> &'static str {
        "specials"
    }

    fn apply(&self, ctx: &mut RewardContext<'_, '_>) {
        let special_unlocked = {
            let venue = &ctx.venues[ctx.venue_slot];
            let user = ctx.users.get(ctx.request.user.value()).expect("validated"); // lint:allow(no-unwrap-hot-path): id validated at admission
            venue.special.as_ref().and_then(|sp| match sp.kind {
                SpecialKind::MayorOnly if ctx.is_mayor => Some(sp.description.clone()),
                SpecialKind::MayorOnly => None,
                SpecialKind::EveryCheckin => Some(sp.description.clone()),
                SpecialKind::Loyalty { visits } => {
                    let count = user
                        .history
                        .iter()
                        .filter(|r| r.rewarded && r.venue == ctx.request.venue)
                        .count();
                    (count as u32 >= visits).then(|| sp.description.clone())
                }
            })
        };
        ctx.special_unlocked = special_unlocked;
    }
}

/// A detector with its pre-resolved observability handles.
struct InstalledDetector {
    detector: Box<dyn Detector>,
    /// `server.checkin.detector.{name}.rejected`
    rejected: Counter,
    /// `server.checkin.detector.{name}.latency`
    latency: Histogram,
}

/// A verifier stage with its pre-resolved rejection counter.
struct InstalledVerifier {
    verifier: Box<dyn CheckinVerifier>,
    /// `server.checkin.verifier.{name}.rejected`
    rejected: Counter,
}

/// The assembled stage chain a server runs every check-in through.
///
/// Built from a [`PolicyConfig`] at server construction
/// ([`LbsnServer::with_pipeline`](crate::LbsnServer::with_pipeline));
/// per-stage metric handles are resolved once here so the hot path
/// never touches the registry's name map.
pub struct AdmissionPipeline {
    detectors: Vec<InstalledDetector>,
    reward_rules: Vec<Box<dyn RewardRule>>,
    verifiers: Vec<InstalledVerifier>,
}

impl std::fmt::Debug for AdmissionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPipeline")
            .field("detectors", &self.detector_names())
            .field("reward_rules", &self.reward_rule_names())
            .field("verifiers", &self.verifier_names())
            .finish()
    }
}

impl AdmissionPipeline {
    /// Assembles the stage chain: the branded-account detector first
    /// (terminal), then each enabled §2.3 rule in the paper's order,
    /// then the enabled reward tiers in ladder order, plus the given
    /// verifier stages up front.
    pub(crate) fn from_policy(
        policy: &PolicyConfig,
        metrics: &ServerMetrics,
        verifiers: Vec<Box<dyn CheckinVerifier>>,
    ) -> Self {
        let d = &policy.detectors;
        let mut detectors: Vec<Box<dyn Detector>> = vec![Box::new(BrandedAccountDetector)];
        if d.enable_gps {
            detectors.push(Box::new(GpsProximityRule {
                radius_m: d.gps_radius_m,
            }));
        }
        if d.enable_cooldown {
            detectors.push(Box::new(FrequentCheckinRule {
                cooldown: d.same_venue_cooldown,
            }));
        }
        if d.enable_speed {
            detectors.push(Box::new(SuperhumanSpeedRule {
                max_speed_mps: d.max_speed_mps,
                max_gap: d.speed_rule_max_gap,
            }));
        }
        if d.enable_rapid_fire {
            detectors.push(Box::new(RapidFireRule {
                count: d.rapid_fire_count,
                square_m: d.rapid_fire_square_m,
                max_interval: d.rapid_fire_max_interval,
            }));
        }

        let r = &policy.rewards;
        let mut reward_rules: Vec<Box<dyn RewardRule>> = Vec::new();
        if r.enable_mayorships {
            reward_rules.push(Box::new(MayorshipRule));
        }
        if r.enable_badges {
            reward_rules.push(Box::new(BadgeRule));
        }
        if r.enable_points {
            reward_rules.push(Box::new(PointsRule {
                policy: r.points.clone(),
            }));
        }
        if r.enable_specials {
            reward_rules.push(Box::new(SpecialsRule));
        }

        AdmissionPipeline {
            detectors: detectors
                .into_iter()
                .map(|detector| {
                    let (rejected, latency) = metrics.detector_metrics(detector.name());
                    InstalledDetector {
                        detector,
                        rejected,
                        latency,
                    }
                })
                .collect(),
            reward_rules,
            verifiers: verifiers
                .into_iter()
                .map(|verifier| {
                    let rejected = metrics.verifier_rejected_counter(verifier.name());
                    InstalledVerifier { verifier, rejected }
                })
                .collect(),
        }
    }

    /// Names of the installed detectors, in evaluation order.
    pub fn detector_names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.detector.name()).collect()
    }

    /// Names of the installed reward rules, in application order.
    pub fn reward_rule_names(&self) -> Vec<&'static str> {
        self.reward_rules.iter().map(|r| r.name()).collect()
    }

    /// Names of the installed verifier stages, in evaluation order.
    pub fn verifier_names(&self) -> Vec<&'static str> {
        self.verifiers.iter().map(|v| v.verifier.name()).collect()
    }

    /// Whether any verifier stage is installed (the plain deployment
    /// skips the verify stage entirely — zero added work).
    pub fn has_verifiers(&self) -> bool {
        !self.verifiers.is_empty()
    }

    /// Runs the verifier stages in order; the first [`Reject`]
    /// short-circuits and its stage name is returned. Every consulted
    /// stage's vote (with inner evidence, when the stage reports any)
    /// lands on the decision builder.
    ///
    /// [`Reject`]: VerifierVerdict::Reject
    pub(crate) fn verify(
        &self,
        ctx: &VerifyContext<'_>,
        decision: &mut DecisionBuilder,
    ) -> Option<&'static str> {
        for v in &self.verifiers {
            let (verdict, evidence) = v.verifier.verify_explained(ctx);
            let vote = match verdict {
                VerifierVerdict::Admit => "admit",
                VerifierVerdict::Reject => "reject",
                VerifierVerdict::Abstain => "abstain",
            };
            decision.vote(v.verifier.name(), vote, evidence);
            if verdict == VerifierVerdict::Reject {
                v.rejected.inc();
                return Some(v.verifier.name());
            }
        }
        None
    }

    /// Runs every detector; returns all flags raised (deduplicated, in
    /// detector order). A terminal detector that fires short-circuits
    /// the chain and its flag is the only one reported. Each consulted
    /// detector's verdict — evidence values and per-detector cost
    /// included — lands on the decision builder.
    pub(crate) fn detect(
        &self,
        ctx: &RuleContext<'_>,
        decision: &mut DecisionBuilder,
    ) -> Vec<CheatFlag> {
        let mut flags = Vec::new();
        for d in &self.detectors {
            let timer = d.latency.start_timer();
            let judgement = d.detector.judge(ctx);
            let elapsed_ns = timer.stop();
            decision.verdict(
                d.detector.name(),
                judgement.flag.map(CheatFlag::slug),
                judgement.observed,
                judgement.threshold,
                judgement.unit,
                elapsed_ns,
            );
            if let Some(f) = judgement.flag {
                d.rejected.inc();
                if d.detector.is_terminal() {
                    return vec![f];
                }
                if !flags.contains(&f) {
                    flags.push(f);
                }
            }
        }
        flags
    }

    /// Runs the reward rules over an admitted check-in.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reward(
        &self,
        request: &CheckinRequest,
        now: Timestamp,
        first_visit: bool,
        first_of_day: bool,
        users: &mut WriteSet<'_, User>,
        venues: &mut Vec<Venue>,
        venue_slot: usize,
        categories: &LeafLock<Vec<VenueCategory>>,
    ) -> RewardOutcome {
        let mut ctx = RewardContext::new(
            request,
            now,
            first_visit,
            first_of_day,
            users,
            venues,
            venue_slot,
            categories,
        );
        for rule in &self.reward_rules {
            rule.apply(&mut ctx);
        }
        ctx.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DetectorConfig, RewardConfig};
    use crate::user::UserSpec;
    use lbsn_obs::Registry;
    use std::sync::Arc;

    fn metrics() -> ServerMetrics {
        ServerMetrics::new(Arc::new(Registry::new()))
    }

    #[test]
    fn default_policy_assembles_paper_rule_chain() {
        let p = AdmissionPipeline::from_policy(&PolicyConfig::default(), &metrics(), Vec::new());
        assert_eq!(
            p.detector_names(),
            vec![
                "branded-account",
                "gps-proximity",
                "frequent-checkins",
                "superhuman-speed",
                "rapid-fire"
            ]
        );
        assert_eq!(
            p.reward_rule_names(),
            vec!["mayorship", "badges", "points", "specials"]
        );
        assert!(p.verifier_names().is_empty());
        assert!(!p.has_verifiers());
    }

    #[test]
    fn enables_prune_stages() {
        let policy = PolicyConfig {
            detectors: DetectorConfig {
                enable_rapid_fire: false,
                ..DetectorConfig::default()
            },
            rewards: RewardConfig {
                enable_specials: false,
                ..RewardConfig::default()
            },
        };
        let p = AdmissionPipeline::from_policy(&policy, &metrics(), Vec::new());
        assert!(!p.detector_names().contains(&"rapid-fire"));
        assert!(!p.reward_rule_names().contains(&"specials"));
        // Branded-account is always installed: escalation is account
        // state, not a per-check-in rule you can ablate away.
        assert_eq!(p.detector_names()[0], "branded-account");
    }

    #[test]
    fn disabled_detectors_leave_only_branding() {
        let p = AdmissionPipeline::from_policy(
            &PolicyConfig::with_detectors(DetectorConfig::disabled()),
            &metrics(),
            Vec::new(),
        );
        assert_eq!(p.detector_names(), vec!["branded-account"]);
    }

    #[test]
    fn branded_account_detector_is_terminal() {
        let d = BrandedAccountDetector;
        assert!(d.is_terminal());
        let honest = GpsProximityRule { radius_m: 500.0 };
        assert!(!honest.is_terminal(), "ordinary rules are not terminal");
        let user = User::from_spec(crate::UserId(1), UserSpec::anonymous(), Timestamp(0));
        let venue = Venue::from_spec(
            VenueId(1),
            crate::venue::VenueSpec::new("V", GeoPoint::new(35.0, -106.0).unwrap()),
            Timestamp(0),
            &mut crate::StrArena::new(),
        );
        let req = CheckinRequest {
            user: crate::UserId(1),
            venue: VenueId(1),
            reported_location: venue.location,
            source: crate::CheckinSource::MobileApp,
        };
        let ctx = RuleContext {
            user: &user,
            venue: &venue,
            request: &req,
            now: Timestamp(0),
        };
        assert_eq!(d.check(&ctx), None, "unbranded account passes");
        let mut branded = User::from_spec(crate::UserId(1), UserSpec::anonymous(), Timestamp(0));
        branded.branded_cheater = true;
        let ctx = RuleContext {
            user: &branded,
            venue: &venue,
            request: &req,
            now: Timestamp(0),
        };
        assert_eq!(d.check(&ctx), Some(CheatFlag::AccountFlagged));
    }

    #[test]
    fn verifier_reject_short_circuits_and_counts() {
        struct Always(VerifierVerdict);
        impl CheckinVerifier for Always {
            fn name(&self) -> &'static str {
                match self.0 {
                    VerifierVerdict::Admit => "always-admit",
                    VerifierVerdict::Reject => "always-reject",
                    VerifierVerdict::Abstain => "always-abstain",
                }
            }
            fn verify(&self, _: &VerifyContext<'_>) -> VerifierVerdict {
                self.0
            }
        }
        let registry = Arc::new(Registry::new());
        let m = ServerMetrics::new(Arc::clone(&registry));
        let p = AdmissionPipeline::from_policy(
            &PolicyConfig::default(),
            &m,
            vec![
                Box::new(Always(VerifierVerdict::Abstain)),
                Box::new(Always(VerifierVerdict::Reject)),
                Box::new(Always(VerifierVerdict::Admit)),
            ],
        );
        assert!(p.has_verifiers());
        let req = CheckinRequest {
            user: crate::UserId(1),
            venue: VenueId(1),
            reported_location: GeoPoint::new(35.0, -106.0).unwrap(),
            source: crate::CheckinSource::MobileApp,
        };
        let ctx = VerifyContext {
            request: &req,
            venue_location: req.reported_location,
            evidence: None,
            now: Timestamp(0),
        };
        let mut decision = DecisionBuilder::new(1, 1, 0);
        assert_eq!(p.verify(&ctx, &mut decision), Some("always-reject"));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("server.checkin.verifier.always_reject.rejected"),
            1
        );
        assert_eq!(
            snap.counter("server.checkin.verifier.always_abstain.rejected"),
            0
        );
    }
}
