//! Packed append-only check-in history.
//!
//! At paper scale (1.89 M users, §3.2) the per-user history is the
//! single biggest state item, and the boxed
//! `Vec<CheckinRecord>` layout spends most of its bytes on padding and
//! per-record `Vec<CheatFlag>` headers. This module replaces it with a
//! byte-packed, append-only encoding:
//!
//! * **flags** as a [`FlagSet`] `u8` bitset (one bit per [`CheatFlag`]);
//! * **timestamps** delta-encoded against the previous record
//!   (zigzag varint, so out-of-order test streams still round-trip);
//! * **coordinates** quantized to 1e-7 degrees (~1.1 cm) when that is
//!   bit-for-bit lossless for the value, falling back to the raw `f64`
//!   bit pattern otherwise — decoding always reproduces the original
//!   [`GeoPoint`] exactly, which is what keeps detector verdicts
//!   unchanged on the golden corpus;
//! * a **trailing length byte** per record, so the newest-first scans
//!   the cooldown/speed/rapid-fire detectors rely on can walk backwards
//!   without an offset table.
//!
//! Record layout: `[venue varint][Δt zigzag varint][meta u8][coords][len u8]`,
//! where `coords` is either two zigzag varints (quantized) or 16 raw
//! little-endian bytes, as the meta byte says. A typical record is
//! 10–27 bytes against the previous layout's 64-byte inline struct plus
//! flag-vector heap — comfortably past the ≥2× bytes-per-user target at
//! the 1 M rung.

use lbsn_geo::GeoPoint;
use lbsn_obs::MemFootprint;
use lbsn_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::checkin::{CheatFlag, CheckinRecord, CheckinSource};
use crate::VenueId;

/// All cheat flags, in bit order. Bit `i` of a [`FlagSet`] is
/// `ALL_FLAGS[i]`.
const ALL_FLAGS: [CheatFlag; 5] = [
    CheatFlag::GpsMismatch,
    CheatFlag::TooFrequent,
    CheatFlag::SuperhumanSpeed,
    CheatFlag::RapidFire,
    CheatFlag::AccountFlagged,
];

/// A set of [`CheatFlag`]s packed into one byte.
///
/// Iteration yields flags in declaration order, which is also the order
/// the default detector chain raises them in — so a round-trip through
/// the packed history preserves the flag sequence the pipeline produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlagSet(u8);

impl FlagSet {
    /// The empty set.
    pub const EMPTY: FlagSet = FlagSet(0);

    fn bit(flag: CheatFlag) -> u8 {
        // Positions mirror ALL_FLAGS / the enum declaration order.
        match flag {
            CheatFlag::GpsMismatch => 1 << 0,
            CheatFlag::TooFrequent => 1 << 1,
            CheatFlag::SuperhumanSpeed => 1 << 2,
            CheatFlag::RapidFire => 1 << 3,
            CheatFlag::AccountFlagged => 1 << 4,
        }
    }

    /// Builds a set from a flag slice (duplicates collapse).
    pub fn from_slice(flags: &[CheatFlag]) -> Self {
        FlagSet(flags.iter().fold(0, |acc, f| acc | Self::bit(*f)))
    }

    /// Raw bits (low 5 bits used).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds a set from raw bits (extra bits are masked off).
    pub fn from_bits(bits: u8) -> Self {
        FlagSet(bits & 0x1f)
    }

    /// Whether `flag` is in the set.
    pub fn contains(self, flag: CheatFlag) -> bool {
        self.0 & Self::bit(flag) != 0
    }

    /// Number of flags in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Flags in declaration (bit) order.
    pub fn iter(self) -> impl Iterator<Item = CheatFlag> {
        ALL_FLAGS
            .into_iter()
            .enumerate()
            .filter(move |(i, _)| self.0 & (1 << i) != 0)
            .map(|(_, f)| f)
    }

    /// The set as a plain vector, in bit order.
    pub fn to_vec(self) -> Vec<CheatFlag> {
        self.iter().collect()
    }
}

lbsn_obs::mem_footprint_inline!(FlagSet);

/// A decoded history record. Field-compatible with
/// [`CheckinRecord`] except that `flags` is the packed
/// [`FlagSet`] instead of a `Vec<CheatFlag>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackedRecord {
    /// Venue checked into.
    pub venue: VenueId,
    /// When.
    pub at: Timestamp,
    /// The GPS position the client reported.
    pub location: GeoPoint,
    /// Entry point.
    pub source: CheckinSource,
    /// Whether the check-in passed verification and earned rewards.
    pub rewarded: bool,
    /// Flags raised, empty iff `rewarded` on server-produced records.
    pub flags: FlagSet,
}

impl PackedRecord {
    /// Expands back into the wire-format record.
    pub fn to_record(&self) -> CheckinRecord {
        CheckinRecord {
            venue: self.venue,
            at: self.at,
            location: self.location,
            source: self.source,
            rewarded: self.rewarded,
            flags: self.flags.to_vec(),
        }
    }
}

// Record meta-byte layout.
const META_FLAG_MASK: u8 = 0x1f;
const META_SOURCE_API: u8 = 1 << 5;
const META_COORDS_RAW: u8 = 1 << 6;
const META_REWARDED: u8 = 1 << 7;

/// Degrees-to-fixed-point scale for the lossless-when-possible
/// coordinate quantization (1e-7° ≈ 1.1 cm).
const COORD_SCALE: f64 = 1e7;

fn varint_push(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

fn varint_read(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The 1e-7° fixed-point value for `deg` if converting back is
/// bit-for-bit lossless, else `None`.
fn quantize_exact(deg: f64) -> Option<i64> {
    let q = (deg * COORD_SCALE).round();
    if !q.is_finite() || q.abs() > i32::MAX as f64 {
        return None;
    }
    let q = q as i64;
    ((q as f64 / COORD_SCALE).to_bits() == deg.to_bits()).then_some(q)
}

/// A user's check-in history in the packed encoding.
///
/// Append-only: records go in through [`PackedHistory::push`] and come
/// back out through the double-ended [`PackedHistory::iter`], newest
/// first via `.rev()` / `.next_back()`. The byte offset `push` returns
/// lets the owner keep O(1) handles to individual records (the user's
/// latest-rewarded check-in).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PackedHistory {
    buf: Vec<u8>,
    count: u32,
    last_at: u64,
}

impl PackedHistory {
    /// An empty history.
    pub fn new() -> Self {
        PackedHistory::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Encoded size in bytes (`len`, not capacity).
    pub fn encoded_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Drops excess buffer capacity (post-bulk-load compaction).
    pub fn shrink_to_fit(&mut self) {
        self.buf.shrink_to_fit();
    }

    /// Appends a record; returns the byte offset it was encoded at,
    /// usable with [`PackedHistory::decode_at`].
    pub fn push(&mut self, record: &CheckinRecord) -> u32 {
        let start = self.buf.len() as u32;
        let dt = zigzag((record.at.0 as i64).wrapping_sub(self.last_at as i64));
        varint_push(&mut self.buf, record.venue.value());
        varint_push(&mut self.buf, dt);
        let (lat, lon) = (record.location.lat(), record.location.lon());
        let quantized = match (quantize_exact(lat), quantize_exact(lon)) {
            (Some(qlat), Some(qlon)) => Some((qlat, qlon)),
            _ => None,
        };
        let mut meta = FlagSet::from_slice(&record.flags).bits();
        if record.source == CheckinSource::ServerApi {
            meta |= META_SOURCE_API;
        }
        if quantized.is_none() {
            meta |= META_COORDS_RAW;
        }
        if record.rewarded {
            meta |= META_REWARDED;
        }
        self.buf.push(meta);
        match quantized {
            Some((qlat, qlon)) => {
                varint_push(&mut self.buf, zigzag(qlat));
                varint_push(&mut self.buf, zigzag(qlon));
            }
            None => {
                self.buf.extend_from_slice(&lat.to_bits().to_le_bytes());
                self.buf.extend_from_slice(&lon.to_bits().to_le_bytes());
            }
        }
        let rec_len = self.buf.len() as u32 - start;
        debug_assert!(rec_len <= u8::MAX as u32, "record fits one length byte");
        self.buf.push(rec_len as u8);
        self.count += 1;
        self.last_at = record.at.0;
        start
    }

    /// Decodes the record starting at byte offset `off`. The caller
    /// supplies the record's absolute timestamp (the stream only stores
    /// the delta to its predecessor); [`PackedHistory::push`] returned
    /// the offset, and the owner tracked the timestamp alongside it.
    pub fn decode_at(&self, off: u32, at: Timestamp) -> PackedRecord {
        let mut pos = off as usize;
        let (record, _) = self.decode_with_abs_time(&mut pos, at.0);
        record
    }

    /// Decodes the record at `*pos` whose absolute timestamp is `at`,
    /// advancing `*pos` past the trailer byte. Returns the record and
    /// the zigzag delta it stored (needed by backward iteration).
    fn decode_with_abs_time(&self, pos: &mut usize, at: u64) -> (PackedRecord, i64) {
        let venue = VenueId(varint_read(&self.buf, pos));
        let dt = unzigzag(varint_read(&self.buf, pos));
        let meta = self.buf[*pos];
        *pos += 1;
        let location = if meta & META_COORDS_RAW != 0 {
            let lat = f64::from_bits(u64::from_le_bytes(
                self.buf[*pos..*pos + 8].try_into().expect("8-byte slice"), // lint:allow(no-unwrap-hot-path): fixed-width slice
            ));
            let lon = f64::from_bits(u64::from_le_bytes(
                self.buf[*pos + 8..*pos + 16]
                    .try_into()
                    .expect("8-byte slice"), // lint:allow(no-unwrap-hot-path): fixed-width slice
            ));
            *pos += 16;
            GeoPoint::new(lat, lon).expect("encoded from a valid GeoPoint") // lint:allow(no-unwrap-hot-path): encoder invariant
        } else {
            let qlat = unzigzag(varint_read(&self.buf, pos));
            let qlon = unzigzag(varint_read(&self.buf, pos));
            GeoPoint::new(qlat as f64 / COORD_SCALE, qlon as f64 / COORD_SCALE)
                .expect("encoded from a valid GeoPoint") // lint:allow(no-unwrap-hot-path): encoder invariant
        };
        *pos += 1; // trailer length byte
        let record = PackedRecord {
            venue,
            at: Timestamp(at),
            location,
            source: if meta & META_SOURCE_API != 0 {
                CheckinSource::ServerApi
            } else {
                CheckinSource::MobileApp
            },
            rewarded: meta & META_REWARDED != 0,
            flags: FlagSet::from_bits(meta & META_FLAG_MASK),
        };
        (record, dt)
    }

    /// Iterates all records, oldest first; double-ended, so `.rev()`
    /// gives the newest-first order the detectors scan in.
    pub fn iter(&self) -> HistoryIter<'_> {
        HistoryIter {
            history: self,
            front_pos: 0,
            front_prev_at: 0,
            back_pos: self.buf.len(),
            back_at: self.last_at,
            remaining: self.count as usize,
        }
    }
}

impl MemFootprint for PackedHistory {
    fn heap_bytes(&self) -> usize {
        let PackedHistory {
            buf,
            count: _,
            last_at: _,
        } = self;
        buf.heap_bytes()
    }
}

/// Double-ended iterator over a [`PackedHistory`], yielding decoded
/// [`PackedRecord`]s.
pub struct HistoryIter<'a> {
    history: &'a PackedHistory,
    /// Next record's start offset (forward end).
    front_pos: usize,
    /// Absolute timestamp of the record *before* `front_pos`.
    front_prev_at: u64,
    /// One past the trailer byte of the next record from the back.
    back_pos: usize,
    /// Absolute timestamp of the next record from the back.
    back_at: u64,
    remaining: usize,
}

impl Iterator for HistoryIter<'_> {
    type Item = PackedRecord;

    fn next(&mut self) -> Option<PackedRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut pos = self.front_pos;
        // Forward decode: the record's absolute time comes from the
        // previous record's time plus the stored delta, so peek the
        // delta first by decoding with a provisional time, then fix up.
        let (mut record, dt) = self
            .history
            .decode_with_abs_time(&mut pos, self.front_prev_at);
        let at = self.front_prev_at.wrapping_add(dt as u64);
        record.at = Timestamp(at);
        self.front_pos = pos;
        self.front_prev_at = at;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl DoubleEndedIterator for HistoryIter<'_> {
    fn next_back(&mut self) -> Option<PackedRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let trailer = self.history.buf[self.back_pos - 1];
        let rec_start = self.back_pos - 1 - usize::from(trailer);
        let mut pos = rec_start;
        let (record, dt) = self.history.decode_with_abs_time(&mut pos, self.back_at);
        self.back_pos = rec_start;
        self.back_at = self.back_at.wrapping_sub(dt as u64);
        Some(record)
    }
}

impl ExactSizeIterator for HistoryIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(venue: u64, at: u64, lat: f64, lon: f64, rewarded: bool) -> CheckinRecord {
        CheckinRecord {
            venue: VenueId(venue),
            at: Timestamp(at),
            location: GeoPoint::new(lat, lon).unwrap(),
            source: CheckinSource::MobileApp,
            rewarded,
            flags: if rewarded {
                vec![]
            } else {
                vec![CheatFlag::GpsMismatch, CheatFlag::SuperhumanSpeed]
            },
        }
    }

    #[test]
    fn flagset_round_trips_all_subsets() {
        for bits in 0u8..32 {
            let set = FlagSet::from_bits(bits);
            assert_eq!(FlagSet::from_slice(&set.to_vec()), set);
            assert_eq!(set.len(), bits.count_ones() as usize);
        }
        let dup = FlagSet::from_slice(&[CheatFlag::RapidFire, CheatFlag::RapidFire]);
        assert_eq!(dup.len(), 1);
        assert!(dup.contains(CheatFlag::RapidFire));
        assert!(!dup.contains(CheatFlag::GpsMismatch));
        assert!(FlagSet::EMPTY.is_empty());
    }

    #[test]
    fn push_and_iter_round_trip_forward_and_backward() {
        let records = vec![
            rec(1, 100, 35.0844, -106.6504, true),
            rec(5_600_000, 4_000, 37.7749, -122.4194, false),
            rec(2, 4_001, -35.5, 150.25, true),
        ];
        let mut h = PackedHistory::new();
        for r in &records {
            h.push(r);
        }
        assert_eq!(h.len(), 3);
        let fwd: Vec<CheckinRecord> = h.iter().map(|r| r.to_record()).collect();
        assert_eq!(fwd, records);
        let mut rev: Vec<CheckinRecord> = h.iter().rev().map(|r| r.to_record()).collect();
        rev.reverse();
        assert_eq!(rev, records);
    }

    #[test]
    fn non_decimal_coordinates_survive_exactly() {
        // destination()-style outputs are arbitrary f64s that do not
        // quantize losslessly; the raw fallback must keep them exact.
        let p = lbsn_geo::destination(GeoPoint::new(35.0844, -106.6504).unwrap(), 37.3, 812.7);
        let r = CheckinRecord {
            venue: VenueId(9),
            at: Timestamp(77),
            location: p,
            source: CheckinSource::ServerApi,
            rewarded: true,
            flags: vec![],
        };
        let mut h = PackedHistory::new();
        h.push(&r);
        let out = h.iter().next().unwrap();
        assert_eq!(out.location.lat().to_bits(), p.lat().to_bits());
        assert_eq!(out.location.lon().to_bits(), p.lon().to_bits());
        assert_eq!(out.source, CheckinSource::ServerApi);
    }

    #[test]
    fn decimal_coordinates_use_compact_form() {
        let mut quantized = PackedHistory::new();
        quantized.push(&rec(1, 100, 35.0844, -106.6504, true));
        let mut raw = PackedHistory::new();
        raw.push(&CheckinRecord {
            location: GeoPoint::new(35.0844 + 1e-12, -106.6504).unwrap(),
            ..rec(1, 100, 35.0, -106.0, true)
        });
        assert!(
            quantized.encoded_bytes() < raw.encoded_bytes(),
            "decimal coords should take the varint path ({} vs {})",
            quantized.encoded_bytes(),
            raw.encoded_bytes()
        );
        // Exactness either way.
        assert_eq!(
            quantized.iter().next().unwrap().location.lat().to_bits(),
            35.0844f64.to_bits()
        );
    }

    #[test]
    fn decode_at_returns_the_pushed_record() {
        let mut h = PackedHistory::new();
        let r0 = rec(3, 50, 10.0, 20.0, false);
        let r1 = rec(4, 60, 30.0, 40.0, true);
        let off0 = h.push(&r0);
        let off1 = h.push(&r1);
        assert_eq!(h.decode_at(off0, Timestamp(50)).to_record(), r0);
        assert_eq!(h.decode_at(off1, Timestamp(60)).to_record(), r1);
    }

    #[test]
    fn out_of_order_timestamps_round_trip() {
        // Arbitrary (test-constructed) streams may go backwards in time;
        // zigzag deltas must not care.
        let records = vec![
            rec(1, 1_000, 35.0, -106.0, true),
            rec(2, 10, 35.1, -106.1, false),
            rec(3, u64::MAX, 35.2, -106.2, true),
            rec(4, 0, 35.3, -106.3, true),
        ];
        let mut h = PackedHistory::new();
        for r in &records {
            h.push(r);
        }
        let fwd: Vec<u64> = h.iter().map(|r| r.at.0).collect();
        assert_eq!(fwd, vec![1_000, 10, u64::MAX, 0]);
        let rev: Vec<u64> = h.iter().rev().map(|r| r.at.0).collect();
        assert_eq!(rev, vec![0, u64::MAX, 10, 1_000]);
    }

    #[test]
    fn mixed_direction_iteration_meets_in_the_middle() {
        let records: Vec<CheckinRecord> = (0..7)
            .map(|i| rec(i + 1, 100 * (i + 1), 35.0, -106.0, i % 2 == 0))
            .collect();
        let mut h = PackedHistory::new();
        for r in &records {
            h.push(r);
        }
        let mut it = h.iter();
        assert_eq!(it.next().unwrap().venue, VenueId(1));
        assert_eq!(it.next_back().unwrap().venue, VenueId(7));
        assert_eq!(it.next_back().unwrap().venue, VenueId(6));
        assert_eq!(it.next().unwrap().venue, VenueId(2));
        let rest: Vec<u64> = it.map(|r| r.venue.value()).collect();
        assert_eq!(rest, vec![3, 4, 5]);
    }

    #[test]
    fn packed_is_at_least_2x_smaller_than_boxed_records() {
        let mut h = PackedHistory::new();
        let mut boxed = Vec::new();
        for i in 0..100u64 {
            // Worst case for the packing: raw (non-decimal) coordinates.
            let p = lbsn_geo::destination(
                GeoPoint::new(35.0844, -106.6504).unwrap(),
                (i % 360) as f64,
                50.0 + i as f64,
            );
            let r = CheckinRecord {
                venue: VenueId(1 + i % 7),
                at: Timestamp(1_000 + i),
                location: p,
                source: CheckinSource::MobileApp,
                rewarded: i % 3 != 0,
                flags: if i % 3 == 0 {
                    vec![CheatFlag::TooFrequent]
                } else {
                    vec![]
                },
            };
            h.push(&r);
            boxed.push(r);
        }
        let packed_bytes = h.deep_bytes();
        let boxed_bytes = boxed.deep_bytes();
        assert!(
            packed_bytes * 2 <= boxed_bytes,
            "packed {packed_bytes} vs boxed {boxed_bytes}"
        );
    }
}
