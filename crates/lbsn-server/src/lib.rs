//! A simulated location-based social network (LBSN) service.
//!
//! This crate reimplements, from the outside in, the Foursquare behaviour
//! the paper documents and attacks:
//!
//! * numeric incrementing user and venue IDs (the crawlability weakness of
//!   §3.2);
//! * the check-in pipeline: GPS proximity verification, then the
//!   **cheater code** (§2.3) — same-venue cooldown, super-human speed,
//!   rapid-fire — then rewards;
//! * the reward ladder of §2.1: points for valid check-ins, badges for
//!   achievements, a single mayor per venue computed over a trailing
//!   60-day days-with-check-ins window, and venue *specials* (real-world
//!   rewards, >90 % mayor-only);
//! * the detection policy the paper's Fig 4.2 hinges on: **flagged
//!   check-ins still count toward a user's total but earn no rewards**;
//! * the public web frontend ([`web`]) whose profile pages the crawler
//!   scrapes, including the since-removed "Who's been here" list;
//! * the public server API ([`api`]) — spoofing vector 3 of §3.1.
//!
//! The server is thread-safe ([`LbsnServer`] is `Sync`); the crawler crate
//! hits the web frontend from many threads, exactly like the paper's
//! three-machine crawling rig.

#![warn(missing_docs)]

pub mod api;
pub mod cheatercode;
mod checkin;
mod compact;
mod frontend;
mod history;
mod ids;
pub mod metrics;
pub mod pipeline;
pub mod policy;
pub mod rewards;
mod server;
mod shard;
mod user;
mod venue;
pub mod web;

/// This crate's group of registered observability names (see
/// `lbsn_obs::names` for the registry and the lint that enforces it).
pub use lbsn_obs::names::server as metric_names;

pub use cheatercode::{CheaterCodeConfig, RuleContext};
pub use checkin::{
    AdmissionOutcome, CheatFlag, CheckinError, CheckinEvidence, CheckinOutcome, CheckinRecord,
    CheckinRequest, CheckinSource,
};
pub use compact::{ArenaStr, BadgeSet, CategoryCounts, IdSet, StrArena};
pub use frontend::{CheckinTicket, FrontendConfig, RequestFrontend, SubmitOutcome};
pub use history::{FlagSet, HistoryIter, PackedHistory, PackedRecord};
pub use ids::{UserId, VenueId};
pub use metrics::ServerMetrics;
pub use pipeline::{
    AdmissionPipeline, BrandedAccountDetector, CheckinVerifier, Detector, Judgement, RewardContext,
    RewardRule, VerifierVerdict, VerifyContext,
};
pub use policy::{DetectorConfig, PolicyConfig, RewardConfig};
pub use rewards::{Badge, PointsPolicy};
pub use server::{LbsnServer, ServerConfig};
pub use user::{User, UserCold, UserProfile, UserSpec};
pub use venue::{
    Special, SpecialKind, Tip, Venue, VenueActivity, VenueCategory, VenueCold, VenueSpec,
};
