//! Serde-loadable admission policy: every tunable of the check-in
//! pipeline in one place.
//!
//! The paper's §2.3 thresholds (GPS radius, cooldown, speed bound,
//! rapid-fire geometry) and the §4.2 account-branding escalation used to
//! be hardwired next to the rules that consume them; [`PolicyConfig`]
//! lifts them into plain data so an experiment can sweep rule on/off
//! combinations and threshold sensitivities from a JSON file
//! (`policies/default.json` is the committed default) without touching
//! code. The [`crate::pipeline`] module assembles detectors and reward
//! rules from this config.

use lbsn_geo::Meters;
use lbsn_sim::Duration;
use serde::{Deserialize, Serialize};

use crate::rewards::PointsPolicy;

/// Tunable parameters for the §2.3 detector set (the "cheater code").
///
/// Each detector has an `enable_*` switch so ablation sweeps are pure
/// config. The real cheater code was concealed; these parameters encode
/// exactly what the paper observed:
///
/// * a user cannot check in to the same venue again within **one hour**;
/// * continuously checking in far apart trips "**super human speed**";
/// * a **fourth** check-in among venues inside a **180 m × 180 m**
///   square at **1-minute** intervals draws a "rapid-fire check-ins"
///   warning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Max distance between the reported GPS fix and the claimed venue
    /// for the check-in to verify. Foursquare's client only offered
    /// venues "nearby" the fix; 500 m approximates that.
    pub gps_radius_m: Meters,
    /// Whether GPS proximity verification is active. Before ~April 2010
    /// Foursquare had no location verification at all (§2.2's
    /// "basic cheating method worked in the early days"); turning this
    /// off reproduces that era.
    pub enable_gps: bool,

    /// Same-venue cooldown (paper: one hour).
    pub same_venue_cooldown: Duration,
    /// Whether the cooldown rule is active.
    pub enable_cooldown: bool,

    /// Maximum plausible travel speed in metres/second. The paper never
    /// learned Foursquare's exact threshold, only that 1 mile per 5
    /// minutes (~5.4 m/s) was safe and that cross-country hops were
    /// flagged. 40 m/s (~90 mph) is a road-travel upper bound that keeps
    /// both observations true.
    pub max_speed_mps: f64,
    /// Speed checks only apply when the gap since the last valid
    /// check-in is shorter than this; longer gaps could plausibly
    /// include a flight.
    pub speed_rule_max_gap: Duration,
    /// Whether the super-human-speed rule is active.
    pub enable_speed: bool,

    /// Rapid-fire: the check-in count at which the warning fires
    /// (paper: the fourth).
    pub rapid_fire_count: usize,
    /// Rapid-fire: the square side length (paper: 180 m).
    pub rapid_fire_square_m: Meters,
    /// Rapid-fire: max interval between consecutive check-ins for them
    /// to chain into a burst (paper: 1 minute).
    pub rapid_fire_max_interval: Duration,
    /// Whether the rapid-fire rule is active.
    pub enable_rapid_fire: bool,

    /// Account-level branding: after this many flagged check-ins the
    /// account itself is marked a cheater — all subsequent check-ins
    /// are invalidated and held mayorships are stripped. `None`
    /// disables branding (per-check-in judgement only). Models §4.2's
    /// caught cohort, whose check-ins "yielded no rewards" wholesale.
    pub account_flag_threshold: Option<u64>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            gps_radius_m: 500.0,
            enable_gps: true,
            same_venue_cooldown: Duration::hours(1),
            enable_cooldown: true,
            max_speed_mps: 40.0,
            speed_rule_max_gap: Duration::hours(24),
            enable_speed: true,
            rapid_fire_count: 4,
            rapid_fire_square_m: 180.0,
            rapid_fire_max_interval: Duration::minutes(1),
            enable_rapid_fire: true,
            account_flag_threshold: Some(10),
        }
    }
}

impl DetectorConfig {
    /// The pre-April-2010 service: no verification at all. Check-ins to
    /// anywhere succeed — the era of "Autosquare". (Account branding
    /// keeps its default threshold; with no rules firing it never
    /// triggers.)
    pub fn disabled() -> Self {
        DetectorConfig {
            enable_gps: false,
            enable_cooldown: false,
            enable_speed: false,
            enable_rapid_fire: false,
            ..DetectorConfig::default()
        }
    }

    /// Builder-style override of the branding threshold.
    pub fn branding_threshold(mut self, threshold: Option<u64>) -> Self {
        self.account_flag_threshold = threshold;
        self
    }
}

/// Which reward-ladder rules run on an admitted check-in, and the point
/// values they award.
///
/// Defaults enable the full §2.1 ladder. Disabling a rule removes that
/// stage from the pipeline: e.g. `enable_mayorships: false` models a
/// service without the mayor mechanic (no §2.2 squatting attack
/// surface).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Point values.
    pub points: PointsPolicy,
    /// Whether the mayorship contest runs.
    pub enable_mayorships: bool,
    /// Whether badges are evaluated and awarded.
    pub enable_badges: bool,
    /// Whether points are awarded.
    pub enable_points: bool,
    /// Whether venue specials unlock.
    pub enable_specials: bool,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            points: PointsPolicy::default(),
            enable_mayorships: true,
            enable_badges: true,
            enable_points: true,
            enable_specials: true,
        }
    }
}

/// The complete admission policy: detectors plus reward rules.
///
/// This is the unit experiment configs serialize to disk. The default
/// reproduces the paper-era Foursquare behaviour bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Anti-cheating detector parameters (§2.3).
    pub detectors: DetectorConfig,
    /// Reward-ladder rules (§2.1).
    pub rewards: RewardConfig,
}

impl PolicyConfig {
    /// A policy with the given detector set and default rewards.
    pub fn with_detectors(detectors: DetectorConfig) -> Self {
        PolicyConfig {
            detectors,
            ..PolicyConfig::default()
        }
    }
}

impl From<DetectorConfig> for PolicyConfig {
    fn from(detectors: DetectorConfig) -> Self {
        PolicyConfig::with_detectors(detectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_paper_thresholds() {
        let p = PolicyConfig::default();
        assert_eq!(p.detectors.gps_radius_m, 500.0);
        assert_eq!(p.detectors.same_venue_cooldown, Duration::hours(1));
        assert_eq!(p.detectors.rapid_fire_count, 4);
        assert_eq!(p.detectors.account_flag_threshold, Some(10));
        assert!(p.rewards.enable_mayorships);
        assert_eq!(p.rewards.points.new_mayor_bonus, 5);
    }

    #[test]
    fn disabled_detectors_keep_thresholds() {
        let d = DetectorConfig::disabled();
        assert!(!d.enable_gps && !d.enable_cooldown && !d.enable_speed && !d.enable_rapid_fire);
        assert_eq!(d.gps_radius_m, 500.0, "thresholds survive the switch-off");
        assert_eq!(d.account_flag_threshold, Some(10));
        assert_eq!(
            d.branding_threshold(None).account_flag_threshold,
            None,
            "builder overrides branding"
        );
    }

    #[test]
    fn policy_from_detectors_keeps_default_rewards() {
        let p = PolicyConfig::from(DetectorConfig::disabled());
        assert!(!p.detectors.enable_gps);
        assert_eq!(p.rewards, RewardConfig::default());
    }
}
