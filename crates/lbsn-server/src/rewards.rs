//! The reward ladder: points, badges, mayorships, specials.
//!
//! §2.1 of the paper: "Listed from the easiest to the hardest to obtain,
//! they are: points, badges, mayorships, and real world rewards." This
//! module implements all four tiers. Exact 2010 point values were never
//! published; [`PointsPolicy`]'s defaults are documented approximations,
//! and every experiment conclusion depends only on *relative* reward
//! levels (Fig 4.2 compares badge counts across users under the same
//! policy).

use std::collections::HashSet;

use lbsn_sim::{Duration, Timestamp, DAY, HOUR};
use serde::{Deserialize, Serialize};

use crate::user::User;
use crate::venue::{Venue, VenueCategory};
use crate::VenueId;

/// Point values for check-in events. Serde-round-trippable so a whole
/// reward policy can live in a JSON scenario file (see
/// [`crate::policy`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointsPolicy {
    /// Base points for any valid check-in.
    pub per_checkin: u64,
    /// Bonus for the first-ever check-in at a venue ("first stop").
    pub first_visit_bonus: u64,
    /// Bonus for the first check-in of a virtual day.
    pub first_of_day_bonus: u64,
    /// Bonus for taking (not retaining) a mayorship.
    pub new_mayor_bonus: u64,
}

impl Default for PointsPolicy {
    fn default() -> Self {
        PointsPolicy {
            per_checkin: 1,
            first_visit_bonus: 4,
            first_of_day_bonus: 2,
            new_mayor_bonus: 5,
        }
    }
}

impl PointsPolicy {
    /// Points for a valid check-in with the given attributes.
    pub fn award(&self, first_visit: bool, first_of_day: bool, became_mayor: bool) -> u64 {
        self.per_checkin
            + if first_visit {
                self.first_visit_bonus
            } else {
                0
            }
            + if first_of_day {
                self.first_of_day_bonus
            } else {
                0
            }
            + if became_mayor {
                self.new_mayor_bonus
            } else {
                0
            }
    }
}

/// Achievement badges, modelled on the 2010 Foursquare set.
///
/// The paper's test account earned "Adventurer: You've checked into 10
/// different venues!"; §2.1 cites "30 check-ins in a month" (Super User)
/// and "checked into 10 different venues" as canonical examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Badge {
    /// First check-in ever.
    Newbie,
    /// 10 distinct venues.
    Adventurer,
    /// 25 distinct venues.
    Explorer,
    /// 50 distinct venues.
    Superstar,
    /// 100 distinct venues.
    Warhol,
    /// Check-ins on 4 consecutive days.
    Bender,
    /// 3 valid check-ins at the same venue within 7 days.
    Local,
    /// 30 valid check-ins within 30 days.
    SuperUser,
    /// 4 valid check-ins within 12 hours.
    Crunked,
    /// 10 valid check-ins within 12 hours.
    Overshare,
    /// A valid check-in between 01:00 and 04:00.
    SchoolNight,
    /// 5 distinct coffee venues.
    FreshBrew,
    /// 10 gym check-ins within 30 days.
    GymRat,
    /// 5 distinct airport venues.
    JetSetter,
    /// Hold 10 mayorships at once.
    SuperMayor,
}

// Fieldless achievement enum: no owned heap.
lbsn_obs::mem_footprint_inline!(Badge);

impl Badge {
    /// All badge kinds, in award-evaluation order.
    pub const ALL: [Badge; 15] = [
        Badge::Newbie,
        Badge::Adventurer,
        Badge::Explorer,
        Badge::Superstar,
        Badge::Warhol,
        Badge::Bender,
        Badge::Local,
        Badge::SuperUser,
        Badge::Crunked,
        Badge::Overshare,
        Badge::SchoolNight,
        Badge::FreshBrew,
        Badge::GymRat,
        Badge::JetSetter,
        Badge::SuperMayor,
    ];

    /// The unlock message shown to the user.
    pub fn message(self) -> &'static str {
        match self {
            Badge::Newbie => "Newbie: Your first check-in!",
            Badge::Adventurer => "Adventurer: You've checked into 10 different venues!",
            Badge::Explorer => "Explorer: You've checked into 25 different venues!",
            Badge::Superstar => "Superstar: You've checked into 50 different venues!",
            Badge::Warhol => "Warhol: You've checked into 100 different venues!",
            Badge::Bender => "Bender: Four days in a row!",
            Badge::Local => "Local: Three times at one place in a week!",
            Badge::SuperUser => "Super User: 30 check-ins in a month!",
            Badge::Crunked => "Crunked: Four stops in one night!",
            Badge::Overshare => "Overshare: Ten check-ins in twelve hours!",
            Badge::SchoolNight => "School Night: Out past 1am on a school night!",
            Badge::FreshBrew => "Fresh Brew: Five different coffee shops!",
            Badge::GymRat => "Gym Rat: Ten gym check-ins in a month!",
            Badge::JetSetter => "JetSetter: Five different airports!",
            Badge::SuperMayor => "Super Mayor: Ten simultaneous mayorships!",
        }
    }
}

/// A venue-attribute lookup the badge engine needs (category per venue).
pub trait VenueLookup {
    /// The category of a venue, if the venue exists.
    fn category_of(&self, venue: VenueId) -> Option<VenueCategory>;
}

impl VenueLookup for [Venue] {
    fn category_of(&self, venue: VenueId) -> Option<VenueCategory> {
        let idx = venue.value().checked_sub(1)? as usize;
        self.get(idx).map(|v| v.category)
    }
}

/// Evaluates which badges a user newly qualifies for, given that their
/// latest valid check-in (already appended to `user.history`) was at
/// `venue` at time `now`.
///
/// Badges already held are never re-awarded. Windowed criteria scan the
/// history from the newest end and stop at the window boundary, so cost
/// is bounded by per-window activity, not lifetime history.
pub fn evaluate_badges(
    user: &User,
    venue: &Venue,
    now: Timestamp,
    venues: &(impl VenueLookup + ?Sized),
) -> Vec<Badge> {
    let mut earned = Vec::new();
    let mut check = |badge: Badge, achieved: bool| {
        if achieved && !user.badges.contains(&badge) {
            earned.push(badge);
        }
    };

    let distinct = user.visited_venues.len();
    check(Badge::Newbie, user.valid_checkins >= 1);
    check(Badge::Adventurer, distinct >= 10);
    check(Badge::Explorer, distinct >= 25);
    check(Badge::Superstar, distinct >= 50);
    check(Badge::Warhol, distinct >= 100);

    // Bender: valid check-ins on 4 consecutive days ending today.
    let today = now.day();
    if today >= 3 {
        let window_start = Timestamp::at_day(today - 3);
        let mut days = HashSet::new();
        for r in user.valid_checkins_since(window_start) {
            days.insert(r.at.day());
        }
        check(
            Badge::Bender,
            (today - 3..=today).all(|d| days.contains(&d)),
        );
    }

    // Local: 3 valid check-ins at this venue in the trailing week.
    let week_ago = Timestamp(now.secs().saturating_sub(7 * DAY));
    check(
        Badge::Local,
        user.valid_checkins_at_since(venue.id, week_ago).count() >= 3,
    );

    // Super User: 30 valid check-ins in the trailing 30 days.
    let month_ago = Timestamp(now.secs().saturating_sub(30 * DAY));
    check(
        Badge::SuperUser,
        user.valid_checkins_since(month_ago).count() >= 30,
    );

    // Crunked / Overshare: bursts within 12 hours.
    let half_day_ago = Timestamp(now.secs().saturating_sub(12 * HOUR));
    let burst = user.valid_checkins_since(half_day_ago).count();
    check(Badge::Crunked, burst >= 4);
    check(Badge::Overshare, burst >= 10);

    // School Night: the triggering check-in landed between 01:00–04:00.
    let hour_of_day = (now.secs() % DAY) / HOUR;
    check(Badge::SchoolNight, (1..4).contains(&hour_of_day));

    // Category badges.
    let coffee = user.venues_by_category.count(VenueCategory::Coffee);
    check(Badge::FreshBrew, coffee >= 5);
    let airports = user.venues_by_category.count(VenueCategory::Airport);
    check(Badge::JetSetter, airports >= 5);

    // Gym Rat: 10 gym check-ins in the trailing 30 days (check-ins, not
    // distinct venues — loyalty to one gym counts).
    let gym_visits = user
        .valid_checkins_since(month_ago)
        .filter(|r| venues.category_of(r.venue) == Some(VenueCategory::Gym))
        .count();
    check(Badge::GymRat, gym_visits >= 10);

    check(Badge::SuperMayor, user.mayorships.len() >= 10);

    earned
}

/// The mayorship window: "the user who checked in to that venue the most
/// days in the past 60 days" (§2.1).
pub const MAYOR_WINDOW: Duration = Duration(60 * DAY);

/// Decides whether `challenger` takes the mayorship of `venue` at `now`,
/// given read access to the incumbent's user record.
///
/// Rules reproduced from §2.1:
/// * only distinct *days with check-ins* in the trailing 60 days count —
///   "without consideration of how many check-ins occurred per day";
/// * there is exactly one mayor per venue;
/// * a challenger must strictly exceed the incumbent's day count (ties
///   keep the incumbent — this is what makes the §2.2 squatting attack
///   work: an attacker checking in daily can never be dethroned by an
///   equally diligent newcomer);
/// * a venue with no mayor is claimed by a single valid check-in — the
///   §3.4 observation that "only one check-in is enough" on dormant
///   venues.
pub fn decide_mayor(
    venue: &Venue,
    challenger: &User,
    incumbent: Option<&User>,
    now: Timestamp,
) -> bool {
    if venue.mayor == Some(challenger.id) {
        return false; // already mayor; nothing to transfer
    }
    let window_start = Timestamp(now.secs().saturating_sub(MAYOR_WINDOW.as_secs()));
    let challenger_days = challenger.distinct_days_at(venue.id, window_start);
    if challenger_days == 0 {
        return false;
    }
    match incumbent {
        None => true,
        Some(inc) => {
            let incumbent_days = inc.distinct_days_at(venue.id, window_start);
            challenger_days > incumbent_days
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::{CheckinRecord, CheckinSource};
    use crate::user::UserSpec;
    use crate::venue::VenueSpec;
    use crate::UserId;
    use lbsn_geo::GeoPoint;

    fn loc() -> GeoPoint {
        GeoPoint::new(35.0, -106.0).unwrap()
    }

    fn venue(id: u64) -> Venue {
        Venue::from_spec(
            VenueId(id),
            VenueSpec::new("V", loc()),
            Timestamp(0),
            &mut crate::StrArena::new(),
        )
    }

    fn user(id: u64) -> User {
        User::from_spec(UserId(id), UserSpec::anonymous(), Timestamp(0))
    }

    /// Appends a valid check-in directly to the user's state (test
    /// shortcut bypassing the server pipeline).
    fn add_valid(u: &mut User, venue: u64, at: u64) {
        u.push_record(CheckinRecord {
            venue: VenueId(venue),
            at: Timestamp(at),
            location: loc(),
            source: CheckinSource::MobileApp,
            rewarded: true,
            flags: vec![],
        });
        u.valid_checkins += 1;
        u.visited_venues.insert(VenueId(venue));
    }

    struct NoVenues;
    impl VenueLookup for NoVenues {
        fn category_of(&self, _: VenueId) -> Option<VenueCategory> {
            None
        }
    }

    #[test]
    fn points_policy_composes_bonuses() {
        let p = PointsPolicy::default();
        assert_eq!(p.award(false, false, false), 1);
        assert_eq!(p.award(true, false, false), 5);
        assert_eq!(p.award(true, true, false), 7);
        assert_eq!(p.award(true, true, true), 12);
    }

    #[test]
    fn newbie_and_adventurer() {
        let mut u = user(1);
        add_valid(&mut u, 1, 100);
        let v = venue(1);
        let badges = evaluate_badges(&u, &v, Timestamp(100), &NoVenues);
        assert!(badges.contains(&Badge::Newbie));
        assert!(!badges.contains(&Badge::Adventurer));

        for i in 2..=10 {
            add_valid(&mut u, i, 100 + i * 7200);
        }
        let badges = evaluate_badges(&u, &venue(10), Timestamp(100 + 10 * 7200), &NoVenues);
        assert!(badges.contains(&Badge::Adventurer));
    }

    #[test]
    fn badges_not_reawarded() {
        let mut u = user(1);
        add_valid(&mut u, 1, 100);
        u.badges.insert(Badge::Newbie);
        let badges = evaluate_badges(&u, &venue(1), Timestamp(100), &NoVenues);
        assert!(!badges.contains(&Badge::Newbie));
    }

    #[test]
    fn bender_needs_four_consecutive_days() {
        let mut u = user(1);
        for d in 10..14 {
            add_valid(&mut u, 1, d * DAY + 100 + (d - 10) * HOUR * 2);
        }
        let now = Timestamp(13 * DAY + 100 + 6 * HOUR);
        let badges = evaluate_badges(&u, &venue(1), now, &NoVenues);
        assert!(badges.contains(&Badge::Bender));

        // A gap breaks the streak.
        let mut v = user(2);
        for d in [10u64, 11, 13, 14] {
            add_valid(&mut v, 1, d * DAY + 100);
        }
        let badges = evaluate_badges(&v, &venue(1), Timestamp(14 * DAY + 100), &NoVenues);
        assert!(!badges.contains(&Badge::Bender));
    }

    #[test]
    fn local_same_venue_in_week() {
        let mut u = user(1);
        add_valid(&mut u, 5, 0);
        add_valid(&mut u, 5, 2 * DAY);
        add_valid(&mut u, 5, 4 * DAY);
        let badges = evaluate_badges(&u, &venue(5), Timestamp(4 * DAY), &NoVenues);
        assert!(badges.contains(&Badge::Local));

        // Spread over more than a week: no badge.
        let mut v = user(2);
        add_valid(&mut v, 5, 0);
        add_valid(&mut v, 5, 5 * DAY);
        add_valid(&mut v, 5, 10 * DAY);
        let badges = evaluate_badges(&v, &venue(5), Timestamp(10 * DAY), &NoVenues);
        assert!(!badges.contains(&Badge::Local));
    }

    #[test]
    fn super_user_thirty_in_month() {
        let mut u = user(1);
        for i in 0..30 {
            add_valid(&mut u, (i % 5) + 1, i * DAY / 2);
        }
        let now = Timestamp(29 * DAY / 2);
        let badges = evaluate_badges(&u, &venue(1), now, &NoVenues);
        assert!(badges.contains(&Badge::SuperUser));
    }

    #[test]
    fn crunked_and_overshare_bursts() {
        let mut u = user(1);
        for i in 0..10 {
            add_valid(&mut u, i + 1, 1000 + i * 1800);
        }
        let now = Timestamp(1000 + 9 * 1800);
        let badges = evaluate_badges(&u, &venue(10), now, &NoVenues);
        assert!(badges.contains(&Badge::Crunked));
        assert!(badges.contains(&Badge::Overshare));
    }

    #[test]
    fn school_night_hour_window() {
        let mut u = user(1);
        add_valid(&mut u, 1, 2 * HOUR); // 02:00
        let badges = evaluate_badges(&u, &venue(1), Timestamp(2 * HOUR), &NoVenues);
        assert!(badges.contains(&Badge::SchoolNight));
        let mut v = user(2);
        add_valid(&mut v, 1, 12 * HOUR); // noon
        let badges = evaluate_badges(&v, &venue(1), Timestamp(12 * HOUR), &NoVenues);
        assert!(!badges.contains(&Badge::SchoolNight));
    }

    #[test]
    fn category_badges_use_lookup() {
        struct Gyms;
        impl VenueLookup for Gyms {
            fn category_of(&self, _: VenueId) -> Option<VenueCategory> {
                Some(VenueCategory::Gym)
            }
        }
        let mut u = user(1);
        for i in 0..10 {
            add_valid(&mut u, 1, i * DAY + i * HOUR);
        }
        let now = Timestamp(9 * DAY + 9 * HOUR);
        let badges = evaluate_badges(&u, &venue(1), now, &Gyms);
        assert!(badges.contains(&Badge::GymRat));

        // FreshBrew counts distinct venues per category from user state.
        let mut c = user(2);
        add_valid(&mut c, 1, 0);
        c.venues_by_category.set(VenueCategory::Coffee, 5);
        let badges = evaluate_badges(&c, &venue(1), Timestamp(0), &NoVenues);
        assert!(badges.contains(&Badge::FreshBrew));
    }

    #[test]
    fn super_mayor_at_ten() {
        let mut u = user(1);
        add_valid(&mut u, 1, 0);
        for i in 0..10 {
            u.mayorships.insert(VenueId(i + 1));
        }
        let badges = evaluate_badges(&u, &venue(1), Timestamp(0), &NoVenues);
        assert!(badges.contains(&Badge::SuperMayor));
    }

    #[test]
    fn mayor_claims_vacant_venue_with_one_checkin() {
        let v = venue(1);
        let mut challenger = user(1);
        add_valid(&mut challenger, 1, 100 * DAY);
        assert!(decide_mayor(&v, &challenger, None, Timestamp(100 * DAY)));
    }

    #[test]
    fn mayor_requires_strictly_more_days() {
        let mut v = venue(1);
        let mut incumbent = user(1);
        for d in 0..4 {
            add_valid(&mut incumbent, 1, (100 + d) * DAY);
        }
        v.mayor = Some(incumbent.id);
        let now = Timestamp(104 * DAY);

        let mut tied = user(2);
        for d in 0..4 {
            add_valid(&mut tied, 1, (100 + d) * DAY + HOUR);
        }
        assert!(
            !decide_mayor(&v, &tied, Some(&incumbent), now),
            "tie keeps the incumbent"
        );

        let mut stronger = user(3);
        for d in 0..5 {
            add_valid(&mut stronger, 1, (99 + d) * DAY + HOUR);
        }
        assert!(decide_mayor(&v, &stronger, Some(&incumbent), now));
    }

    #[test]
    fn mayor_window_expires_old_days() {
        // The incumbent's check-ins have aged out of the 60-day window;
        // a single fresh day takes the crown.
        let mut v = venue(1);
        let mut incumbent = user(1);
        for d in 0..10 {
            add_valid(&mut incumbent, 1, d * DAY);
        }
        v.mayor = Some(incumbent.id);
        let mut challenger = user(2);
        let now = Timestamp(200 * DAY);
        add_valid(&mut challenger, 1, 200 * DAY);
        assert!(decide_mayor(&v, &challenger, Some(&incumbent), now));
    }

    #[test]
    fn many_checkins_one_day_count_once() {
        // "without consideration of how many check-ins occurred per day"
        let mut v = venue(1);
        let mut incumbent = user(1);
        add_valid(&mut incumbent, 1, 100 * DAY);
        add_valid(&mut incumbent, 1, 101 * DAY);
        v.mayor = Some(incumbent.id);

        let mut spammer = user(2);
        for i in 0..20 {
            add_valid(&mut spammer, 1, 102 * DAY + i * HOUR / 2);
        }
        // 20 check-ins but one day: 1 < 2, incumbent holds.
        assert!(!decide_mayor(
            &v,
            &spammer,
            Some(&incumbent),
            Timestamp(102 * DAY + 10 * HOUR)
        ));
    }

    #[test]
    fn existing_mayor_does_not_retransfer() {
        let mut v = venue(1);
        let mut mayor = user(1);
        add_valid(&mut mayor, 1, 100 * DAY);
        v.mayor = Some(mayor.id);
        assert!(!decide_mayor(
            &v,
            &mayor,
            Some(&mayor),
            Timestamp(100 * DAY)
        ));
    }

    #[test]
    fn badge_messages_unique() {
        let mut msgs: Vec<_> = Badge::ALL.iter().map(|b| b.message()).collect();
        msgs.sort();
        let before = msgs.len();
        msgs.dedup();
        assert_eq!(before, msgs.len());
    }
}
