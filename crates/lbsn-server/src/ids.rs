//! Numeric, incrementing identifiers.
//!
//! The paper's crawl (§3.2) works *because* these are dense integers:
//! "Foursquare uses incrementing numerical IDs to identify their users
//! and venues. By changing the ID in the URL, we can crawl almost all of
//! the user and venue profiles." We reproduce that weakness faithfully:
//! IDs start at 1 and increment per registration, so an attacker who can
//! fetch `/user/1` can enumerate everyone.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A user identifier. Dense, incrementing, starting at 1.
    UserId,
    "u"
);

id_type!(
    /// A venue identifier. Dense, incrementing, starting at 1.
    VenueId,
    "v"
);

// Ids are inline `u64` newtypes: no owned heap.
lbsn_obs::mem_footprint_inline!(UserId, VenueId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_value() {
        assert_eq!(UserId(1852791).to_string(), "u1852791");
        assert_eq!(VenueId(1235677).to_string(), "v1235677");
        assert_eq!(UserId(7).value(), 7);
        assert_eq!(VenueId::from(9).value(), 9);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(UserId(2) < UserId(10));
        assert!(VenueId(100) > VenueId(99));
    }
}
