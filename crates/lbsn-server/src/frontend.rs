//! The batched request frontend: bounded per-shard submission queues,
//! batch-drain workers, and admission backpressure.
//!
//! The paper's measurement campaign shaped its traffic the way any
//! networked service sees it — bursty, concurrent, and far above the
//! sustainable rate when an automated campaign runs hot (§3.2). The
//! in-process [`LbsnServer::check_in`] call pays one user-shard
//! `write_set` acquisition and one venue-shard acquisition per op; this
//! module amortizes that cost by queueing submissions per *user shard*
//! and letting a small pool of workers drain up to
//! [`FrontendConfig::batch_max`] ops from one queue at a time into
//! [`LbsnServer::check_in_batch`] — one lock acquisition per batch
//! instead of per check-in.
//!
//! # Queue topology
//!
//! One bounded MPSC queue per user shard, routed by
//! [`LbsnServer::user_shard`]. A submission for user *u* always lands
//! on queue `shard(u)`, so two check-ins by the same user can never
//! reorder: they sit in the same FIFO queue and are drained by the same
//! worker. Worker *w* owns queues `{s : s mod workers == w}`; ownership
//! is static, so no queue is ever drained by two workers and batches
//! never interleave within a queue.
//!
//! # Backpressure
//!
//! Each queue's capacity ([`FrontendConfig::queue_depth`]) is its
//! high-water mark. A submission that finds its queue full is **shed**:
//! counted (`server.frontend.shed`), written to the decision audit
//! plane with the terminal reason `shed.queue_full`, and returned as
//! [`SubmitOutcome::Shed`] with a retry-after hint instead of blocking
//! the caller. Shedding at the edge keeps the sojourn of *admitted*
//! work bounded — the open-loop bench (`BENCH_checkin_frontend.json`)
//! shows p999 staying flat past saturation while the shed rate absorbs
//! the overload.
//!
//! # Lock-order discipline
//!
//! The frontend itself takes no shard locks — it only routes. All
//! locking happens inside [`LbsnServer::check_in_batch`], which obeys
//! the four rules documented on [`crate::shard`] (user shards ascending
//! before one venue shard at a time; side maps as leaves). The worker's
//! own queue mutex is released before the batch call, so it composes as
//! a leaf and never orders against a shard lock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Condvar;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

use lbsn_obs::{DecisionBuilder, DecisionOutcome};
use serde::{Deserialize, Serialize};

use crate::checkin::{CheckinError, CheckinOutcome, CheckinRequest};
use crate::server::LbsnServer;

/// EWMA weight (1/2^N) for the per-op service-time estimate that backs
/// the shed retry-after hint.
const SERVICE_EWMA_SHIFT: u32 = 3;

/// Starting per-op service-time estimate (ns) before the first batch
/// completes — the scale of an uncontended check-in.
const SERVICE_NS_SEED: u64 = 10_000;

/// Deployment knobs for the request frontend. Serde-round-trippable so
/// a scenario file can carry them next to the [`crate::ServerConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Batch-drain worker threads. Each worker statically owns the
    /// queues of user shards `s` with `s % workers == w`.
    pub workers: usize,
    /// Per-queue capacity — the high-water mark past which submissions
    /// are shed with a retry-after instead of enqueued.
    pub queue_depth: usize,
    /// Most ops a worker admits per [`LbsnServer::check_in_batch`]
    /// call. `1` degenerates to per-op admission through the queue.
    pub batch_max: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            workers: 4,
            queue_depth: 1024,
            batch_max: 64,
        }
    }
}

/// What [`RequestFrontend::submit`] did with a check-in.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Queued for admission; wait on the ticket for the decision.
    Enqueued(CheckinTicket),
    /// The user's shard queue was at its high-water mark; the check-in
    /// was not recorded anywhere. `retry_after` estimates when the
    /// queue will have drained enough to accept a resubmission.
    Shed {
        /// Drain-rate-based resubmission hint.
        retry_after: Duration,
    },
}

impl SubmitOutcome {
    /// Blocks until the decision for an enqueued submission; maps a
    /// shed submission to [`CheckinError::Shed`] with its hint.
    pub fn wait(self) -> Result<CheckinOutcome, CheckinError> {
        match self {
            SubmitOutcome::Enqueued(ticket) => ticket.wait(),
            SubmitOutcome::Shed { retry_after } => Err(CheckinError::Shed { retry_after }),
        }
    }

    /// Whether the submission was shed at the high-water mark.
    pub fn is_shed(&self) -> bool {
        matches!(self, SubmitOutcome::Shed { .. })
    }
}

/// A handle to one queued check-in's eventual decision.
#[derive(Debug)]
pub struct CheckinTicket {
    inner: Arc<Ticket>,
}

impl CheckinTicket {
    /// Blocks until the batch worker decides this check-in.
    pub fn wait(self) -> Result<CheckinOutcome, CheckinError> {
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .inner
                .decided
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Shared submit→decide rendezvous cell. The worker fills the slot and
/// signals; the submitter waits. Uses `std::sync::Mutex` directly
/// (not the vendored wrapper) because `Condvar::wait` needs the real
/// guard type by value.
#[derive(Debug)]
struct Ticket {
    slot: std::sync::Mutex<Option<Result<CheckinOutcome, CheckinError>>>, // lint:allow(no-std-sync): Condvar rendezvous needs the std guard
    decided: Condvar,
}

impl Ticket {
    fn new() -> Arc<Self> {
        Arc::new(Ticket {
            slot: std::sync::Mutex::new(None), // lint:allow(no-std-sync): Condvar rendezvous needs the std guard
            decided: Condvar::new(),
        })
    }

    fn fulfill(&self, result: Result<CheckinOutcome, CheckinError>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(result);
        drop(slot);
        self.decided.notify_all();
    }
}

/// One queued submission.
struct Pending {
    req: CheckinRequest,
    ticket: Arc<Ticket>,
    submitted: Instant,
}

/// A worker's inbox: the FIFO queues of the user shards it owns, plus
/// a round-robin cursor so one hot shard cannot starve the others.
struct Inbox {
    /// `queues[i]` holds shard `worker + i * workers`.
    queues: Vec<std::collections::VecDeque<Pending>>,
    /// Next queue index to drain from.
    cursor: usize,
}

/// Per-worker shared state: the inbox under a std mutex (the paired
/// `Condvar` needs the std guard by value) and the wakeup signal.
struct WorkerState {
    inbox: std::sync::Mutex<Inbox>, // lint:allow(no-std-sync): Condvar pairing needs the std guard
    wake: Condvar,
}

/// State shared by submitters and workers.
struct Shared {
    server: Arc<LbsnServer>,
    config: FrontendConfig,
    workers: Vec<WorkerState>,
    shutdown: AtomicBool,
    /// Check-ins currently queued across all queues (drives the
    /// `server.frontend.queue_depth` gauge and [`RequestFrontend::quiesce`]).
    queued: AtomicU64,
    /// Enqueued submissions whose tickets have not been fulfilled yet.
    in_flight: AtomicU64,
    /// EWMA of per-op batch service time, nanoseconds — the drain-rate
    /// estimate behind the shed retry-after hint.
    service_ns: AtomicU64,
}

impl Shared {
    /// The worker owning `shard` and the inbox queue index of `shard`
    /// within that worker.
    fn route(&self, shard: usize) -> (usize, usize) {
        let workers = self.config.workers;
        (shard % workers, shard / workers)
    }
}

/// The batched admission frontend over an [`LbsnServer`]. See the
/// module docs for topology and backpressure semantics.
///
/// Dropping the frontend drains every queue (workers exit only once
/// their queues are empty), so no ticket is left undecided.
pub struct RequestFrontend {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl RequestFrontend {
    /// Spawns the batch-drain workers over `server`.
    pub fn new(server: Arc<LbsnServer>, config: FrontendConfig) -> Self {
        let config = FrontendConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            batch_max: config.batch_max.max(1),
        };
        let shard_count = server.shard_count();
        let workers = (0..config.workers.min(shard_count).max(1))
            .map(|w| WorkerState {
                // lint:allow(no-std-sync): Condvar pairing needs the std guard
                inbox: std::sync::Mutex::new(Inbox {
                    // Worker w owns shards w, w+workers, ... < shard_count.
                    queues: (w..shard_count)
                        .step_by(config.workers.min(shard_count).max(1))
                        .map(|_| std::collections::VecDeque::new())
                        .collect(),
                    cursor: 0,
                }),
                wake: Condvar::new(),
            })
            .collect::<Vec<_>>();
        let shared = Arc::new(Shared {
            server,
            config: FrontendConfig {
                workers: workers.len(),
                ..config
            },
            workers,
            shutdown: AtomicBool::new(false),
            queued: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            service_ns: AtomicU64::new(SERVICE_NS_SEED),
        });
        let handles = (0..shared.config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lbsn-frontend-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .unwrap_or_else(|e| panic!("spawn frontend worker {w}: {e}"))
            })
            .collect();
        RequestFrontend { shared, handles }
    }

    /// The resolved configuration (worker count clamped to the shard
    /// count).
    pub fn config(&self) -> &FrontendConfig {
        &self.shared.config
    }

    /// Submits a check-in to its user-shard queue. Never blocks on a
    /// full queue: past the high-water mark the submission is shed with
    /// a retry-after hint and an audit record (`shed.queue_full`).
    pub fn submit(&self, req: CheckinRequest) -> SubmitOutcome {
        let shared = &self.shared;
        let metrics = shared.server.metrics();
        metrics.frontend_submitted.inc();
        let shard = shared.server.user_shard(req.user);
        let (worker, queue) = shared.route(shard);
        let state = &shared.workers[worker];
        let ticket = {
            let mut inbox = state.inbox.lock().unwrap_or_else(PoisonError::into_inner);
            let q = &mut inbox.queues[queue];
            if q.len() >= shared.config.queue_depth || shared.shutdown.load(Ordering::Acquire) {
                drop(inbox);
                return self.shed(&req);
            }
            let ticket = Ticket::new();
            q.push_back(Pending {
                req,
                ticket: Arc::clone(&ticket),
                submitted: Instant::now(),
            });
            ticket
        };
        let depth = shared.queued.fetch_add(1, Ordering::AcqRel) + 1;
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        metrics.frontend_queue_depth.set(depth as f64);
        state.wake.notify_one();
        SubmitOutcome::Enqueued(CheckinTicket { inner: ticket })
    }

    /// Records a shed decision and builds its retry-after hint from the
    /// drain-rate estimate: roughly the time the owning worker needs to
    /// work off one full queue.
    fn shed(&self, req: &CheckinRequest) -> SubmitOutcome {
        let shared = &self.shared;
        let metrics = shared.server.metrics();
        metrics.frontend_shed.inc();
        let now = shared.server.clock().now();
        let decision = DecisionBuilder::new(req.user.value(), req.venue.value(), now.secs());
        metrics.audit.finish(&decision, DecisionOutcome::Shed);
        let service_ns = shared.service_ns.load(Ordering::Relaxed).max(1);
        let retry_after =
            Duration::from_nanos(service_ns.saturating_mul(shared.config.queue_depth as u64));
        SubmitOutcome::Shed { retry_after }
    }

    /// Blocks until every enqueued submission has been decided (queues
    /// empty *and* all tickets fulfilled). Used by benches and tests to
    /// close the books before reading conservation counters.
    pub fn quiesce(&self) {
        while self.shared.queued.load(Ordering::Acquire) > 0
            || self.shared.in_flight.load(Ordering::Acquire) > 0
        {
            std::thread::yield_now();
        }
    }

    /// Signals shutdown and joins the workers. Queues drain first —
    /// every outstanding ticket is decided, never abandoned. New
    /// submissions during shutdown are shed.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for state in &self.shared.workers {
            state.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            if handle.join().is_err() {
                // A panicked worker already poisoned nothing (std mutex
                // poison is stripped everywhere); surface via metrics
                // being short rather than a double panic here.
            }
        }
    }
}

impl Drop for RequestFrontend {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Takes up to `batch_max` pendings from the next non-empty queue,
/// round-robin from the cursor. All ops in a batch come from ONE queue
/// — one user shard — so the batch's `write_set` covers every requester
/// with a single stripe.
fn take_batch(inbox: &mut Inbox, batch_max: usize) -> Option<Vec<Pending>> {
    let n = inbox.queues.len();
    for step in 0..n {
        let i = (inbox.cursor + step) % n;
        if inbox.queues[i].is_empty() {
            continue;
        }
        let take = inbox.queues[i].len().min(batch_max);
        let batch: Vec<Pending> = inbox.queues[i].drain(..take).collect();
        // Resume after this queue next time, even if it still has work:
        // round-robin keeps one hot shard from starving the rest.
        inbox.cursor = (i + 1) % n;
        return Some(batch);
    }
    None
}

/// The batch-drain loop for worker `w`: wait for work, take one batch,
/// admit it through [`LbsnServer::check_in_batch`] (one user-shard lock
/// acquisition for the whole batch), fulfill the tickets, repeat. Exits
/// when shutdown is signalled *and* its queues are empty.
fn worker_loop(shared: &Shared, w: usize) {
    let state = &shared.workers[w];
    let metrics = shared.server.metrics();
    loop {
        let batch = {
            let mut inbox = state.inbox.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(batch) = take_batch(&mut inbox, shared.config.batch_max) {
                    break batch;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inbox = state
                    .wake
                    .wait(inbox)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let depth = shared
            .queued
            .fetch_sub(batch.len() as u64, Ordering::AcqRel)
            - batch.len() as u64;
        metrics.frontend_queue_depth.set(depth as f64);
        metrics.frontend_batch_size.record(batch.len() as u64);

        let reqs: Vec<CheckinRequest> = batch.iter().map(|p| p.req).collect();
        let started = Instant::now();
        let mut results = shared.server.check_in_batch(&reqs);
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        // Fold this batch's per-op cost into the drain-rate EWMA.
        let per_op = elapsed_ns / reqs.len().max(1) as u64;
        let prev = shared.service_ns.load(Ordering::Relaxed);
        let next = prev - (prev >> SERVICE_EWMA_SHIFT) + (per_op >> SERVICE_EWMA_SHIFT);
        shared.service_ns.store(next.max(1), Ordering::Relaxed);

        debug_assert_eq!(results.len(), batch.len());
        // Fulfill in submission order; sojourn covers queue wait plus
        // the batch's own admission time.
        for (pending, result) in batch.into_iter().zip(results.drain(..)) {
            let sojourn_ns = pending.submitted.elapsed().as_nanos() as u64;
            metrics.frontend_sojourn.record_ns(sojourn_ns);
            metrics.frontend_decided.inc();
            pending.ticket.fulfill(result);
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::user::UserSpec;
    use crate::venue::VenueSpec;
    use crate::CheckinSource;
    use lbsn_geo::GeoPoint;
    use lbsn_sim::{Duration as SimDuration, SimClock};

    fn abq() -> GeoPoint {
        GeoPoint::new(35.0844, -106.6504).unwrap()
    }

    fn bed() -> (Arc<LbsnServer>, Vec<crate::UserId>, crate::VenueId) {
        let server = Arc::new(LbsnServer::with_registry(
            SimClock::new(),
            ServerConfig::default(),
            Arc::new(lbsn_obs::Registry::new()),
        ));
        let venue = server.register_venue(VenueSpec::new("Cafe", abq()));
        let users = (0..8)
            .map(|_| server.register_user(UserSpec::anonymous()))
            .collect();
        (server, users, venue)
    }

    fn req(user: crate::UserId, venue: crate::VenueId) -> CheckinRequest {
        CheckinRequest {
            user,
            venue,
            reported_location: abq(),
            source: CheckinSource::MobileApp,
        }
    }

    #[test]
    fn submit_decides_like_direct_checkin() {
        let (server, users, venue) = bed();
        let frontend = RequestFrontend::new(Arc::clone(&server), FrontendConfig::default());
        let out = frontend.submit(req(users[0], venue)).wait().unwrap();
        assert!(out.rewarded());
        assert!(out.became_mayor);
        frontend.shutdown();
        let snap = server.metrics().registry().snapshot();
        assert_eq!(snap.counter(lbsn_obs::names::server::FRONTEND_SUBMITTED), 1);
        assert_eq!(snap.counter(lbsn_obs::names::server::FRONTEND_DECIDED), 1);
        assert_eq!(snap.counter(lbsn_obs::names::server::FRONTEND_SHED), 0);
    }

    #[test]
    fn unknown_ids_surface_per_ticket() {
        let (server, _users, venue) = bed();
        let frontend = RequestFrontend::new(Arc::clone(&server), FrontendConfig::default());
        let bogus = crate::UserId(999);
        let err = frontend.submit(req(bogus, venue)).wait().unwrap_err();
        assert_eq!(err, CheckinError::UnknownUser(bogus));
    }

    #[test]
    fn same_user_submissions_stay_fifo() {
        let (server, users, venue) = bed();
        let frontend = RequestFrontend::new(
            Arc::clone(&server),
            FrontendConfig {
                workers: 2,
                ..FrontendConfig::default()
            },
        );
        // Rapid-fire same-user submissions: the second within the
        // cooldown window must be judged *after* the first (flagged),
        // which only holds if the queue preserves per-user order.
        let first = frontend.submit(req(users[0], venue));
        let second = frontend.submit(req(users[0], venue));
        let a = first.wait().unwrap();
        let b = second.wait().unwrap();
        assert!(a.rewarded());
        assert!(!b.rewarded(), "second rapid-fire check-in must be flagged");
        frontend.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_retry_after() {
        let (server, users, venue) = bed();
        // One worker, tiny queue, and a clock that never advances: all
        // users hash to few shards, so queue 0 fills fast.
        let frontend = RequestFrontend::new(
            Arc::clone(&server),
            FrontendConfig {
                workers: 1,
                queue_depth: 1,
                batch_max: 1,
            },
        );
        let mut shed = 0usize;
        let mut tickets = Vec::new();
        for _ in 0..64 {
            server.clock().advance(SimDuration::secs(121));
            match frontend.submit(req(users[0], venue)) {
                SubmitOutcome::Enqueued(t) => tickets.push(t),
                SubmitOutcome::Shed { retry_after } => {
                    assert!(retry_after > Duration::ZERO);
                    shed += 1;
                }
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        frontend.quiesce();
        frontend.shutdown();
        let snap = server.metrics().registry().snapshot();
        let submitted = snap.counter(lbsn_obs::names::server::FRONTEND_SUBMITTED);
        let decided = snap.counter(lbsn_obs::names::server::FRONTEND_DECIDED);
        let shed_ctr = snap.counter(lbsn_obs::names::server::FRONTEND_SHED);
        assert_eq!(submitted, 64);
        assert_eq!(shed as u64, shed_ctr);
        assert_eq!(decided + shed_ctr, submitted, "conservation");
    }

    #[test]
    fn shutdown_drains_outstanding_tickets() {
        let (server, users, venue) = bed();
        let frontend = RequestFrontend::new(
            Arc::clone(&server),
            FrontendConfig {
                workers: 1,
                queue_depth: 1024,
                batch_max: 8,
            },
        );
        let tickets: Vec<_> = users
            .iter()
            .map(|&u| {
                server.clock().advance(SimDuration::secs(121));
                frontend.submit(req(u, venue))
            })
            .collect();
        frontend.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "ticket decided before shutdown returned");
        }
    }
}
