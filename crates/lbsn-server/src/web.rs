//! The public web frontend: the pages the paper's crawler scraped.
//!
//! §3.2: "Two types of URLs can be used to access user profiles. The
//! first one is with an internal user ID in URL, like
//! `http://Foursquare.com/user/1852791` … For venue profiles, Foursquare
//! only uses numbered IDs". We render the same routes and the same
//! information content:
//!
//! * `/user/<id>` and `/user/<name>` — username, home, total check-ins,
//!   badge/friend counts. Mayorships and check-in history are *not*
//!   shown (the paper infers them from venue pages).
//! * `/venue/<id>` — name, address, coordinates, check-in and
//!   unique-visitor counts, the special, a link to the mayor, and the
//!   "Who's been here" recent-visitor list (Fig B.1 — the section
//!   Foursquare removed right after the authors finished crawling).
//!
//! [`WebConfig`] carries the §5.2 defense switches: login gating for
//! profile pages, hashing of visitor IDs, and removal of the visitor
//! list.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::{LbsnServer, UserId, VenueId};

/// Defense-related frontend switches (§5.2).
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Require a logged-in session to view profile pages ("If a user
    /// must login to view the publicly available profile pages, it's
    /// easier to detect the crawling users and block them").
    pub require_login: bool,
    /// Replace visitor user IDs with opaque hashes ("the service
    /// provider may use the hash function to hide necessary information
    /// (such as user IDs in the recent check-in list)").
    pub hash_visitor_ids: bool,
    /// Render the "Who's been here" section at all. Foursquare removed
    /// it after the crawl; setting this false reproduces the post-fix
    /// site.
    pub show_whos_been_here: bool,
}

impl Default for WebConfig {
    fn default() -> Self {
        // The August-2010 site the paper crawled: everything public.
        WebConfig {
            require_login: false,
            hash_visitor_ids: false,
            show_whos_been_here: true,
        }
    }
}

/// A minimal HTTP-ish request. The transport is in-process; only the
/// fields the frontend and the anti-crawl defenses inspect exist.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRequest {
    /// Request path, e.g. `/user/1852791`.
    pub path: String,
    /// Whether the client presented a valid login session.
    pub logged_in: bool,
}

impl PageRequest {
    /// An anonymous GET for `path`.
    pub fn get(path: impl Into<String>) -> Self {
        PageRequest {
            path: path.into(),
            logged_in: false,
        }
    }

    /// A logged-in GET for `path`.
    pub fn get_logged_in(path: impl Into<String>) -> Self {
        PageRequest {
            path: path.into(),
            logged_in: true,
        }
    }
}

/// An HTTP-ish response.
#[derive(Debug, Clone, PartialEq)]
pub struct PageResponse {
    /// 200, 403, or 404.
    pub status: u16,
    /// HTML body (empty for non-200).
    pub body: String,
}

impl PageResponse {
    fn ok(body: String) -> Self {
        PageResponse { status: 200, body }
    }

    fn not_found() -> Self {
        PageResponse {
            status: 404,
            body: String::new(),
        }
    }

    fn login_required() -> Self {
        PageResponse {
            status: 403,
            body: String::new(),
        }
    }

    /// Whether this is a successful page load.
    pub fn is_ok(&self) -> bool {
        self.status == 200
    }
}

/// The web frontend. Cheap to clone; thread-safe — the crawler calls
/// [`WebFrontend::handle`] from many worker threads.
#[derive(Clone)]
pub struct WebFrontend {
    server: Arc<LbsnServer>,
    config: Arc<RwLock<WebConfig>>,
}

impl std::fmt::Debug for WebFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebFrontend")
            .field("config", &*self.config.read())
            .finish()
    }
}

impl WebFrontend {
    /// A frontend over a server with the August-2010 (fully public)
    /// configuration.
    pub fn new(server: Arc<LbsnServer>) -> Self {
        WebFrontend::with_config(server, WebConfig::default())
    }

    /// A frontend with an explicit configuration.
    pub fn with_config(server: Arc<LbsnServer>, config: WebConfig) -> Self {
        WebFrontend {
            server,
            config: Arc::new(RwLock::new(config)),
        }
    }

    /// Swaps the configuration (the defense experiments flip switches
    /// mid-run).
    pub fn set_config(&self, config: WebConfig) {
        *self.config.write() = config;
    }

    /// A snapshot of the current configuration.
    pub fn config(&self) -> WebConfig {
        self.config.read().clone()
    }

    /// The server this frontend renders.
    pub fn server(&self) -> &Arc<LbsnServer> {
        &self.server
    }

    /// Routes and renders a request.
    pub fn handle(&self, req: &PageRequest) -> PageResponse {
        let config = self.config.read().clone();
        if config.require_login && !req.logged_in {
            return PageResponse::login_required();
        }
        let mut parts = req.path.trim_start_matches('/').splitn(2, '/');
        match (parts.next(), parts.next()) {
            (Some("user"), Some(rest)) => self.user_page(rest),
            (Some("venue"), Some(rest)) => self.venue_page(rest, &config),
            _ => PageResponse::not_found(),
        }
    }

    fn user_page(&self, key: &str) -> PageResponse {
        let id = if let Ok(n) = key.parse::<u64>() {
            UserId(n)
        } else if let Some(id) = self.server.user_id_by_name(key) {
            id
        } else {
            return PageResponse::not_found();
        };
        // The projection accessor: page rendering never clones a
        // check-in history, no matter how long the account's record is.
        let page = self.server.user_profile(id).map(|p| {
            let display = p
                .username
                .unwrap_or_else(|| format!("user{}", p.id.value()));
            let home = p
                .home
                .map(|h| format!("{:.4}, {:.4}", h.lat(), h.lon()))
                .unwrap_or_else(|| "unknown".to_string());
            format!(
                "<html><head><title>LBSN user {id}</title></head><body>\n\
                 <div class=\"user-profile\" data-id=\"{id}\">\n\
                 <h1 class=\"username\">{display}</h1>\n\
                 <span class=\"home\">{home}</span>\n\
                 <span class=\"stat total-checkins\">{total}</span>\n\
                 <span class=\"stat badges\">{badges}</span>\n\
                 <span class=\"stat friends\">{friends}</span>\n\
                 <span class=\"stat points\">{points}</span>\n\
                 </div></body></html>",
                id = p.id.value(),
                display = display,
                home = home,
                total = p.total_checkins,
                badges = p.badge_count,
                friends = p.friend_count,
                points = p.points,
            )
        });
        match page {
            Some(body) => PageResponse::ok(body),
            None => PageResponse::not_found(),
        }
    }

    fn venue_page(&self, key: &str, config: &WebConfig) -> PageResponse {
        let id = match key.parse::<u64>() {
            Ok(n) => VenueId(n),
            Err(_) => return PageResponse::not_found(),
        };
        let page = self.server.with_venue(id, |v| {
            let special_html = match &v.special {
                Some(s) => {
                    let kind = match s.kind {
                        crate::SpecialKind::MayorOnly => "mayor",
                        crate::SpecialKind::EveryCheckin => "everyone",
                        crate::SpecialKind::Loyalty { .. } => "loyalty",
                    };
                    format!(
                        "<div class=\"special\" data-kind=\"{kind}\">{}</div>\n",
                        s.description
                    )
                }
                None => String::new(),
            };
            let mayor_html = match v.mayor {
                Some(m) => format!(
                    "<a class=\"mayor\" href=\"/user/{0}\">u{0}</a>\n",
                    m.value()
                ),
                None => "<span class=\"mayor none\">No mayor yet</span>\n".to_string(),
            };
            let visitors_html = if config.show_whos_been_here {
                let entries: String = v
                    .recent_visitors()
                    .iter()
                    .map(|u| {
                        if config.hash_visitor_ids {
                            format!(
                                "<span class=\"visitor\">{}</span>",
                                opaque_visitor_token(*u)
                            )
                        } else {
                            format!(
                                "<a class=\"visitor\" href=\"/user/{0}\">u{0}</a>",
                                u.value()
                            )
                        }
                    })
                    .collect();
                format!("<div class=\"whos-been-here\">{entries}</div>\n")
            } else {
                String::new()
            };
            // Up to five most-recent tips appear on the page.
            let tips_html = {
                let entries: String = v
                    .tips()
                    .iter()
                    .take(5)
                    .map(|t| {
                        format!(
                            "<div class=\"tip\" data-user=\"{}\">{}</div>",
                            t.user.value(),
                            t.text
                        )
                    })
                    .collect();
                format!(
                    "<span class=\"stat tips\">{}</span>\n<div class=\"tips\">{entries}</div>\n",
                    v.tips().len()
                )
            };
            format!(
                "<html><head><title>LBSN venue {id}</title></head><body>\n\
                 <div class=\"venue\" data-id=\"{id}\">\n\
                 <h1 class=\"venue-name\">{name}</h1>\n\
                 <span class=\"address\">{address}</span>\n\
                 <span class=\"category\">{category}</span>\n\
                 <span class=\"geo\" data-lat=\"{lat:.6}\" data-lon=\"{lon:.6}\"></span>\n\
                 <span class=\"stat checkins-here\">{checkins}</span>\n\
                 <span class=\"stat unique-visitors\">{unique}</span>\n\
                 {tips}{special}{mayor}{visitors}</div></body></html>",
                id = v.id.value(),
                name = v.name(),
                address = v.address(),
                category = v.category.label(),
                lat = v.location.lat(),
                lon = v.location.lon(),
                checkins = v.checkins_here,
                unique = v.unique_visitors().len(),
                tips = tips_html,
                special = special_html,
                mayor = mayor_html,
                visitors = visitors_html,
            )
        });
        match page {
            Some(body) => PageResponse::ok(body),
            None => PageResponse::not_found(),
        }
    }
}

/// The §5.2 mitigation: a keyed one-way token in place of a visitor's
/// user ID. Crawlers can still count list entries but can no longer join
/// them across venues into per-user location histories, because the
/// token is salted per deployment.
fn opaque_visitor_token(u: UserId) -> String {
    // FNV-1a over the id with a fixed deployment salt.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x5A5A_1EB5_0CA1_5EED;
    for b in u.value().to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("h{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CheckinRequest, CheckinSource, ServerConfig, Special, SpecialKind, UserSpec, VenueSpec,
    };
    use lbsn_geo::GeoPoint;
    use lbsn_sim::{Duration, SimClock};

    fn setup() -> (Arc<LbsnServer>, WebFrontend) {
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let frontend = WebFrontend::new(Arc::clone(&server));
        (server, frontend)
    }

    fn abq() -> GeoPoint {
        GeoPoint::new(35.0844, -106.6504).unwrap()
    }

    #[test]
    fn user_page_by_id_and_name() {
        let (server, web) = setup();
        let id = server.register_user(UserSpec::named("mai").home(abq()));
        let by_id = web.handle(&PageRequest::get(format!("/user/{}", id.value())));
        assert!(by_id.is_ok());
        assert!(by_id.body.contains("<h1 class=\"username\">mai</h1>"));
        assert!(by_id.body.contains("total-checkins\">0<"));
        let by_name = web.handle(&PageRequest::get("/user/mai"));
        assert_eq!(by_id.body, by_name.body);
    }

    #[test]
    fn unknown_routes_404() {
        let (_, web) = setup();
        assert_eq!(web.handle(&PageRequest::get("/user/999")).status, 404);
        assert_eq!(web.handle(&PageRequest::get("/venue/999")).status, 404);
        assert_eq!(web.handle(&PageRequest::get("/nothing/1")).status, 404);
        assert_eq!(web.handle(&PageRequest::get("/user")).status, 404);
        assert_eq!(web.handle(&PageRequest::get("")).status, 404);
    }

    #[test]
    fn venue_page_shows_profile_fields() {
        let (server, web) = setup();
        let vid = server.register_venue(
            VenueSpec::new("Starbucks #5", abq())
                .address("500 Central Ave")
                .category(crate::VenueCategory::Coffee)
                .special(Special {
                    description: "Free coffee for the mayor!".into(),
                    kind: SpecialKind::MayorOnly,
                }),
        );
        let uid = server.register_user(UserSpec::anonymous());
        server
            .check_in(&CheckinRequest {
                user: uid,
                venue: vid,
                reported_location: abq(),
                source: CheckinSource::MobileApp,
            })
            .unwrap();
        let page = web.handle(&PageRequest::get("/venue/1"));
        assert!(page.is_ok());
        let b = &page.body;
        assert!(b.contains("venue-name\">Starbucks #5<"));
        assert!(b.contains("data-lat=\"35.084400\""));
        assert!(b.contains("data-lon=\"-106.650400\""));
        assert!(b.contains("checkins-here\">1<"));
        assert!(b.contains("unique-visitors\">1<"));
        assert!(b.contains("data-kind=\"mayor\""));
        assert!(b.contains("class=\"mayor\" href=\"/user/1\""));
        assert!(b.contains("whos-been-here"));
        assert!(b.contains("href=\"/user/1\">u1</a>"));
    }

    #[test]
    fn venue_without_mayor_says_so() {
        let (server, web) = setup();
        server.register_venue(VenueSpec::new("Quiet Spot", abq()));
        let page = web.handle(&PageRequest::get("/venue/1"));
        assert!(page.body.contains("No mayor yet"));
    }

    #[test]
    fn login_gate_blocks_anonymous() {
        let (server, web) = setup();
        server.register_user(UserSpec::anonymous());
        web.set_config(WebConfig {
            require_login: true,
            ..WebConfig::default()
        });
        assert_eq!(web.handle(&PageRequest::get("/user/1")).status, 403);
        assert!(web.handle(&PageRequest::get_logged_in("/user/1")).is_ok());
    }

    #[test]
    fn hashed_visitor_ids_hide_identity_but_keep_counts() {
        let (server, web) = setup();
        let vid = server.register_venue(VenueSpec::new("Spot", abq()));
        for _ in 0..3 {
            let u = server.register_user(UserSpec::anonymous());
            server
                .check_in(&CheckinRequest {
                    user: u,
                    venue: vid,
                    reported_location: abq(),
                    source: CheckinSource::MobileApp,
                })
                .unwrap();
            server.clock().advance(Duration::minutes(5));
        }
        web.set_config(WebConfig {
            hash_visitor_ids: true,
            ..WebConfig::default()
        });
        let page = web.handle(&PageRequest::get("/venue/1"));
        assert!(!page.body.contains("class=\"visitor\" href"));
        assert_eq!(page.body.matches("<span class=\"visitor\">h").count(), 3);
        // Tokens are stable per user but opaque.
        let again = web.handle(&PageRequest::get("/venue/1"));
        assert_eq!(page.body, again.body);
    }

    #[test]
    fn whos_been_here_removable() {
        let (server, web) = setup();
        let vid = server.register_venue(VenueSpec::new("Spot", abq()));
        let u = server.register_user(UserSpec::anonymous());
        server
            .check_in(&CheckinRequest {
                user: u,
                venue: vid,
                reported_location: abq(),
                source: CheckinSource::MobileApp,
            })
            .unwrap();
        web.set_config(WebConfig {
            show_whos_been_here: false,
            ..WebConfig::default()
        });
        let page = web.handle(&PageRequest::get("/venue/1"));
        assert!(page.is_ok());
        assert!(!page.body.contains("whos-been-here"));
    }

    #[test]
    fn anonymous_user_renders_generated_name() {
        let (server, web) = setup();
        server.register_user(UserSpec::anonymous());
        let page = web.handle(&PageRequest::get("/user/1"));
        assert!(page.body.contains("username\">user1<"));
        assert!(page.body.contains("home\">unknown<"));
    }
}
