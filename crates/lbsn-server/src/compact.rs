//! Compact collection types for paper-scale entity storage.
//!
//! At 1.89 M users / 5.6 M venues (§3.2) the dominant memory cost is not
//! data but *container headers on empty collections*: a `HashSet` is
//! 48 bytes before it holds anything, and the old entity structs carried
//! five of them per user. These replacements keep the same call-site
//! surface (`insert` / `contains` / `len` / `iter`) at a fraction of the
//! inline size:
//!
//! * [`IdSet`] — a sorted-`Vec` set (24 bytes empty, exact-capacity
//!   after [`IdSet::shrink_to_fit`], cache-linear iteration);
//! * [`BadgeSet`] — the 15 badge kinds as a `u16` bitset;
//! * [`CategoryCounts`] — per-category distinct-venue counters as a
//!   fixed `[u16; 11]` array (no hashing, no heap);
//! * [`ArenaStr`] / [`StrArena`] — shard-local string interning for
//!   venue names and addresses: bulk-loaded venues share large sealed
//!   chunks (one allocation per ~64 KiB of text instead of one `String`
//!   per field — ~11 M small allocations saved at full scale), and the
//!   chunk bytes are accounted once per shard in `side_maps_bytes`
//!   rather than per entity.

use std::ops::Deref;
use std::sync::Arc;

use lbsn_obs::MemFootprint;
use serde::{Deserialize, Serialize, Value};

use crate::rewards::Badge;
use crate::venue::VenueCategory;

/// A set of IDs stored as a sorted vector.
///
/// 24 bytes when empty (vs 48 for a `HashSet`), exact heap after
/// compaction, and ordered iteration for free. Inserts are
/// `O(log n)` search + `O(n)` shift — fine for the entity sets this
/// backs (friend lists, visited venues, mayorships), which see a few
/// thousand elements at most and are read far more than written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSet<T> {
    items: Vec<T>,
}

// Manual impl: the derive would needlessly bound `T: Default`.
impl<T> Default for IdSet<T> {
    fn default() -> Self {
        IdSet { items: Vec::new() }
    }
}

// The vendored serde derive doesn't handle generics; serialize
// transparently as the sorted element array.
impl<T: Serialize> Serialize for IdSet<T> {
    fn to_value(&self) -> Value {
        self.items.to_value()
    }
}

impl<T: Deserialize + Ord + Copy> Deserialize for IdSet<T> {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        Vec::<T>::deserialize(value).map(IdSet::from_vec)
    }
}

impl<T: Ord + Copy> IdSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        IdSet { items: Vec::new() }
    }

    /// Builds a set from any vector (sorts and dedups).
    pub fn from_vec(mut items: Vec<T>) -> Self {
        items.sort_unstable();
        items.dedup();
        IdSet { items }
    }

    /// Inserts `item`; returns whether it was newly added.
    pub fn insert(&mut self, item: T) -> bool {
        match self.items.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, item);
                true
            }
        }
    }

    /// Removes `item`; returns whether it was present.
    pub fn remove(&mut self, item: &T) -> bool {
        match self.items.binary_search(item) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `item` is in the set.
    pub fn contains(&self, item: &T) -> bool {
        self.items.binary_search(item).is_ok()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// The elements as a sorted slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Removes and yields every element (ascending order).
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.items.drain(..)
    }

    /// Drops excess capacity (post-bulk-load compaction).
    pub fn shrink_to_fit(&mut self) {
        self.items.shrink_to_fit();
    }
}

impl<'a, T> IntoIterator for &'a IdSet<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T: MemFootprint> MemFootprint for IdSet<T> {
    fn heap_bytes(&self) -> usize {
        let IdSet { items } = self;
        items.heap_bytes()
    }
}

/// The badge kinds a user holds, as a bitset over [`Badge::ALL`].
///
/// Two bytes instead of a 48-byte `HashSet` header — the single biggest
/// per-user saving of the flat layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BadgeSet(u16);

impl BadgeSet {
    fn bit(badge: Badge) -> u16 {
        let idx = Badge::ALL
            .iter()
            .position(|b| *b == badge)
            .expect("Badge::ALL is exhaustive"); // lint:allow(no-unwrap-hot-path): exhaustive table
        1 << idx
    }

    /// An empty set.
    pub fn new() -> Self {
        BadgeSet(0)
    }

    /// Grants `badge`; returns whether it was newly added.
    pub fn insert(&mut self, badge: Badge) -> bool {
        let bit = Self::bit(badge);
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Whether `badge` is held.
    pub fn contains(&self, badge: &Badge) -> bool {
        self.0 & Self::bit(*badge) != 0
    }

    /// Number of badges held.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no badge is held.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates held badges in [`Badge::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = Badge> + '_ {
        Badge::ALL
            .into_iter()
            .enumerate()
            .filter(move |(i, _)| self.0 & (1 << i) != 0)
            .map(|(_, b)| b)
    }
}

lbsn_obs::mem_footprint_inline!(BadgeSet);

/// Number of [`VenueCategory`] variants.
const CATEGORY_COUNT: usize = 11;

fn category_index(c: VenueCategory) -> usize {
    match c {
        VenueCategory::Coffee => 0,
        VenueCategory::Restaurant => 1,
        VenueCategory::Bar => 2,
        VenueCategory::Gym => 3,
        VenueCategory::Hotel => 4,
        VenueCategory::Airport => 5,
        VenueCategory::Landmark => 6,
        VenueCategory::Shop => 7,
        VenueCategory::Office => 8,
        VenueCategory::Park => 9,
        VenueCategory::Other => 10,
    }
}

/// Distinct-venue counters per category, as a fixed array.
///
/// Replaces a `HashMap<VenueCategory, u32>`: no heap, no hashing, and
/// 22 inline bytes. `u16` per category is ample — the heaviest
/// workload archetype visits ~12 k venues across all categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCounts([u16; CATEGORY_COUNT]);

impl CategoryCounts {
    /// All-zero counters.
    pub fn new() -> Self {
        CategoryCounts::default()
    }

    /// Increments the counter for `category` (saturating).
    pub fn bump(&mut self, category: VenueCategory) {
        let c = &mut self.0[category_index(category)];
        *c = c.saturating_add(1);
    }

    /// The counter for `category`.
    pub fn count(&self, category: VenueCategory) -> u32 {
        u32::from(self.0[category_index(category)])
    }

    /// Sets the counter for `category` (test/builder convenience).
    pub fn set(&mut self, category: VenueCategory, count: u16) {
        self.0[category_index(category)] = count;
    }
}

lbsn_obs::mem_footprint_inline!(CategoryCounts);

/// A string slice handle into a shared arena chunk.
///
/// Cheap to clone (bumps the chunk's refcount); dereferences to `&str`.
/// Charges zero [`MemFootprint`] heap bytes — chunk storage is
/// accounted once by the owning [`StrArena`], which feeds the server's
/// `side_maps_bytes` gauge.
#[derive(Debug, Clone)]
pub struct ArenaStr {
    chunk: Arc<str>,
    off: u32,
    len: u32,
}

impl ArenaStr {
    /// A handle covering `[off, off+len)` of `chunk`.
    pub fn slice(chunk: &Arc<str>, off: u32, len: u32) -> Self {
        debug_assert!((off + len) as usize <= chunk.len());
        ArenaStr {
            chunk: Arc::clone(chunk),
            off,
            len,
        }
    }

    /// The referenced text.
    pub fn as_str(&self) -> &str {
        &self.chunk[self.off as usize..(self.off + self.len) as usize]
    }
}

impl Deref for ArenaStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for ArenaStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Default for ArenaStr {
    fn default() -> Self {
        ArenaStr {
            chunk: Arc::from(""),
            off: 0,
            len: 0,
        }
    }
}

impl Serialize for ArenaStr {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for ArenaStr {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        // A deserialized handle gets its own solo chunk — arenas are a
        // registration-time optimization, not a wire concept.
        let s = String::deserialize(value)?;
        let len = s.len() as u32;
        Ok(ArenaStr {
            chunk: Arc::from(s.as_str()),
            off: 0,
            len,
        })
    }
}

impl MemFootprint for ArenaStr {
    fn heap_bytes(&self) -> usize {
        // Chunk bytes are shared and accounted by the owning StrArena;
        // double-charging them per handle would overstate the world by
        // the sharing factor.
        let ArenaStr {
            chunk: _,
            off: _,
            len: _,
        } = self;
        0
    }
}

/// Estimated allocation overhead of one `Arc<str>` chunk (strong +
/// weak refcounts).
const ARC_HEADER_BYTES: usize = 16;

/// A shard-local string arena.
///
/// Two modes of use:
/// * **bulk**: [`StrArena::stage`] many strings, then one
///   [`StrArena::seal`] turns the whole batch into a single shared
///   chunk and hands back an `Arc` to slice handles out of;
/// * **incremental**: [`StrArena::intern`] allocates a one-string chunk
///   per call (still one allocation where the old layout took two).
#[derive(Debug, Default)]
pub struct StrArena {
    chunks: Vec<Arc<str>>,
    staging: String,
    sealed_bytes: usize,
}

impl StrArena {
    /// An empty arena.
    pub fn new() -> Self {
        StrArena::default()
    }

    /// Appends `text` to the staging buffer; returns `(off, len)` for
    /// slicing out of the chunk the next [`StrArena::seal`] produces.
    pub fn stage(&mut self, text: &str) -> (u32, u32) {
        let off = self.staging.len() as u32;
        self.staging.push_str(text);
        (off, text.len() as u32)
    }

    /// Seals the staged text into one shared chunk and returns it.
    /// Offsets from [`StrArena::stage`] since the previous seal index
    /// into this chunk.
    pub fn seal(&mut self) -> Arc<str> {
        let chunk: Arc<str> = Arc::from(self.staging.as_str());
        self.staging.clear();
        self.sealed_bytes += chunk.len() + ARC_HEADER_BYTES;
        self.chunks.push(Arc::clone(&chunk));
        chunk
    }

    /// Interns a single string as its own chunk.
    pub fn intern(&mut self, text: &str) -> ArenaStr {
        debug_assert!(
            self.staging.is_empty(),
            "intern between stage and seal would corrupt staged offsets"
        );
        let chunk: Arc<str> = Arc::from(text);
        self.sealed_bytes += chunk.len() + ARC_HEADER_BYTES;
        self.chunks.push(Arc::clone(&chunk));
        ArenaStr {
            chunk,
            off: 0,
            len: text.len() as u32,
        }
    }

    /// Number of sealed chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Estimated owned bytes: sealed chunk text (plus per-chunk `Arc`
    /// headers), the chunk registry, and any staging buffer.
    pub fn bytes(&self) -> usize {
        let StrArena {
            chunks,
            staging,
            sealed_bytes,
        } = self;
        sealed_bytes + chunks.capacity() * std::mem::size_of::<Arc<str>>() + staging.heap_bytes()
    }

    /// Drops excess registry/staging capacity (post-bulk-load
    /// compaction).
    pub fn shrink_to_fit(&mut self) {
        self.chunks.shrink_to_fit();
        self.staging.shrink_to_fit();
    }
}

impl MemFootprint for StrArena {
    fn heap_bytes(&self) -> usize {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{UserId, VenueId};

    #[test]
    fn idset_insert_remove_contains() {
        let mut s: IdSet<UserId> = IdSet::new();
        assert!(s.insert(UserId(5)));
        assert!(s.insert(UserId(1)));
        assert!(!s.insert(UserId(5)), "duplicate insert reports false");
        assert!(s.contains(&UserId(1)));
        assert!(!s.contains(&UserId(2)));
        assert_eq!(s.len(), 2);
        let ordered: Vec<u64> = s.iter().map(|u| u.value()).collect();
        assert_eq!(ordered, vec![1, 5], "iteration is sorted");
        assert!(s.remove(&UserId(1)));
        assert!(!s.remove(&UserId(1)));
        assert_eq!(s.len(), 1);
        let drained: Vec<UserId> = s.drain().collect();
        assert_eq!(drained, vec![UserId(5)]);
        assert!(s.is_empty());
    }

    #[test]
    fn idset_from_vec_sorts_and_dedups() {
        let s = IdSet::from_vec(vec![VenueId(3), VenueId(1), VenueId(3), VenueId(2)]);
        assert_eq!(s.as_slice(), &[VenueId(1), VenueId(2), VenueId(3)]);
    }

    #[test]
    fn badgeset_tracks_all_kinds() {
        let mut b = BadgeSet::new();
        assert!(b.is_empty());
        for (i, badge) in Badge::ALL.into_iter().enumerate() {
            assert!(!b.contains(&badge));
            assert!(b.insert(badge));
            assert!(!b.insert(badge), "re-award reports false");
            assert_eq!(b.len(), i + 1);
        }
        let listed: Vec<Badge> = b.iter().collect();
        assert_eq!(listed, Badge::ALL.to_vec());
    }

    #[test]
    fn category_counts_bump_and_read() {
        let mut c = CategoryCounts::new();
        assert_eq!(c.count(VenueCategory::Coffee), 0);
        c.bump(VenueCategory::Coffee);
        c.bump(VenueCategory::Coffee);
        c.bump(VenueCategory::Gym);
        assert_eq!(c.count(VenueCategory::Coffee), 2);
        assert_eq!(c.count(VenueCategory::Gym), 1);
        assert_eq!(c.count(VenueCategory::Bar), 0);
        c.set(VenueCategory::Airport, 5);
        assert_eq!(c.count(VenueCategory::Airport), 5);
    }

    #[test]
    fn arena_bulk_seal_shares_one_chunk() {
        let mut arena = StrArena::new();
        let spans: Vec<(u32, u32)> = ["Old Town Plaza", "123 Central Ave", "Tiny Bar"]
            .iter()
            .map(|t| arena.stage(t))
            .collect();
        let chunk = arena.seal();
        let handles: Vec<ArenaStr> = spans
            .iter()
            .map(|(off, len)| ArenaStr::slice(&chunk, *off, *len))
            .collect();
        assert_eq!(&*handles[0], "Old Town Plaza");
        assert_eq!(&*handles[1], "123 Central Ave");
        assert_eq!(&*handles[2], "Tiny Bar");
        assert_eq!(arena.chunk_count(), 1, "one allocation for the batch");
        assert!(arena.bytes() >= chunk.len());
    }

    #[test]
    fn arena_intern_round_trips() {
        let mut arena = StrArena::new();
        let h = arena.intern("Starbucks Reserve");
        assert_eq!(&*h, "Starbucks Reserve");
        assert_eq!(h.heap_bytes(), 0, "handles charge nothing");
        assert!(arena.bytes() >= "Starbucks Reserve".len());
    }

    #[test]
    fn arena_str_serde_round_trip() {
        let mut arena = StrArena::new();
        let h = arena.intern("Pioneer Cafe");
        let json = serde_json::to_string(&h).unwrap();
        assert_eq!(json, "\"Pioneer Cafe\"");
        let back: ArenaStr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
