//! Golden equivalence test for the check-in admission pipeline.
//!
//! Replays a scripted multi-archetype workload — honest regulars, a
//! mayorship battle, a GPS spoofer who escalates to account branding, a
//! teleporter, a rapid-fire burst, a cooldown abuser, a venue explorer
//! and a loyalty grinder — and digests every [`CheckinOutcome`] plus the
//! final server state into a JSON fixture.
//!
//! The committed fixture (`tests/fixtures/golden_checkins.json`) was
//! captured from the pre-pipeline engine; any refactor of the admission
//! path must reproduce it bit-for-bit under the default policy.
//! Regenerate deliberately with:
//!
//! ```text
//! LBSN_GOLDEN_WRITE=1 cargo test -p lbsn-server --test golden
//! ```

use lbsn_geo::{destination, GeoPoint};
use lbsn_server::{
    CheckinOutcome, CheckinRequest, CheckinSource, LbsnServer, ServerConfig, Special, SpecialKind,
    UserId, UserSpec, VenueCategory, VenueId, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};
use serde::{Deserialize, Serialize};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_checkins.json"
);

/// One scripted check-in: who, where, the reported fix, and how far the
/// shared clock advances *before* submission.
struct Op {
    advance_secs: u64,
    user: UserId,
    venue: VenueId,
    reported: GeoPoint,
}

/// Digest of one [`CheckinOutcome`], stable across engine refactors.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct OutcomeRow {
    seq: usize,
    user: u64,
    venue: u64,
    at: u64,
    points: u64,
    flags: Vec<String>,
    badges: Vec<String>,
    is_mayor: bool,
    became_mayor: bool,
    special: Option<String>,
}

impl OutcomeRow {
    fn from_outcome(seq: usize, o: &CheckinOutcome) -> Self {
        OutcomeRow {
            seq,
            user: o.user.value(),
            venue: o.venue.value(),
            at: o.at.secs(),
            points: o.points,
            flags: o.flags.iter().map(|f| format!("{f:?}")).collect(),
            badges: o.new_badges.iter().map(|b| format!("{b:?}")).collect(),
            is_mayor: o.is_mayor,
            became_mayor: o.became_mayor,
            special: o.special_unlocked.clone(),
        }
    }
}

/// Digest of one user's final state.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct UserRow {
    id: u64,
    points: u64,
    total_checkins: u64,
    valid_checkins: u64,
    flagged_checkins: u64,
    branded: bool,
    badges: usize,
    mayorships: Vec<u64>,
}

/// Digest of one venue's final state.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct VenueRow {
    id: u64,
    checkins_here: u64,
    unique_visitors: usize,
    recent_visitors: Vec<u64>,
    mayor: Option<u64>,
}

/// Everything the fixture pins down.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Golden {
    outcomes: Vec<OutcomeRow>,
    users: Vec<UserRow>,
    venues: Vec<VenueRow>,
    leaderboard: Vec<Vec<u64>>,
}

fn base() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// Builds the world: 12 venues (5 coffee for FreshBrew, a gym, three
/// specials) and 8 archetype users, then the full scripted op list.
fn build_script(server: &LbsnServer) -> Vec<Op> {
    let b = base();
    // Venue layout: a ring around the base, far enough apart to be
    // distinct but close enough for same-day hops at plausible speed.
    let mut venues: Vec<(VenueId, GeoPoint)> = Vec::new();
    let specs: Vec<VenueSpec> = vec![
        VenueSpec::new("Cafe Uno", destination(b, 0.0, 200.0))
            .category(VenueCategory::Coffee)
            .special(Special {
                description: "Free espresso for the mayor!".into(),
                kind: SpecialKind::MayorOnly,
            }),
        VenueSpec::new("Cafe Dos", destination(b, 30.0, 700.0)).category(VenueCategory::Coffee),
        VenueSpec::new("Cafe Tres", destination(b, 60.0, 1_200.0)).category(VenueCategory::Coffee),
        VenueSpec::new("Cafe Cuatro", destination(b, 90.0, 1_700.0))
            .category(VenueCategory::Coffee),
        VenueSpec::new("Cafe Cinco", destination(b, 120.0, 2_200.0))
            .category(VenueCategory::Coffee),
        VenueSpec::new("Iron Temple", destination(b, 150.0, 900.0)).category(VenueCategory::Gym),
        VenueSpec::new("Sub Shop", destination(b, 180.0, 400.0))
            .category(VenueCategory::Restaurant)
            .special(Special {
                description: "Free sub after 3 visits".into(),
                kind: SpecialKind::Loyalty { visits: 3 },
            }),
        VenueSpec::new("Dive Bar", destination(b, 210.0, 1_100.0))
            .category(VenueCategory::Bar)
            .special(Special {
                description: "Sticker with every check-in".into(),
                kind: SpecialKind::EveryCheckin,
            }),
        VenueSpec::new("Old Town Plaza", destination(b, 240.0, 1_500.0))
            .category(VenueCategory::Landmark),
        VenueSpec::new("Sunport", destination(b, 270.0, 3_000.0)).category(VenueCategory::Airport),
        VenueSpec::new("Book Nook", destination(b, 300.0, 600.0)).category(VenueCategory::Shop),
        VenueSpec::new("Rio Grande Park", destination(b, 330.0, 1_900.0))
            .category(VenueCategory::Park),
    ];
    for spec in specs {
        let loc = spec.location;
        venues.push((server.register_venue(spec), loc));
    }
    let at = |v: usize| venues[v]; // 0-based index into the ring

    let regular = server.register_user(UserSpec::named("regular"));
    let contender = server.register_user(UserSpec::named("contender"));
    let spoofer = server.register_user(UserSpec::named("spoofer"));
    let speedster = server.register_user(UserSpec::anonymous());
    let rapid = server.register_user(UserSpec::anonymous());
    let cooldown = server.register_user(UserSpec::anonymous());
    let explorer = server.register_user(UserSpec::named("explorer"));
    let loyal = server.register_user(UserSpec::anonymous());

    let mut ops: Vec<Op> = Vec::new();
    let mut op = |advance_secs: u64, user: UserId, venue: usize, reported: GeoPoint| {
        ops.push(Op {
            advance_secs,
            user,
            venue: at(venue).0,
            reported,
        });
    };

    // Phase 1 — the regular takes Cafe Uno and builds a streak (Bender
    // needs 4 consecutive days; Local needs 3 visits in a week).
    for day in 0..5u64 {
        op(
            if day == 0 { 3_600 } else { 86_400 - 7_200 },
            regular,
            0,
            destination(at(0).1, 45.0, 20.0),
        );
        // Same day, a second venue for variety (points, first visits).
        op(
            7_200,
            regular,
            day as usize % 3 + 1,
            at(day as usize % 3 + 1).1,
        );
    }

    // Phase 2 — the contender challenges Cafe Uno daily; on day counts
    // alone they eventually out-visit the regular's window.
    for day in 0..7u64 {
        op(
            if day == 0 { 3_600 } else { 86_400 },
            contender,
            0,
            destination(at(0).1, 90.0, 15.0),
        );
    }

    // Phase 3 — the spoofer reports fixes kilometres away until the
    // account brands (default threshold: 10 flagged check-ins), then
    // keeps trying (AccountFlagged short-circuit) — mayorship strip and
    // post-brand rejection are both pinned here.
    op(3_600, spoofer, 8, at(8).1); // one honest mayorship first
    for i in 0..11u64 {
        op(
            7_200,
            spoofer,
            (i % 3) as usize,
            destination(b, 90.0, 8_000.0 + 500.0 * i as f64),
        );
    }
    op(7_200, spoofer, 8, at(8).1); // branded: even honest fix rejected

    // Phase 4 — the speedster teleports between the two far corners of
    // the ring fast enough to trip the 40 m/s bound.
    op(3_600, speedster, 9, at(9).1);
    op(30, speedster, 4, at(4).1); // ~5 km in 30 s: superhuman
    op(30, speedster, 9, at(9).1);
    op(5_400, speedster, 4, at(4).1); // slow hop: clean

    // Phase 5 — rapid-fire: four check-ins inside a tight square at
    // sub-minute intervals; the fourth draws the flag.
    op(3_600, rapid, 0, destination(at(0).1, 0.0, 10.0));
    op(45, rapid, 1, destination(at(0).1, 90.0, 40.0));
    op(45, rapid, 2, destination(at(0).1, 180.0, 40.0));
    op(45, rapid, 3, destination(at(0).1, 270.0, 40.0));

    // Phase 6 — cooldown abuse: re-checking the same venue inside the
    // hour, then cleanly after it.
    op(3_600, cooldown, 6, at(6).1);
    op(900, cooldown, 6, at(6).1); // 15 min: TooFrequent
    op(2_700, cooldown, 6, at(6).1); // +45 min (60 total): clean again

    // Phase 7 — the explorer sweeps every venue (first-visit bonuses,
    // FreshBrew on the fifth coffee, Adventurer on the tenth venue).
    for v in 0..12usize {
        op(5_400, explorer, v, at(v).1);
    }

    // Phase 8 — the loyal user grinds the Sub Shop to its loyalty
    // special, spaced past the cooldown.
    for _ in 0..4 {
        op(4_000, loyal, 6, at(6).1);
    }

    // Phase 9 — interleaved epilogue: everyone takes one more pass so
    // late-stage state (mayor retention, badge thresholds, specials)
    // lands in the digest.
    for (i, u) in [
        regular, contender, speedster, rapid, cooldown, explorer, loyal,
    ]
    .into_iter()
    .enumerate()
    {
        op(4_000, u, (i * 2) % 12, at((i * 2) % 12).1);
    }

    ops
}

/// Runs the scripted workload against a fresh server and digests it.
fn run_workload(shards: usize) -> Golden {
    run_workload_grouped(shards, 1, false)
}

/// Runs the script with clock advances hoisted to batch boundaries:
/// ops are grouped into chunks of `batch_size`, the clock advances by
/// the chunk's summed `advance_secs` *before* the chunk, and the chunk
/// is admitted either through [`LbsnServer::check_in_batch`]
/// (`batched`) or per-op in the same order (`!batched`). With
/// `batch_size == 1` both drivers see exactly the committed fixture's
/// clock schedule, so the batch path must reproduce the fixture
/// bit-for-bit; with larger chunks the two drivers must agree with
/// each other under the identical (hoisted) schedule.
fn run_workload_grouped(shards: usize, batch_size: usize, batched: bool) -> Golden {
    let server = LbsnServer::new(
        SimClock::new(),
        ServerConfig {
            shards,
            ..ServerConfig::default()
        },
    );
    let ops = build_script(&server);
    let mut outcomes = Vec::new();
    let mut seq = 0usize;
    for chunk in ops.chunks(batch_size) {
        let advance: u64 = chunk.iter().map(|o| o.advance_secs).sum();
        server.clock().advance(Duration::secs(advance));
        let reqs: Vec<CheckinRequest> = chunk
            .iter()
            .map(|op| CheckinRequest {
                user: op.user,
                venue: op.venue,
                reported_location: op.reported,
                source: CheckinSource::MobileApp,
            })
            .collect();
        if batched {
            for res in server.check_in_batch(&reqs) {
                let out = res.expect("scripted ids are registered");
                outcomes.push(OutcomeRow::from_outcome(seq, &out));
                seq += 1;
            }
        } else {
            for req in &reqs {
                let out = server.check_in(req).expect("scripted ids are registered");
                outcomes.push(OutcomeRow::from_outcome(seq, &out));
                seq += 1;
            }
        }
    }

    let mut users = Vec::new();
    for id in 1..=server.user_count() {
        let u = server.user(UserId(id)).unwrap();
        let mut mayorships: Vec<u64> = u.mayorships.iter().map(|v| v.value()).collect();
        mayorships.sort_unstable();
        users.push(UserRow {
            id,
            points: u.points,
            total_checkins: u.total_checkins,
            valid_checkins: u.valid_checkins,
            flagged_checkins: u.flagged_checkins,
            branded: u.branded_cheater,
            badges: u.badges.len(),
            mayorships,
        });
    }
    let mut venues = Vec::new();
    for id in 1..=server.venue_count() {
        let v = server.venue(VenueId(id)).unwrap();
        venues.push(VenueRow {
            id,
            checkins_here: v.checkins_here,
            unique_visitors: v.unique_visitors().len(),
            recent_visitors: v.recent_visitors().iter().map(|u| u.value()).collect(),
            mayor: v.mayor.map(|u| u.value()),
        });
    }
    let leaderboard = server
        .leaderboard(10)
        .into_iter()
        .map(|(u, p)| vec![u.value(), p])
        .collect();
    Golden {
        outcomes,
        users,
        venues,
        leaderboard,
    }
}

#[test]
fn batch_of_one_matches_committed_fixture() {
    // check_in_batch with singleton batches sees the committed
    // fixture's exact clock schedule, so it must reproduce the fixture
    // — decisions, final state, leaderboard — bit-for-bit.
    let got = run_workload_grouped(16, 1, true);
    let fixture = std::fs::read_to_string(FIXTURE)
        .expect("committed fixture exists (regenerate with LBSN_GOLDEN_WRITE=1)");
    let want: Golden = serde_json::from_str(&fixture).expect("fixture parses");
    assert_eq!(got, want, "batched singleton replay drifted from fixture");
}

#[test]
fn batched_replay_matches_per_op_across_batch_sizes() {
    // Under an identical (hoisted) clock schedule, draining the script
    // in batches of any size must decide every op exactly like per-op
    // admission in the same order — including the mayorship battle,
    // the branding escalation mid-batch, and the post-brand strips.
    for batch_size in [2, 4, 7, 16, 64, 1000] {
        let per_op = run_workload_grouped(16, batch_size, false);
        let batched = run_workload_grouped(16, batch_size, true);
        assert_eq!(
            batched, per_op,
            "batch_size={batch_size} drifted from per-op admission"
        );
    }
    // Batch equivalence must also hold on degenerate shard layouts.
    for shards in [1, 4] {
        assert_eq!(
            run_workload_grouped(shards, 8, true),
            run_workload_grouped(shards, 8, false),
            "shards={shards} batched replay drifted"
        );
    }
}

#[test]
fn workload_is_deterministic_across_shard_counts() {
    let canonical = run_workload(16);
    for shards in [1, 4] {
        assert_eq!(
            run_workload(shards),
            canonical,
            "shards={shards} must not change outcomes"
        );
    }
}

#[test]
fn default_policy_matches_committed_fixture() {
    let got = run_workload(16);
    // Sanity: the script must actually exercise every flag type.
    let all_flags: Vec<String> = got
        .outcomes
        .iter()
        .flat_map(|r| r.flags.iter().cloned())
        .collect();
    for f in [
        "GpsMismatch",
        "TooFrequent",
        "SuperhumanSpeed",
        "RapidFire",
        "AccountFlagged",
    ] {
        assert!(
            all_flags.iter().any(|x| x == f),
            "script never raised {f}; fixture would be incomplete"
        );
    }
    assert!(
        got.users.iter().any(|u| u.branded),
        "script must brand the spoofer"
    );
    assert!(
        got.outcomes.iter().any(|r| r.special.is_some()),
        "script must unlock a special"
    );

    if std::env::var("LBSN_GOLDEN_WRITE").is_ok() {
        let json = serde_json::to_string_pretty(&got).expect("serialize fixture");
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
            .expect("fixtures dir");
        std::fs::write(FIXTURE, json).expect("write fixture");
        panic!("fixture regenerated — rerun without LBSN_GOLDEN_WRITE to verify");
    }

    let fixture = std::fs::read_to_string(FIXTURE)
        .expect("committed fixture exists (regenerate with LBSN_GOLDEN_WRITE=1)");
    let want: Golden = serde_json::from_str(&fixture).expect("fixture parses");
    assert_eq!(
        got.outcomes.len(),
        want.outcomes.len(),
        "outcome count drifted"
    );
    for (g, w) in got.outcomes.iter().zip(want.outcomes.iter()) {
        assert_eq!(g, w, "outcome row {} drifted", w.seq);
    }
    assert_eq!(got, want, "final-state digest drifted");
}

#[test]
fn packed_history_reproduces_fixture_verdicts() {
    // The packed per-user check-in history is the server's only record
    // of past detector decisions. Decoding it back must reproduce the
    // committed fixture's verdicts exactly — same venues, timestamps,
    // reward decisions, and flag sets, per user, in admission order —
    // or the compact encoding has silently changed behaviour.
    let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
    let ops = build_script(&server);
    for op in &ops {
        server.clock().advance(Duration::secs(op.advance_secs));
        server
            .check_in(&CheckinRequest {
                user: op.user,
                venue: op.venue,
                reported_location: op.reported,
                source: CheckinSource::MobileApp,
            })
            .expect("scripted ids are registered");
    }

    let fixture = std::fs::read_to_string(FIXTURE)
        .expect("committed fixture exists (regenerate with LBSN_GOLDEN_WRITE=1)");
    let want: Golden = serde_json::from_str(&fixture).expect("fixture parses");
    for id in 1..=server.user_count() {
        let expected: Vec<&OutcomeRow> = want.outcomes.iter().filter(|o| o.user == id).collect();
        let user = server.user(UserId(id)).unwrap();
        // Forward iteration is oldest-first — admission order.
        let decoded: Vec<_> = user.history.iter().map(|p| p.to_record()).collect();
        assert_eq!(decoded.len(), expected.len(), "user {id} history length");
        for (r, o) in decoded.iter().zip(&expected) {
            assert_eq!(r.venue.value(), o.venue, "user {id} venue at seq {}", o.seq);
            assert_eq!(r.at.secs(), o.at, "user {id} timestamp at seq {}", o.seq);
            let mut got_flags: Vec<String> = r.flags.iter().map(|f| format!("{f:?}")).collect();
            let mut want_flags = o.flags.clone();
            got_flags.sort();
            want_flags.sort();
            assert_eq!(
                got_flags, want_flags,
                "user {id} verdict drifted at seq {}",
                o.seq
            );
            assert_eq!(
                r.rewarded,
                o.flags.is_empty(),
                "user {id} reward bit drifted at seq {}",
                o.seq
            );
        }
    }
}
