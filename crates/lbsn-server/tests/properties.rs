//! Property-based tests: invariants of the check-in pipeline under
//! arbitrary interleavings of users, venues, locations, and time gaps.

use std::sync::Arc;

use lbsn_geo::{destination, GeoPoint};
use lbsn_server::{
    CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserId, UserSpec, VenueId, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};
use proptest::prelude::*;

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// One scripted action against the server.
#[derive(Debug, Clone)]
struct Step {
    user: u64,
    venue: u64,
    // Where the reported fix lands relative to the venue: metres away.
    fix_offset_m: f64,
    fix_bearing: f64,
    advance_secs: u64,
}

fn arb_step(users: u64, venues: u64) -> impl Strategy<Value = Step> {
    (
        1..=users,
        1..=venues,
        prop_oneof![Just(0.0), 10.0..20_000.0f64],
        0.0..360.0f64,
        prop_oneof![
            Just(0u64),
            1u64..120,          // rapid-fire territory
            1_800u64..10_800,   // calm spacing
            86_400u64..200_000, // day+ gaps
        ],
    )
        .prop_map(
            |(user, venue, fix_offset_m, fix_bearing, advance_secs)| Step {
                user,
                venue,
                fix_offset_m,
                fix_bearing,
                advance_secs,
            },
        )
}

fn build_world(users: u64, venues: u64) -> Arc<LbsnServer> {
    let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
    for i in 0..venues {
        // Venues scattered within ~30 km so steps can be both near and far.
        let loc = destination(abq(), (i * 67 % 360) as f64, 200.0 + 1_500.0 * i as f64);
        server.register_venue(VenueSpec::new(format!("V{i}"), loc));
    }
    for _ in 0..users {
        server.register_user(UserSpec::anonymous());
    }
    server
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Accounting invariants hold after any action sequence.
    #[test]
    fn pipeline_accounting_invariants(steps in prop::collection::vec(arb_step(4, 6), 1..80)) {
        let server = build_world(4, 6);
        let mut submitted = 0u64;
        for s in &steps {
            server.clock().advance(Duration::secs(s.advance_secs));
            let venue_loc = server.venue(VenueId(s.venue)).unwrap().location;
            let fix = if s.fix_offset_m == 0.0 {
                venue_loc
            } else {
                destination(venue_loc, s.fix_bearing, s.fix_offset_m)
            };
            let out = server
                .check_in(&CheckinRequest {
                    user: UserId(s.user),
                    venue: VenueId(s.venue),
                    reported_location: fix,
                    source: CheckinSource::MobileApp,
                })
                .unwrap();
            submitted += 1;
            // Outcome-level invariants.
            prop_assert_eq!(out.rewarded(), out.flags.is_empty());
            if !out.rewarded() {
                prop_assert_eq!(out.points, 0);
                prop_assert!(out.new_badges.is_empty());
                prop_assert!(!out.became_mayor);
            }
        }

        // Per-user invariants.
        let mut total_all = 0u64;
        let mut points_all = 0u64;
        for uid in 1..=4u64 {
            server.with_user(UserId(uid), |u| {
                total_all += u.total_checkins;
                points_all += u.points;
                assert_eq!(u.total_checkins, u.valid_checkins + u.flagged_checkins);
                assert_eq!(u.history.len() as u64, u.total_checkins);
                assert_eq!(
                    u.history.iter().filter(|r| r.rewarded).count() as u64,
                    u.valid_checkins
                );
                // History is time-ordered.
                let records: Vec<_> = u.history.iter().collect();
                for w in records.windows(2) {
                    assert!(w[0].at <= w[1].at);
                }
                // Distinct-venue tracking matches history.
                let mut distinct: Vec<_> =
                    u.history.iter().filter(|r| r.rewarded).map(|r| r.venue).collect();
                distinct.sort_unstable();
                distinct.dedup();
                assert_eq!(distinct, u.visited_venues.as_slice());
            }).unwrap();
        }
        prop_assert_eq!(total_all, submitted);

        // Per-venue invariants.
        let mut venue_valid = 0u64;
        for vid in 1..=6u64 {
            server.with_venue(VenueId(vid), |v| {
                venue_valid += v.checkins_here;
                assert!(v.recent_visitors().len() <= 10);
                // Recent list entries are unique.
                let set: std::collections::HashSet<_> = v.recent_visitors().iter().collect();
                assert_eq!(set.len(), v.recent_visitors().len());
                // Everyone on the recent list is a unique visitor.
                for u in v.recent_visitors() {
                    assert!(v.unique_visitors().contains(u));
                }
                assert!(v.unique_visitors().len() as u64 <= v.checkins_here);
            }).unwrap();
        }
        // Venue valid totals equal user valid totals.
        let user_valid: u64 = (1..=4u64)
            .map(|uid| server.with_user(UserId(uid), |u| u.valid_checkins).unwrap())
            .sum();
        prop_assert_eq!(venue_valid, user_valid);
        let _ = points_all;
    }

    /// Mayorship invariants: at most one mayor, and the mayor actually
    /// visited; a branded cheater never holds a mayorship.
    #[test]
    fn mayorship_invariants(steps in prop::collection::vec(arb_step(3, 4), 1..60)) {
        let server = build_world(3, 4);
        for s in &steps {
            server.clock().advance(Duration::secs(s.advance_secs.max(1)));
            let venue_loc = server.venue(VenueId(s.venue)).unwrap().location;
            let fix = if s.fix_offset_m == 0.0 {
                venue_loc
            } else {
                destination(venue_loc, s.fix_bearing, s.fix_offset_m)
            };
            let _ = server.check_in(&CheckinRequest {
                user: UserId(s.user),
                venue: VenueId(s.venue),
                reported_location: fix,
                source: CheckinSource::MobileApp,
            });
        }
        // Cross-check mayors both ways.
        for vid in 1..=4u64 {
            let mayor = server.venue(VenueId(vid)).unwrap().mayor;
            if let Some(m) = mayor {
                server.with_user(m, |u| {
                    assert!(u.mayorships.contains(&VenueId(vid)));
                    assert!(!u.branded_cheater, "branded user holds a mayorship");
                    assert!(
                        u.history.iter().any(|r| r.rewarded && r.venue == VenueId(vid)),
                        "mayor never validly visited"
                    );
                }).unwrap();
            }
        }
        for uid in 1..=3u64 {
            server.with_user(UserId(uid), |u| {
                for v in &u.mayorships {
                    assert_eq!(
                        server.venue(*v).unwrap().mayor,
                        Some(UserId(uid)),
                        "mayorship set out of sync"
                    );
                }
            }).unwrap();
        }
    }

    /// Badges are monotone (never lost) and unique; points never
    /// decrease.
    #[test]
    fn rewards_are_monotone(steps in prop::collection::vec(arb_step(2, 5), 1..60)) {
        let server = build_world(2, 5);
        let mut last_points = [0u64; 3];
        let mut last_badges = [0usize; 3];
        for s in &steps {
            server.clock().advance(Duration::secs(s.advance_secs));
            let venue_loc = server.venue(VenueId(s.venue)).unwrap().location;
            let _ = server.check_in(&CheckinRequest {
                user: UserId(s.user),
                venue: VenueId(s.venue),
                reported_location: destination(venue_loc, s.fix_bearing, s.fix_offset_m),
                source: CheckinSource::MobileApp,
            });
            let idx = s.user as usize;
            let (points, badges) = server
                .with_user(UserId(s.user), |u| (u.points, u.badges.len()))
                .unwrap();
            prop_assert!(points >= last_points[idx]);
            prop_assert!(badges >= last_badges[idx]);
            last_points[idx] = points;
            last_badges[idx] = badges;
        }
    }
}

/// An arbitrary check-in record for the packed-history round trip:
/// venue ids across the full range, timestamps in any order (the delta
/// encoding is signed), coordinates both on and off the 1e-7-degree
/// quantization grid, every flag subset, both sources.
fn arb_record() -> impl Strategy<Value = lbsn_server::CheckinRecord> {
    (
        1u64..=5_600_000,
        0u64..=4_000_000_000,
        (-90i32 * 10_000_000..=90 * 10_000_000).prop_map(|q| q as f64 / 1e7),
        (-180i32 * 10_000_000..=180 * 10_000_000).prop_map(|q| q as f64 / 1e7),
        prop_oneof![Just(0.0f64), -4e-9..4e-9f64], // nudge off the grid
        any::<bool>(),
        0u8..32,
    )
        .prop_map(
            |(venue, at, lat, lon, jitter, api, flag_bits): (u64, u64, f64, f64, f64, bool, u8)| {
                let flags = lbsn_server::FlagSet::from_bits(flag_bits).to_vec();
                lbsn_server::CheckinRecord {
                    venue: VenueId(venue),
                    at: lbsn_sim::Timestamp(at),
                    location: GeoPoint::new(
                        (lat + jitter).clamp(-90.0, 90.0),
                        (lon + jitter).clamp(-180.0, 180.0),
                    )
                    .unwrap(),
                    source: if api {
                        CheckinSource::ServerApi
                    } else {
                        CheckinSource::MobileApp
                    },
                    rewarded: flags.is_empty(),
                    flags,
                }
            },
        )
}

proptest! {
    /// The packed history encodes and decodes arbitrary record streams
    /// identically: forward iteration, backward iteration, and random
    /// O(1) offset decodes all reproduce every field bit-for-bit —
    /// including flag sets, both entry sources, and coordinates that
    /// don't sit on the quantization grid.
    #[test]
    fn packed_history_round_trips(records in prop::collection::vec(arb_record(), 0..80)) {
        let mut h = lbsn_server::PackedHistory::new();
        let mut offsets = Vec::new();
        for r in &records {
            offsets.push(h.push(r));
        }
        prop_assert_eq!(h.len(), records.len());

        // Forward (oldest-first) and backward (newest-first) scans.
        let fwd: Vec<_> = h.iter().map(|p| p.to_record()).collect();
        prop_assert_eq!(&fwd, &records);
        let back: Vec<_> = h.iter().rev().map(|p| p.to_record()).collect();
        let mut rev = records.clone();
        rev.reverse();
        prop_assert_eq!(&back, &rev);

        // Out-of-order point decodes via the stored offsets.
        for (i, &off) in offsets.iter().enumerate().rev() {
            let got = h.decode_at(off, records[i].at).to_record();
            prop_assert_eq!(&got, &records[i]);
        }
    }

    /// Scans bounded by a timestamp window match the naive filter over
    /// the same stream: no record inside the window is skipped, none
    /// outside it leaks in.
    #[test]
    fn packed_history_window_scans_match_naive(
        records in prop::collection::vec(arb_record(), 1..60),
        cut in 0u64..=4_000_000_000,
    ) {
        let mut h = lbsn_server::PackedHistory::new();
        for r in &records {
            h.push(r);
        }
        let since = lbsn_sim::Timestamp(cut);
        // Newest-first, the direction the detectors scan in.
        let got: Vec<_> = h
            .iter()
            .rev()
            .map(|p| p.to_record())
            .filter(|r| r.at >= since)
            .collect();
        let mut want: Vec<_> = records.iter().filter(|r| r.at >= since).cloned().collect();
        want.reverse();
        prop_assert_eq!(got, want);
    }
}
