//! The committed default policy file: `policies/default.json`.
//!
//! The whole scenario configuration — detector thresholds and switches,
//! branding threshold, reward point values and rule switches, plus the
//! deployment parameters — serializes to one JSON file, so a bench
//! experiment can sweep admission policies without recompiling. This
//! test pins the committed file to `ServerConfig::default()`: drift in
//! either direction (a default changed in code, or the file edited by
//! hand) fails loudly.
//!
//! Regenerate after an intentional default change with:
//!
//! ```text
//! LBSN_POLICY_WRITE=1 cargo test -p lbsn-server --test policy_file
//! ```

use std::path::PathBuf;

use lbsn_server::{PolicyConfig, ServerConfig};

fn policy_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../policies/default.json")
}

#[test]
fn committed_default_policy_round_trips() {
    let path = policy_path();
    if std::env::var_os("LBSN_POLICY_WRITE").is_some() {
        let json = serde_json::to_string_pretty(&ServerConfig::default()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        panic!("wrote {} — rerun without LBSN_POLICY_WRITE", path.display());
    }
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let parsed: ServerConfig = serde_json::from_str(&raw).unwrap();
    assert_eq!(
        parsed,
        ServerConfig::default(),
        "policies/default.json drifted from ServerConfig::default() — \
         regenerate with LBSN_POLICY_WRITE=1 if the change is intentional"
    );
    // And back: serializing the defaults reproduces the committed file
    // value-for-value.
    let reserialized = serde_json::to_value(&parsed).unwrap();
    let from_default = serde_json::to_value(&ServerConfig::default()).unwrap();
    assert_eq!(reserialized, from_default);
}

#[test]
fn policy_config_alone_round_trips() {
    let policy = PolicyConfig::default();
    let json = serde_json::to_string(&policy).unwrap();
    let back: PolicyConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, policy);
}

#[test]
fn parsed_policy_drives_a_real_server() {
    use lbsn_geo::GeoPoint;
    use lbsn_server::{CheckinRequest, CheckinSource, LbsnServer, UserSpec, VenueSpec};
    use lbsn_sim::SimClock;

    let raw = std::fs::read_to_string(policy_path()).unwrap();
    let config: ServerConfig = serde_json::from_str(&raw).unwrap();
    let server = LbsnServer::new(SimClock::new(), config);
    let here = GeoPoint::new(35.0844, -106.6504).unwrap();
    let venue = server.register_venue(VenueSpec::new("Cafe", here));
    let user = server.register_user(UserSpec::anonymous());
    let out = server
        .check_in(&CheckinRequest {
            user,
            venue,
            reported_location: here,
            source: CheckinSource::MobileApp,
        })
        .unwrap();
    assert!(out.rewarded());
    assert_eq!(out.points, 12, "default point schedule from the file");
}
