//! Batch-vs-sequential equivalence and overload behavior of the
//! request frontend.
//!
//! The contract under test (DESIGN.md §12): draining a mixed op stream
//! in batches of *any* partition produces exactly the decisions per-op
//! admission produces in the same order under the same clock schedule —
//! same outcomes, same accepted/rejected/branded counters — and the
//! frontend's queues conserve submissions exactly
//! (`submitted = decided + shed`) under a multi-thread flood past the
//! high-water mark. Debug builds run every test under the lock-order
//! sentinel, so a rule violation in the batch lock protocol panics.

use std::sync::{mpsc, Arc};
use std::time::Duration as StdDuration;

use lbsn_geo::{destination, GeoPoint};
use lbsn_obs::names::server as obs_names;
use lbsn_obs::Registry;
use lbsn_server::{
    CheckinError, CheckinOutcome, CheckinRequest, CheckinSource, FrontendConfig, LbsnServer,
    RequestFrontend, ServerConfig, SubmitOutcome, UserId, UserSpec, VenueId, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};
use proptest::prelude::*;

const WATCHDOG: StdDuration = StdDuration::from_secs(120);

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// Runs `f` under a watchdog: panics if it does not finish in time
/// (the deadlock signature), otherwise propagates its result.
fn with_watchdog<R: Send + 'static>(name: &str, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let r = f();
        let _ = tx.send(());
        r
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(()) => handle.join().expect("test body panicked"),
        Err(_) => panic!("{name}: watchdog timeout — suspected deadlock"),
    }
}

/// One scripted check-in: ids, where the reported fix lands relative to
/// the venue, and how far the clock advances before this op's batch.
#[derive(Debug, Clone)]
struct Step {
    user: u64,
    venue: u64,
    fix_offset_m: f64,
    fix_bearing: f64,
    advance_secs: u64,
}

fn arb_step(users: u64, venues: u64) -> impl Strategy<Value = Step> {
    (
        1..=users + 1, // one past the registered range: exercises UnknownUser
        1..=venues,
        prop_oneof![Just(0.0), 10.0..20_000.0f64],
        0.0..360.0f64,
        prop_oneof![
            Just(0u64),
            1u64..120,          // rapid-fire territory
            1_800u64..10_800,   // calm spacing
            86_400u64..200_000, // day+ gaps
        ],
    )
        .prop_map(
            |(user, venue, fix_offset_m, fix_bearing, advance_secs)| Step {
                user,
                venue,
                fix_offset_m,
                fix_bearing,
                advance_secs,
            },
        )
}

fn build_world(users: u64, venues: u64, registry: Arc<Registry>) -> Arc<LbsnServer> {
    let server = Arc::new(LbsnServer::with_registry(
        SimClock::new(),
        ServerConfig::default(),
        registry,
    ));
    for i in 0..venues {
        let loc = destination(abq(), (i * 67 % 360) as f64, 200.0 + 1_500.0 * i as f64);
        server.register_venue(VenueSpec::new(format!("V{i}"), loc));
    }
    for _ in 0..users {
        server.register_user(UserSpec::anonymous());
    }
    server
}

fn to_request(server: &LbsnServer, s: &Step) -> CheckinRequest {
    let venue_loc = server
        .venue(VenueId(s.venue))
        .expect("scripted venues are registered")
        .location;
    let fix = if s.fix_offset_m == 0.0 {
        venue_loc
    } else {
        destination(venue_loc, s.fix_bearing, s.fix_offset_m)
    };
    CheckinRequest {
        user: UserId(s.user),
        venue: VenueId(s.venue),
        reported_location: fix,
        source: CheckinSource::MobileApp,
    }
}

/// Splits `steps` into the ragged partition described by `sizes`
/// (cycled until the stream is exhausted).
fn partition<'a>(steps: &'a [Step], sizes: &[usize]) -> Vec<&'a [Step]> {
    let mut chunks = Vec::new();
    let mut rest = steps;
    let mut i = 0;
    while !rest.is_empty() {
        let take = sizes[i % sizes.len()].min(rest.len());
        let (head, tail) = rest.split_at(take);
        chunks.push(head);
        rest = tail;
        i += 1;
    }
    chunks
}

/// Replays `steps` under the hoisted clock schedule (advance by the
/// chunk's sum before each chunk), admitting each chunk either through
/// `check_in_batch` or per-op. Returns every result in order plus the
/// terminal counters from the server's private registry.
fn replay(
    steps: &[Step],
    sizes: &[usize],
    batched: bool,
) -> (Vec<Result<CheckinOutcome, CheckinError>>, [u64; 3]) {
    let registry = Arc::new(Registry::new());
    let server = build_world(4, 6, Arc::clone(&registry));
    let mut results = Vec::with_capacity(steps.len());
    for chunk in partition(steps, sizes) {
        let advance: u64 = chunk.iter().map(|s| s.advance_secs).sum();
        server.clock().advance(Duration::secs(advance));
        let reqs: Vec<CheckinRequest> = chunk.iter().map(|s| to_request(&server, s)).collect();
        if batched {
            results.extend(server.check_in_batch(&reqs));
        } else {
            results.extend(reqs.iter().map(|r| server.check_in(r)));
        }
    }
    let snap = registry.snapshot();
    let counters = [
        snap.counter(obs_names::ACCEPTED),
        snap.counter(obs_names::REJECTED),
        snap.counter(obs_names::BRANDED),
    ];
    (results, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any batching of a mixed op stream — ragged partitions included —
    /// decides exactly like per-op admission under the same clock
    /// schedule: identical per-op outcomes (errors included) and
    /// identical accepted/rejected/branded counters.
    #[test]
    fn any_batching_matches_per_op_admission(
        steps in prop::collection::vec(arb_step(4, 6), 1..80),
        sizes in prop::collection::vec(1..17usize, 1..6),
    ) {
        let (per_op, per_op_counters) = replay(&steps, &sizes, false);
        let (batched, batched_counters) = replay(&steps, &sizes, true);
        prop_assert_eq!(batched.len(), per_op.len());
        for (i, (b, p)) in batched.iter().zip(per_op.iter()).enumerate() {
            prop_assert_eq!(b, p, "op {} diverged under batching", i);
        }
        prop_assert_eq!(batched_counters, per_op_counters,
            "accepted/rejected/branded counters diverged");
    }
}

/// 8 submitter threads flood a small-queue frontend far past its
/// high-water mark, then every ticket is awaited. Exact conservation:
/// every submission is either decided or shed, nothing is lost, nothing
/// is decided twice — and in debug builds the lock-order sentinel
/// watches every batch acquisition.
#[test]
fn flood_conserves_submissions_exactly() {
    with_watchdog("flood_conserves_submissions_exactly", || {
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let registry = Arc::new(Registry::new());
        let server = build_world(64, 16, Arc::clone(&registry));
        let frontend = Arc::new(RequestFrontend::new(
            Arc::clone(&server),
            FrontendConfig {
                workers: 3,
                queue_depth: 32, // tiny: guarantees shedding under 8 threads
                batch_max: 8,
            },
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = Arc::clone(&server);
                let frontend = Arc::clone(&frontend);
                std::thread::spawn(move || {
                    let mut tickets = Vec::new();
                    let mut shed = 0u64;
                    for i in 0..OPS {
                        // Everyone advances the shared virtual clock;
                        // decisions just see *some* monotone time.
                        server.clock().advance(Duration::secs(7));
                        let user = UserId((t * 8 + i % 8 + 1) as u64);
                        let venue = VenueId((i % 16 + 1) as u64);
                        let loc = server.venue(venue).expect("registered venue").location;
                        match frontend.submit(CheckinRequest {
                            user,
                            venue,
                            reported_location: loc,
                            source: CheckinSource::MobileApp,
                        }) {
                            SubmitOutcome::Enqueued(ticket) => tickets.push(ticket),
                            SubmitOutcome::Shed { retry_after } => {
                                assert!(retry_after > StdDuration::ZERO);
                                shed += 1;
                            }
                        }
                    }
                    let decided = tickets.len() as u64;
                    for ticket in tickets {
                        // Registered ids only — every decision is Ok.
                        ticket.wait().expect("registered ids decide cleanly");
                    }
                    (decided, shed)
                })
            })
            .collect();
        let mut enqueued_total = 0u64;
        let mut shed_total = 0u64;
        for h in handles {
            let (decided, shed) = h.join().expect("submitter panicked");
            enqueued_total += decided;
            shed_total += shed;
        }
        frontend.quiesce();
        let snap = registry.snapshot();
        let submitted = snap.counter(obs_names::FRONTEND_SUBMITTED);
        let decided = snap.counter(obs_names::FRONTEND_DECIDED);
        let shed = snap.counter(obs_names::FRONTEND_SHED);
        assert_eq!(submitted, (THREADS * OPS) as u64, "every submit counted");
        assert_eq!(shed, shed_total, "shed counter matches caller view");
        assert_eq!(decided, enqueued_total, "decided counter matches tickets");
        assert_eq!(
            decided + shed,
            submitted,
            "conservation: submitted = decided + shed"
        );
        // The queues really overflowed (otherwise this test proves nothing).
        assert!(shed > 0, "flood never hit the high-water mark");
        // Decided ops all ran the pipeline: terminal decision counters
        // partition the decided count.
        let accepted = snap.counter(obs_names::ACCEPTED);
        let rejected = snap.counter(obs_names::REJECTED);
        assert_eq!(accepted + rejected, decided, "pipeline decisions partition");
        // Sojourn got measured (quantiles resolve once samples exist).
        assert!(
            snap.quantile_ns(obs_names::FRONTEND_SOJOURN, 0.99)
                .is_some(),
            "sojourn latency recorded"
        );
    });
}

/// Shed decisions land in the audit plane under the registered
/// `shed.queue_full` terminal reason, so `obs-audit reason-histogram`
/// counts them like any other negative decision.
#[test]
fn shed_decisions_reach_the_audit_plane() {
    let registry = Arc::new(Registry::new());
    let server = build_world(4, 2, Arc::clone(&registry));
    let frontend = RequestFrontend::new(
        Arc::clone(&server),
        FrontendConfig {
            workers: 1,
            queue_depth: 1,
            batch_max: 1,
        },
    );
    let venue = VenueId(1);
    let loc = server.venue(venue).expect("registered").location;
    let mut shed = 0u64;
    for i in 0..256 {
        let req = CheckinRequest {
            user: UserId(i % 4 + 1),
            venue,
            reported_location: loc,
            source: CheckinSource::MobileApp,
        };
        if frontend.submit(req).is_shed() {
            shed += 1;
        }
    }
    frontend.quiesce();
    frontend.shutdown();
    assert!(shed > 0, "queue of one never overflowed");
    let records = registry.audit().decisions();
    let shed_records = records
        .iter()
        .filter(|r| r.outcome == lbsn_obs::names::reasons::SHED_QUEUE_FULL)
        .count() as u64;
    assert_eq!(shed_records, shed, "one audit record per shed submission");
}
