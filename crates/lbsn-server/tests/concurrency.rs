//! Concurrency invariants of the sharded check-in engine.
//!
//! Every test runs its work on a helper thread pool and is guarded by a
//! watchdog: a deadlock shows up as a test failure (watchdog timeout),
//! not a hung CI job. The stress tests assert *exact* counter totals —
//! under locks there is no "close enough".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier};
use std::time::Duration as StdDuration;

use lbsn_geo::{destination, GeoPoint};
use lbsn_obs::Registry;
use lbsn_server::{
    CheckinRequest, CheckinSource, DetectorConfig, LbsnServer, PolicyConfig, ServerConfig, UserId,
    UserSpec, VenueId, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};

const WATCHDOG: StdDuration = StdDuration::from_secs(120);

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// Runs `f` under a watchdog: panics if it does not finish in time
/// (the deadlock signature), otherwise propagates its result.
fn with_watchdog<R: Send + 'static>(name: &str, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let r = f();
        let _ = tx.send(());
        r
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(()) => handle.join().expect("test body panicked"),
        Err(_) => panic!("{name}: watchdog timeout — suspected deadlock"),
    }
}

fn req(user: UserId, venue: VenueId, loc: GeoPoint) -> CheckinRequest {
    CheckinRequest {
        user,
        venue,
        reported_location: loc,
        source: CheckinSource::MobileApp,
    }
}

/// 8 threads × 10k check-ins with a per-thread honest cohort and one
/// cheater, over venues shared across threads. Asserts *exact*
/// accepted/rejected/branded totals from the metrics registry against
/// the per-thread op counts.
#[test]
fn stress_exact_counter_totals() {
    with_watchdog("stress_exact_counter_totals", || {
        const THREADS: usize = 8;
        const OPS: usize = 10_000;
        // Brand after 10 flags (default); the cheater spends every op
        // flagged: GPS mismatch until branded, account-flagged after.
        let registry = Arc::new(Registry::new());
        let server = Arc::new(LbsnServer::with_registry(
            SimClock::new(),
            ServerConfig::default(),
            Arc::clone(&registry),
        ));
        // Venues shared by all threads, spread over every shard.
        let venues: Vec<(VenueId, GeoPoint)> = (0..32u64)
            .map(|i| {
                let loc = destination(abq(), ((i * 13) % 360) as f64, 80.0 * (i + 1) as f64);
                (
                    server.register_venue(VenueSpec::new(format!("V{i}"), loc)),
                    loc,
                )
            })
            .collect();
        let far = destination(abq(), 45.0, 500_000.0);
        // Per thread: 3 honest users cycling venues + 1 dedicated cheater.
        let mut plans = Vec::new();
        for _ in 0..THREADS {
            let honest: Vec<UserId> = (0..3)
                .map(|_| server.register_user(UserSpec::anonymous()))
                .collect();
            let cheater = server.register_user(UserSpec::anonymous());
            plans.push((honest, cheater));
        }
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut workers = Vec::new();
        for (t, (honest, cheater)) in plans.into_iter().enumerate() {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let venues = venues.clone();
            workers.push(std::thread::spawn(move || {
                barrier.wait();
                let (mut ok, mut bad) = (0u64, 0u64);
                for i in 0..OPS {
                    // Every 4th op is the cheater spoofing from 500 km
                    // away; the rest are honest check-ins at the venue.
                    server.clock().advance(Duration::secs(121));
                    if i % 4 == 3 {
                        let (venue, _) = venues[(t + i) % venues.len()];
                        let out = server.check_in(&req(cheater, venue, far)).unwrap();
                        assert!(!out.rewarded());
                        bad += 1;
                    } else {
                        let user = honest[i % honest.len()];
                        let (venue, loc) = venues[(t * 7 + i / 3) % venues.len()];
                        let out = server.check_in(&req(user, venue, loc)).unwrap();
                        assert!(out.rewarded(), "honest check-in flagged: {:?}", out.flags);
                        ok += 1;
                    }
                }
                (ok, bad)
            }));
        }
        let (mut accepted, mut rejected) = (0u64, 0u64);
        for w in workers {
            let (ok, bad) = w.join().expect("worker panicked");
            accepted += ok;
            rejected += bad;
        }
        assert_eq!(accepted + rejected, (THREADS * OPS) as u64);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.checkin.accepted"), accepted);
        assert_eq!(snap.counter("server.checkin.rejected"), rejected);
        // Each thread's cheater crosses the 10-flag threshold exactly
        // once: 10 GPS mismatches, then account-flagged forever.
        assert_eq!(snap.counter("server.checkin.branded"), THREADS as u64);
        assert_eq!(
            snap.counter("server.checkin.flag.gps_mismatch"),
            10 * THREADS as u64
        );
        assert_eq!(
            snap.counter("server.checkin.flag.account_flagged"),
            rejected - 10 * THREADS as u64
        );
        // Per-user bookkeeping survived the interleaving exactly.
        let mut total = 0;
        server.for_each_user(|u| total += u.total_checkins);
        assert_eq!(total, (THREADS * OPS) as u64);
    });
}

/// Threads fight over mayorships of a small venue set; at every moment
/// afterwards each venue has at most one mayor and the venue-side seat
/// agrees exactly with the user-side mayorship sets (a bijection).
#[test]
fn mayorship_bijection_under_contention() {
    with_watchdog("mayorship_bijection_under_contention", || {
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let venues: Vec<(VenueId, GeoPoint)> = (0..4u64)
            .map(|i| {
                let loc = destination(abq(), (i * 90) as f64, 200.0 * (i + 1) as f64);
                (
                    server.register_venue(VenueSpec::new(format!("V{i}"), loc)),
                    loc,
                )
            })
            .collect();
        let users: Vec<UserId> = (0..THREADS)
            .map(|_| server.register_user(UserSpec::anonymous()))
            .collect();
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut workers = Vec::new();
        for (t, user) in users.iter().copied().enumerate() {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let venues = venues.clone();
            workers.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let (venue, loc) = venues[(t + i) % venues.len()];
                    server.clock().advance(Duration::secs(3700));
                    server.check_in(&req(user, venue, loc)).unwrap();
                }
            }));
        }
        for w in workers {
            w.join().expect("worker panicked");
        }
        // Venue-side seats...
        let mut seats: HashMap<VenueId, UserId> = HashMap::new();
        server.for_each_venue(|v| {
            if let Some(m) = v.mayor {
                assert!(
                    seats.insert(v.id, m).is_none(),
                    "venue listed twice in for_each_venue"
                );
            }
        });
        // ...must agree exactly with user-side mayorship sets.
        let mut claimed: HashMap<VenueId, UserId> = HashMap::new();
        server.for_each_user(|u| {
            for &v in &u.mayorships {
                assert!(
                    claimed.insert(v, u.id).is_none(),
                    "venue {v:?} claimed by two users"
                );
            }
        });
        assert_eq!(
            seats, claimed,
            "venue seats and user mayorship sets diverge"
        );
    });
}

/// A user holding mayorships across every shard gets branded while
/// other threads keep checking in: afterwards the branded user holds
/// nothing and every surviving seat belongs to someone else.
#[test]
fn strip_on_brand_under_concurrent_checkins() {
    with_watchdog("strip_on_brand_under_concurrent_checkins", || {
        let server = Arc::new(LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                policy: PolicyConfig::with_detectors(
                    DetectorConfig::default().branding_threshold(Some(5)),
                ),
                shards: 8,
                ..ServerConfig::default()
            },
        ));
        let victim = server.register_user(UserSpec::anonymous());
        let venues: Vec<(VenueId, GeoPoint)> = (0..24u64)
            .map(|i| {
                let loc = destination(abq(), ((i * 15) % 360) as f64, 150.0 * (i + 1) as f64);
                (
                    server.register_venue(VenueSpec::new(format!("V{i}"), loc)),
                    loc,
                )
            })
            .collect();
        for (venue, loc) in &venues {
            assert!(
                server
                    .check_in(&req(victim, *venue, *loc))
                    .unwrap()
                    .became_mayor
            );
            server.clock().advance(Duration::hours(2));
        }
        // Background honest traffic from other users while the victim
        // gets branded.
        let stop = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::new();
        for t in 0..4 {
            let server = Arc::clone(&server);
            let venues = venues.clone();
            let stop = Arc::clone(&stop);
            let user = server.register_user(UserSpec::anonymous());
            workers.push(std::thread::spawn(move || {
                let mut i = 0usize;
                while stop.load(Ordering::Relaxed) == 0 {
                    let (venue, loc) = venues[(t * 5 + i) % venues.len()];
                    server.clock().advance(Duration::secs(121));
                    server.check_in(&req(user, venue, loc)).unwrap();
                    i += 1;
                }
            }));
        }
        let far = destination(abq(), 10.0, 300_000.0);
        for _ in 0..5 {
            server.clock().advance(Duration::secs(121));
            let out = server.check_in(&req(victim, venues[0].0, far)).unwrap();
            assert!(!out.rewarded());
        }
        stop.store(1, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker panicked");
        }
        let u = server.user(victim).unwrap();
        assert!(u.branded_cheater);
        assert!(u.mayorships.is_empty(), "branded user keeps no mayorships");
        server.for_each_venue(|v| {
            assert_ne!(v.mayor, Some(victim), "stripped seat {:?} still held", v.id);
        });
    });
}

/// Crawler-style readers hammer every read path while writers run:
/// must terminate (no reader/writer deadlock) and reads must always
/// observe internally consistent profiles.
#[test]
fn crawler_reads_run_concurrently_with_writers() {
    with_watchdog("crawler_reads_run_concurrently_with_writers", || {
        const WRITERS: usize = 4;
        const READERS: usize = 4;
        const OPS: usize = 3_000;
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let venues: Vec<(VenueId, GeoPoint)> = (0..16u64)
            .map(|i| {
                let loc = destination(abq(), ((i * 23) % 360) as f64, 120.0 * (i + 1) as f64);
                (
                    server.register_venue(VenueSpec::new(format!("Cafe {i}"), loc)),
                    loc,
                )
            })
            .collect();
        let mut pools = Vec::new();
        for _ in 0..WRITERS {
            let users: Vec<UserId> = (0..16)
                .map(|_| server.register_user(UserSpec::anonymous()))
                .collect();
            pools.push(users);
        }
        let barrier = Arc::new(Barrier::new(WRITERS + READERS));
        let mut workers = Vec::new();
        for (t, users) in pools.into_iter().enumerate() {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let venues = venues.clone();
            workers.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let user = users[i % users.len()];
                    let (venue, loc) = venues[(t * 3 + i / users.len()) % venues.len()];
                    server.clock().advance(Duration::secs(121));
                    server.check_in(&req(user, venue, loc)).unwrap();
                }
            }));
        }
        for r in 0..READERS {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            workers.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    match (r + i) % 5 {
                        0 => {
                            server.for_each_venue(|v| {
                                assert!(v.unique_visitors().len() as u64 <= v.checkins_here);
                            });
                        }
                        1 => {
                            server.for_each_user(|u| {
                                assert!(u.valid_checkins <= u.total_checkins);
                            });
                        }
                        2 => {
                            let _ = server.leaderboard(10);
                        }
                        3 => {
                            let _ = server.venues_near(abq(), 10_000.0, 50);
                            let _ = server.search_venues_by_name("cafe", 10);
                        }
                        _ => {
                            let id = UserId((i % 64 + 1) as u64);
                            server.with_user(id, |u| {
                                assert_eq!(u.id, id);
                            });
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("worker panicked");
        }
        let snap_total = (WRITERS * OPS) as u64;
        let mut total = 0;
        server.for_each_user(|u| total += u.total_checkins);
        assert_eq!(total, snap_total);
    });
}
