//! User archetypes: the behavioural cohorts of §4.

use serde::{Deserialize, Serialize};

/// What kind of account a synthetic user is — the ground truth every
/// detection experiment scores against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Registered, never checked in (36.3 % of accounts).
    Inactive,
    /// One to five lifetime check-ins (20.4 %).
    Dabbler,
    /// Ordinary active user: log-normal lifetime total, one home metro,
    /// occasional vacations.
    Regular,
    /// §4.2's first ≥5000 group: "each of whom is mayor of tens of
    /// venues, which are all concentrated in a city area". Legitimate.
    PowerUser,
    /// An undetected §3.1/§3.3 attacker: emulator spoofing with the
    /// paced virtual-tour strategy, hopping 30+ cities (Fig 4.3).
    EmulatorCheater,
    /// A cheater Foursquare's cheater code caught: teleporting
    /// check-ins that count toward totals but earn nothing (Fig 4.2's
    /// low-reward band).
    CaughtCheater,
    /// §4.2's second ≥5000 group: caught cheaters with enormous totals
    /// (one exceeds 12,000 — the global maximum), no mayorships, few
    /// badges.
    CaughtWhale,
    /// §3.4's farmer: one check-in at each of hundreds of dormant
    /// venues, hoarding mayorships (865 at full scale) from only ~1265
    /// check-ins.
    MayorFarmer,
}

impl Archetype {
    /// Whether this account is cheating (ground truth for detection
    /// precision/recall).
    pub fn is_cheater(self) -> bool {
        matches!(
            self,
            Archetype::EmulatorCheater
                | Archetype::CaughtCheater
                | Archetype::CaughtWhale
                | Archetype::MayorFarmer
        )
    }

    /// Whether the service's own cheater code catches this account
    /// (caught cohorts) or not (the paper's novel attacks).
    pub fn caught_by_cheater_code(self) -> bool {
        matches!(self, Archetype::CaughtCheater | Archetype::CaughtWhale)
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Archetype::Inactive => "inactive",
            Archetype::Dabbler => "dabbler",
            Archetype::Regular => "regular",
            Archetype::PowerUser => "power-user",
            Archetype::EmulatorCheater => "emulator-cheater",
            Archetype::CaughtCheater => "caught-cheater",
            Archetype::CaughtWhale => "caught-whale",
            Archetype::MayorFarmer => "mayor-farmer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheater_classification() {
        assert!(!Archetype::Inactive.is_cheater());
        assert!(!Archetype::Dabbler.is_cheater());
        assert!(!Archetype::Regular.is_cheater());
        assert!(!Archetype::PowerUser.is_cheater());
        assert!(Archetype::EmulatorCheater.is_cheater());
        assert!(Archetype::CaughtCheater.is_cheater());
        assert!(Archetype::CaughtWhale.is_cheater());
        assert!(Archetype::MayorFarmer.is_cheater());
    }

    #[test]
    fn caught_vs_undetected() {
        assert!(Archetype::CaughtWhale.caught_by_cheater_code());
        assert!(Archetype::CaughtCheater.caught_by_cheater_code());
        assert!(!Archetype::EmulatorCheater.caught_by_cheater_code());
        assert!(!Archetype::MayorFarmer.caught_by_cheater_code());
    }

    #[test]
    fn labels_unique() {
        let all = [
            Archetype::Inactive,
            Archetype::Dabbler,
            Archetype::Regular,
            Archetype::PowerUser,
            Archetype::EmulatorCheater,
            Archetype::CaughtCheater,
            Archetype::CaughtWhale,
            Archetype::MayorFarmer,
        ];
        let mut labels: Vec<_> = all.iter().map(|a| a.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
