//! Venue synthesis: metros, chains, specials, and the popularity tail.

use lbsn_geo::usa::{Metro, EUROPE_CITIES, US_METROS};
use lbsn_geo::{destination, GeoPoint};
use lbsn_server::{Special, SpecialKind, VenueCategory, VenueSpec};
use lbsn_sim::RngStream;

use crate::spec::PopulationSpec;

/// One planned venue. Venue IDs are assigned by registration order:
/// index `i` in the plan becomes `VenueId(i + 1)`.
#[derive(Debug, Clone)]
pub struct PlannedVenue {
    /// Registration spec.
    pub spec: VenueSpec,
    /// Index of the metro this venue belongs to (into
    /// [`VenuePlan::metros`]).
    pub metro: usize,
    /// Popularity rank within the metro (0 = most popular). User venue
    /// selection is log-uniform over rank, so high ranks form the
    /// dormant tail.
    pub rank: usize,
}

/// The full venue layout.
#[derive(Debug, Clone)]
pub struct VenuePlan {
    /// All venues, in registration (ID) order.
    pub venues: Vec<PlannedVenue>,
    /// The metros used (US first, then Europe).
    pub metros: Vec<&'static Metro>,
    /// Venue indices per metro, sorted by rank.
    pub by_metro: Vec<Vec<usize>>,
}

const CATEGORIES: &[(VenueCategory, f64)] = &[
    (VenueCategory::Restaurant, 0.24),
    (VenueCategory::Shop, 0.20),
    (VenueCategory::Coffee, 0.08),
    (VenueCategory::Bar, 0.08),
    (VenueCategory::Office, 0.12),
    (VenueCategory::Park, 0.06),
    (VenueCategory::Gym, 0.04),
    (VenueCategory::Hotel, 0.04),
    (VenueCategory::Landmark, 0.04),
    (VenueCategory::Airport, 0.005),
    (VenueCategory::Other, 0.095),
];

fn sample_category(rng: &mut RngStream) -> VenueCategory {
    let mut u = rng.next_f64();
    for (cat, p) in CATEGORIES {
        if u < *p {
            return *cat;
        }
        u -= p;
    }
    VenueCategory::Other
}

fn street_name(rng: &mut RngStream) -> &'static str {
    const STREETS: &[&str] = &[
        "Main St",
        "Central Ave",
        "Broadway",
        "1st St",
        "Market St",
        "Oak St",
        "Park Ave",
        "2nd Ave",
        "Washington Blvd",
        "Lincoln Way",
    ];
    STREETS[rng.range_u64(0, STREETS.len() as u64) as usize]
}

/// Plans every venue deterministically from the spec.
///
/// * Venues are distributed over US metros by population weight, plus a
///   small European slice.
/// * Each metro gets Starbucks branches in proportion (Fig 3.4's chain)
///   and a few other chains for name realism.
/// * Specials go to low-rank (popular) venues, at
///   [`PopulationSpec::mayor_only_special_fraction`] mayor-only — except
///   a pinned batch of mayor-only specials on deep-tail venues, which
///   will still be mayor-less at crawl time: §3.4's ~1000 easy targets.
pub fn plan_venues(spec: &PopulationSpec) -> VenuePlan {
    let rng = RngStream::from_seed(spec.seed).fork("venues");
    let total = spec.venue_count() as usize;
    let europe_total = (total as f64 * spec.europe_venue_fraction).round() as usize;
    let us_total = total - europe_total;

    let metros: Vec<&'static Metro> = US_METROS.iter().chain(EUROPE_CITIES).collect();
    let us_weight: f64 = US_METROS.iter().map(|m| m.weight).sum();
    let eu_weight: f64 = EUROPE_CITIES.iter().map(|m| m.weight).sum();

    // Allocate per-metro counts proportionally (largest remainder not
    // needed; rounding noise is irrelevant at these sizes).
    let mut counts: Vec<usize> = Vec::with_capacity(metros.len());
    for (i, m) in metros.iter().enumerate() {
        let (pool, weight_sum) = if i < US_METROS.len() {
            (us_total, us_weight)
        } else {
            (europe_total, eu_weight)
        };
        counts.push(((pool as f64) * m.weight / weight_sum).round() as usize);
    }

    let mut venues = Vec::with_capacity(total);
    let mut by_metro: Vec<Vec<usize>> = vec![Vec::new(); metros.len()];

    for (mi, metro) in metros.iter().enumerate() {
        let n = counts[mi];
        // Every metro with any venues gets at least one Starbucks —
        // the chain really is everywhere, and Fig 3.4 needs Alaska and
        // Hawaii dots even at small simulation scales.
        let starbucks =
            (((n as f64) * spec.starbucks_fraction).round() as usize).max(usize::from(n > 0));
        for rank in 0..n {
            let mut vrng = rng.fork_indexed("venue", (mi * 1_000_000 + rank) as u64);
            // Scatter within ~12 km of the metro centre, denser towards
            // downtown (sqrt keeps a core, linear tail spreads suburbs).
            let r = 12_000.0 * vrng.next_f64().powf(0.7);
            let bearing = vrng.range_f64(0.0, 360.0);
            let location = destination(metro.location(), bearing, r);
            let (name, category) = venue_identity(rank, starbucks, metro, &mut vrng);
            let address = format!(
                "{} {} , {}, {}",
                100 + vrng.range_u64(0, 9900),
                street_name(&mut vrng),
                metro.name,
                metro.region
            );
            let mut vspec = VenueSpec::new(name, location)
                .category(category)
                .address(address);
            // Popular-venue specials.
            if rank < n / 3 && vrng.chance(spec.special_fraction * 3.0) {
                vspec = vspec.special(make_special(spec, &mut vrng));
            }
            let idx = venues.len();
            venues.push(PlannedVenue {
                spec: vspec,
                metro: mi,
                rank,
            });
            by_metro[mi].push(idx);
        }
    }

    // Pin the §3.4 "unclaimed mayor special" batch on deep-tail venues.
    let unclaimed = spec.scaled(spec.full_unclaimed_specials) as usize;
    let mut pinned = 0;
    let mut probe = rng.fork("unclaimed");
    while pinned < unclaimed && !venues.is_empty() {
        let idx = probe.range_u64(0, venues.len() as u64) as usize;
        let v = &mut venues[idx];
        let metro_size = by_metro[v.metro].len();
        // Deep tail only: rank in the bottom 40 % of its metro.
        if v.rank * 10 >= metro_size * 6 && v.spec.special.is_none() {
            v.spec.special = Some(Special {
                description: "Free treat for the mayor!".to_string(),
                kind: SpecialKind::MayorOnly,
            });
            pinned += 1;
        }
    }

    VenuePlan {
        venues,
        metros,
        by_metro,
    }
}

fn venue_identity(
    rank: usize,
    starbucks: usize,
    metro: &Metro,
    rng: &mut RngStream,
) -> (String, VenueCategory) {
    // Chains occupy the popular end of each metro; Starbucks first so
    // the Fig 3.4 query has hits everywhere.
    if rank < starbucks {
        return (
            format!("Starbucks {} #{rank}", metro.name),
            VenueCategory::Coffee,
        );
    }
    if rank < starbucks * 2 {
        return (
            format!("McDonald's {} #{rank}", metro.name),
            VenueCategory::Restaurant,
        );
    }
    let category = sample_category(rng);
    const ADJ: &[&str] = &[
        "Blue", "Golden", "Old Town", "Corner", "Grand", "Silver", "Happy", "Royal", "Green",
        "Sunny",
    ];
    const NOUN: &[&str] = &[
        "Bistro", "House", "Place", "Spot", "Lounge", "Garden", "Works", "Room", "Station",
        "Market",
    ];
    let name = format!(
        "{} {} {}",
        ADJ[rng.range_u64(0, ADJ.len() as u64) as usize],
        NOUN[rng.range_u64(0, NOUN.len() as u64) as usize],
        rank
    );
    (name, category)
}

fn make_special(spec: &PopulationSpec, rng: &mut RngStream) -> Special {
    if rng.chance(spec.mayor_only_special_fraction) {
        Special {
            description: "Free coffee for the mayor!".to_string(),
            kind: SpecialKind::MayorOnly,
        }
    } else if rng.chance(0.5) {
        Special {
            description: "10% off any check-in".to_string(),
            kind: SpecialKind::EveryCheckin,
        }
    } else {
        Special {
            description: "Free item every 5 visits".to_string(),
            kind: SpecialKind::Loyalty { visits: 5 },
        }
    }
}

/// Samples a venue index from a metro's popularity distribution:
/// log-uniform over rank (Zipf-1), so rank 0 dominates and the tail is
/// long.
pub fn sample_venue(plan: &VenuePlan, metro: usize, rng: &mut RngStream) -> Option<usize> {
    let list = plan.by_metro.get(metro)?;
    if list.is_empty() {
        return None;
    }
    let n = list.len() as f64;
    let rank = (n.powf(rng.next_f64()) - 1.0).floor() as usize;
    list.get(rank.min(list.len() - 1)).copied()
}

/// Picks a deep-tail (likely dormant) venue in a metro.
pub fn sample_dormant_venue(plan: &VenuePlan, metro: usize, rng: &mut RngStream) -> Option<usize> {
    let list = plan.by_metro.get(metro)?;
    if list.is_empty() {
        return None;
    }
    let start = list.len() * 6 / 10;
    if start >= list.len() {
        return list.last().copied();
    }
    let i = start + rng.range_u64(0, (list.len() - start) as u64) as usize;
    list.get(i).copied()
}

/// The location of a planned venue.
pub fn venue_location(plan: &VenuePlan, idx: usize) -> GeoPoint {
    plan.venues[idx].spec.location
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_geo::BoundingBox;

    fn small_spec() -> PopulationSpec {
        PopulationSpec::tiny(3_000, 42)
    }

    #[test]
    fn plan_is_deterministic() {
        let a = plan_venues(&small_spec());
        let b = plan_venues(&small_spec());
        assert_eq!(a.venues.len(), b.venues.len());
        for (x, y) in a.venues.iter().zip(&b.venues) {
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.spec.location, y.spec.location);
        }
    }

    #[test]
    fn venue_count_and_metro_assignment() {
        let plan = plan_venues(&small_spec());
        // Rounding may drift a little from the target.
        let target = small_spec().venue_count() as f64;
        assert!((plan.venues.len() as f64 - target).abs() / target < 0.05);
        let assigned: usize = plan.by_metro.iter().map(|v| v.len()).sum();
        assert_eq!(assigned, plan.venues.len());
    }

    #[test]
    fn starbucks_everywhere_spans_us() {
        let plan = plan_venues(&small_spec());
        let sb: Vec<&PlannedVenue> = plan
            .venues
            .iter()
            .filter(|v| v.spec.name.contains("Starbucks"))
            .collect();
        assert!(!sb.is_empty(), "need Starbucks branches");
        assert!(sb.iter().all(|v| v.spec.category == VenueCategory::Coffee));
        let bbox = BoundingBox::enclosing(sb.iter().map(|v| v.spec.location)).expect("non-empty");
        // The Fig 3.4 silhouette: spans the continental US at least.
        assert!(bbox.lon_span() > 50.0, "lon span {}", bbox.lon_span());
        assert!(bbox.lat_span() > 15.0, "lat span {}", bbox.lat_span());
    }

    #[test]
    fn unclaimed_specials_pinned_on_tail() {
        let spec = small_spec();
        let plan = plan_venues(&spec);
        let unclaimed_target = spec.scaled(spec.full_unclaimed_specials) as usize;
        let tail_specials = plan
            .venues
            .iter()
            .filter(|v| {
                v.spec.special.as_ref().map(|s| s.kind) == Some(SpecialKind::MayorOnly)
                    && v.rank * 10 >= plan.by_metro[v.metro].len() * 6
            })
            .count();
        assert!(
            tail_specials >= unclaimed_target,
            "{tail_specials} < {unclaimed_target}"
        );
    }

    #[test]
    fn mayor_only_dominates_specials() {
        let plan = plan_venues(&PopulationSpec::tiny(20_000, 7));
        let (mut mayor_only, mut other) = (0, 0);
        for v in &plan.venues {
            match v.spec.special.as_ref().map(|s| s.kind) {
                Some(SpecialKind::MayorOnly) => mayor_only += 1,
                Some(_) => other += 1,
                None => {}
            }
        }
        assert!(mayor_only + other > 0);
        let frac = mayor_only as f64 / (mayor_only + other) as f64;
        // mayor_only_special_fraction is 0.92; at this population size only
        // a few hundred specials are drawn, so leave ~3 sigma of binomial
        // slack rather than asserting right at the mean.
        assert!(frac > 0.85, "mayor-only fraction {frac}");
    }

    #[test]
    fn sampling_prefers_popular_ranks() {
        let plan = plan_venues(&small_spec());
        let metro = 0; // New York, biggest list
        let mut rng = RngStream::from_seed(5);
        let n = plan.by_metro[metro].len();
        let mut top_decile = 0;
        const DRAWS: usize = 4_000;
        for _ in 0..DRAWS {
            let idx = sample_venue(&plan, metro, &mut rng).unwrap();
            if plan.venues[idx].rank * 10 < n {
                top_decile += 1;
            }
        }
        // Log-uniform: P(rank < N/10) = log(N/10)/log(N) — well over half
        // for metro-sized N.
        assert!(
            top_decile as f64 / DRAWS as f64 > 0.5,
            "top-decile share {}",
            top_decile as f64 / DRAWS as f64
        );
    }

    #[test]
    fn dormant_sampling_stays_in_tail() {
        let plan = plan_venues(&small_spec());
        let mut rng = RngStream::from_seed(6);
        for _ in 0..200 {
            let idx = sample_dormant_venue(&plan, 0, &mut rng).unwrap();
            let v = &plan.venues[idx];
            // Same floor-division boundary the sampler uses; the ceil-style
            // `rank * 10 >= len * 6` check is one rank stricter whenever
            // len * 6 % 10 != 0 and spuriously rejects the boundary rank.
            assert!(v.rank >= plan.by_metro[0].len() * 6 / 10);
        }
    }

    #[test]
    fn europe_has_venues() {
        let plan = plan_venues(&PopulationSpec::tiny(20_000, 3));
        let eu_start = lbsn_geo::usa::US_METROS.len();
        let eu_count: usize = plan.by_metro[eu_start..].iter().map(|v| v.len()).sum();
        assert!(eu_count > 0, "Fig 4.3's cheater needs European venues");
    }

    #[test]
    fn bad_metro_index_is_none() {
        let plan = plan_venues(&small_spec());
        let mut rng = RngStream::from_seed(1);
        assert!(sample_venue(&plan, 9_999, &mut rng).is_none());
        assert!(sample_dormant_venue(&plan, 9_999, &mut rng).is_none());
    }
}
