//! The population specification: every paper constant, parameterised.

/// Parameters of the synthetic population.
///
/// Defaults reproduce the August-2010 Foursquare the paper crawled, at a
/// configurable `scale`. Counts that describe *populations* scale;
/// counts that describe *individuals* (the eleven ≥5000-check-in
/// accounts, the 865-mayorship farmer) do not — they are injected
/// verbatim at any scale, with their per-account activity scaled.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Root RNG seed; everything is a deterministic function of it.
    pub seed: u64,
    /// Fraction of the production population to generate (1.0 = 1.89 M
    /// users, 5.6 M venues).
    pub scale: f64,

    /// Production user count ("1.89 million users in August 2010").
    pub full_users: u64,
    /// Production venue count ("5.6 million venues").
    pub full_venues: u64,
    /// Day of the crawl relative to launch (March 2009 → August 2010).
    pub crawl_day: u64,

    /// "36.3 % have never checked into any venues."
    pub inactive_fraction: f64,
    /// "20.4 % have one to five check-ins."
    pub dabbler_fraction: f64,
    /// Log-normal location parameter for active users' lifetime totals
    /// (median ≈ e^mu check-ins).
    pub active_total_mu: f64,
    /// Log-normal shape for the activity tail; tuned so ≈ 0.2 % of all
    /// users exceed 1000 check-ins, as §4.2 reports.
    pub active_total_sigma: f64,
    /// Hard cap on a regular user's simulated lifetime check-ins.
    pub active_total_cap: u64,

    /// Fraction of users running the §3.1 emulator attack, undetected
    /// (the suspicious cohort Fig 4.3 exposes).
    pub emulator_cheater_fraction: f64,
    /// Fraction of users caught by the cheater code (flagged totals,
    /// no rewards — the Fig 4.2 oscillation).
    pub caught_cheater_fraction: f64,
    /// The §4.2 club: accounts over 5000 check-ins, injected verbatim.
    pub power_users_over_5000: usize,
    /// Caught-cheater members of that club (one gets the global maximum,
    /// "over 12,000 check-ins").
    pub caught_over_5000: usize,
    /// Whether to inject the §3.4 farmer ("mayor of 865 venues … total
    /// number of check-ins of only 1265").
    pub include_mayor_farmer: bool,
    /// The farmer's venue count at full scale.
    pub full_farmer_mayorships: u64,

    /// "Out of 1.89 million users, only 26.1 % have usernames."
    pub username_fraction: f64,
    /// Fraction of venues carrying a special offer.
    pub special_fraction: f64,
    /// "More than 90 % of the rewards were only for mayors."
    pub mayor_only_special_fraction: f64,
    /// §3.4: "around 1000 venues" with a mayor-only special and no
    /// mayor, at full scale. Implemented by pinning this many specials
    /// (scaled) on venues in the dormant tail.
    pub full_unclaimed_specials: u64,
    /// Starbucks branches per venue (the Fig 3.4 chain).
    pub starbucks_fraction: f64,
    /// Fraction of venues placed in Europe (so Fig 4.3's cheater can
    /// "visit Europe").
    pub europe_venue_fraction: f64,
}

impl PopulationSpec {
    /// The production population at a given scale.
    pub fn at_scale(scale: f64, seed: u64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        PopulationSpec {
            seed,
            scale,
            full_users: 1_890_000,
            full_venues: 5_600_000,
            crawl_day: 520,
            inactive_fraction: 0.363,
            dabbler_fraction: 0.204,
            active_total_mu: 15.0_f64.ln(),
            active_total_sigma: 1.6,
            active_total_cap: 4_000,
            emulator_cheater_fraction: 0.0005,
            caught_cheater_fraction: 0.0004,
            power_users_over_5000: 6,
            caught_over_5000: 5,
            include_mayor_farmer: true,
            full_farmer_mayorships: 865,
            username_fraction: 0.261,
            special_fraction: 0.01,
            mayor_only_special_fraction: 0.92,
            full_unclaimed_specials: 1_000,
            starbucks_fraction: 0.002,
            europe_venue_fraction: 0.005,
        }
    }

    /// A small, fast population for unit and integration tests
    /// (~`users` users, venues in proportion). Keeps all the special
    /// cohorts but shrinks their activity.
    pub fn tiny(users: u64, seed: u64) -> Self {
        let scale = users as f64 / 1_890_000.0;
        PopulationSpec::at_scale(scale.clamp(1e-6, 1.0), seed)
    }

    /// The number of users to generate.
    pub fn user_count(&self) -> u64 {
        ((self.full_users as f64 * self.scale).round() as u64).max(50)
    }

    /// The number of venues to generate.
    pub fn venue_count(&self) -> u64 {
        ((self.full_venues as f64 * self.scale).round() as u64).max(100)
    }

    /// Individual-account activity scaled to the population (so the
    /// farmer holds 865 mayorships at full scale, ~43 at 1/20).
    pub fn scaled(&self, full_value: u64) -> u64 {
        ((full_value as f64 * self.scale).round() as u64).max(3)
    }
}

impl Default for PopulationSpec {
    /// The default experiment scale: 1/50 of production (≈ 37.8 k users,
    /// 112 k venues) — large enough for every curve shape, small enough
    /// to regenerate in seconds.
    fn default() -> Self {
        PopulationSpec::at_scale(0.02, 0x10CA_7104)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_counts() {
        let spec = PopulationSpec::default();
        assert_eq!(spec.user_count(), 37_800);
        assert_eq!(spec.venue_count(), 112_000);
        assert_eq!(spec.crawl_day, 520);
    }

    #[test]
    fn fractions_are_sane() {
        let spec = PopulationSpec::default();
        assert!(spec.inactive_fraction + spec.dabbler_fraction < 1.0);
        assert!(spec.mayor_only_special_fraction > 0.9);
        let cheaters = spec.emulator_cheater_fraction + spec.caught_cheater_fraction;
        assert!(cheaters < 0.01, "cheaters are a sliver of the population");
    }

    #[test]
    fn scaled_individuals() {
        let spec = PopulationSpec::at_scale(0.05, 1);
        assert_eq!(spec.scaled(865), 43);
        assert_eq!(spec.scaled(20), 3, "floor keeps cohorts non-trivial");
        let full = PopulationSpec::at_scale(1.0, 1);
        assert_eq!(full.scaled(865), 865);
    }

    #[test]
    fn tiny_spec_floors() {
        let spec = PopulationSpec::tiny(500, 7);
        assert!(spec.user_count() >= 50);
        assert!(spec.venue_count() >= 100);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = PopulationSpec::at_scale(0.0, 1);
    }
}
