//! Per-user check-in event planning.
//!
//! Every archetype's behaviour becomes a deterministic list of
//! `(time, user, venue)` events. Honest behaviour is planned to *never*
//! trip the cheater code (real users don't teleport); caught-cheater
//! behaviour is planned to trip it constantly; emulator cheaters follow
//! the paper's §3.3 pacing law and sail through.

use std::collections::HashSet;

use lbsn_geo::{distance, meters_to_miles, GeoPoint};
use lbsn_sim::{RngStream, Timestamp, DAY, HOUR, MINUTE};

use crate::archetype::Archetype;
use crate::spec::PopulationSpec;
use crate::venues::{sample_dormant_venue, sample_venue, venue_location, VenuePlan};

/// One planned check-in: plan indices, not server IDs (index `i` maps
/// to `UserId(i+1)` / `VenueId(i+1)` after registration replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedEvent {
    /// When.
    pub at: Timestamp,
    /// Plan index of the user.
    pub user: usize,
    /// Plan index of the venue.
    pub venue: usize,
}

/// Plans all events for one user.
#[allow(clippy::too_many_arguments)]
pub fn plan_user_events(
    user: usize,
    archetype: Archetype,
    total_target: u64,
    home_metro: usize,
    signup_day: u64,
    spec: &PopulationSpec,
    venues: &VenuePlan,
    rng: &mut RngStream,
) -> Vec<PlannedEvent> {
    match archetype {
        Archetype::Inactive => Vec::new(),
        Archetype::Dabbler | Archetype::Regular | Archetype::PowerUser => honest_events(
            user,
            archetype,
            total_target,
            home_metro,
            signup_day,
            spec,
            venues,
            rng,
        ),
        Archetype::EmulatorCheater => {
            emulator_tour(user, total_target, signup_day, spec, venues, rng)
        }
        Archetype::CaughtCheater | Archetype::CaughtWhale => teleport_spam(
            user,
            total_target,
            home_metro,
            signup_day,
            spec,
            venues,
            rng,
        ),
        Archetype::MayorFarmer => mayor_farm(user, signup_day, spec, venues, rng),
    }
}

/// How many distinct venues a user with `total` check-ins frequents.
/// Sub-linear: heavy users revisit favourites. Produces the Fig 4.1
/// plateau (recent-list presence tracks distinct venues, not totals).
fn distinct_pool_size(total: u64) -> usize {
    let f = 8.0 + (total as f64).powf(0.78);
    (f as usize).min(total as usize).max(1)
}

/// Samples a pool of distinct venues in a metro; `dormant_share` of the
/// picks come from the deep tail.
fn sample_pool(
    venues: &VenuePlan,
    metro: usize,
    size: usize,
    dormant_share: f64,
    rng: &mut RngStream,
) -> Vec<usize> {
    let mut pool = Vec::with_capacity(size);
    let mut seen = HashSet::new();
    let mut attempts = 0;
    while pool.len() < size && attempts < size * 4 {
        attempts += 1;
        let pick = if rng.chance(dormant_share) {
            sample_dormant_venue(venues, metro, rng)
        } else {
            sample_venue(venues, metro, rng)
        };
        if let Some(idx) = pick {
            if seen.insert(idx) {
                pool.push(idx);
            }
        }
    }
    pool
}

/// Spreads `k` event times across one day's 8:00–24:00 window with at
/// least a 40-minute gap — calm enough that no honest rule ever fires.
fn day_times(day: u64, k: usize, rng: &mut RngStream) -> Vec<Timestamp> {
    let k = k.max(1) as u64;
    let start = day * DAY + 8 * HOUR + rng.range_u64(0, HOUR);
    let gap = ((15 * HOUR) / k).max(40 * MINUTE);
    (0..k)
        .map(|i| Timestamp(start + i * gap))
        .filter(|t| t.secs() < (day + 1) * DAY)
        .collect()
}

/// Daily event count targeting `remaining` events over `days_left`.
fn day_quota(remaining: u64, days_left: u64, cap: u64, rng: &mut RngStream) -> u64 {
    if remaining == 0 || days_left == 0 {
        return remaining.min(cap);
    }
    let rate = remaining as f64 / days_left as f64;
    let base = rate.floor() as u64;
    let extra = u64::from(rng.chance(rate - base as f64));
    (base + extra).min(cap).min(remaining)
}

#[allow(clippy::too_many_arguments)]
fn honest_events(
    user: usize,
    archetype: Archetype,
    total_target: u64,
    home_metro: usize,
    signup_day: u64,
    spec: &PopulationSpec,
    venues: &VenuePlan,
    rng: &mut RngStream,
) -> Vec<PlannedEvent> {
    if total_target == 0 || signup_day >= spec.crawl_day {
        return Vec::new();
    }
    let (pool_dormant_share, daily_cap) = match archetype {
        Archetype::PowerUser => (0.4, 28),
        _ => (0.06, 10),
    };
    let pool = sample_pool(
        venues,
        home_metro,
        distinct_pool_size(total_target),
        pool_dormant_share,
        rng,
    );
    if pool.is_empty() {
        return Vec::new();
    }

    // Vacation blocks: [start_day, end_day), with a travel day on each
    // side carrying no check-ins (keeps the metro hop outside the
    // 24-hour speed-rule window).
    let mut vacations: Vec<(u64, u64, usize, Vec<usize>)> = Vec::new();
    if total_target >= 20 && spec.crawl_day > signup_day + 30 {
        let n_vac = if rng.chance(0.5) { 1 } else { 0 } + if rng.chance(0.2) { 1 } else { 0 };
        for _ in 0..n_vac {
            let metro = rng.range_u64(0, lbsn_geo::usa::US_METROS.len() as u64) as usize;
            if metro == home_metro {
                continue;
            }
            let len = 3 + rng.range_u64(0, 4);
            let start = signup_day + 2 + rng.range_u64(0, spec.crawl_day - signup_day - len - 2);
            let vpool = sample_pool(venues, metro, 6, 0.2, rng);
            if !vpool.is_empty() {
                vacations.push((start, start + len, metro, vpool));
            }
        }
    }
    let in_vacation = |day: u64| vacations.iter().find(|(s, e, _, _)| day >= *s && day < *e);
    let is_travel_day = |day: u64| {
        vacations
            .iter()
            .any(|(s, e, _, _)| day + 1 == *s || day == *e)
    };

    let mut events = Vec::with_capacity(total_target as usize);
    let mut remaining = total_target;
    for day in signup_day..spec.crawl_day {
        if remaining == 0 {
            break;
        }
        if is_travel_day(day) {
            continue;
        }
        let days_left = spec.crawl_day - day;
        let k = day_quota(remaining, days_left, daily_cap, rng);
        if k == 0 {
            continue;
        }
        let day_pool: &[usize] = match in_vacation(day) {
            Some((_, _, _, vpool)) => vpool,
            None => &pool,
        };
        // Distinct venues within the day: no accidental cooldown flags.
        let mut order: Vec<usize> = day_pool.to_vec();
        rng.shuffle(&mut order);
        let k = k.min(order.len() as u64);
        for (i, t) in day_times(day, k as usize, rng).into_iter().enumerate() {
            events.push(PlannedEvent {
                at: t,
                user,
                venue: order[i],
            });
            remaining -= 1;
        }
    }
    events
}

/// The §3.3 attack: a paced tour of many cities, all check-ins valid.
fn emulator_tour(
    user: usize,
    total_target: u64,
    signup_day: u64,
    spec: &PopulationSpec,
    venues: &VenuePlan,
    rng: &mut RngStream,
) -> Vec<PlannedEvent> {
    // Itinerary: 30+ cities, always including Alaska and Europe — the
    // Fig 4.3 signature.
    let metro_count = venues.metros.len();
    let mut cities: Vec<usize> = (0..metro_count).collect();
    rng.shuffle(&mut cities);
    let mut itinerary: Vec<usize> = cities
        .into_iter()
        .take(30 + rng.range_u64(0, 8) as usize)
        .collect();
    if let Some(ak) = venues.metros.iter().position(|m| m.region == "AK") {
        if !itinerary.contains(&ak) {
            itinerary.push(ak);
        }
    }
    // European metros sit after the US block in the plan's metro list.
    let eu_start = lbsn_geo::usa::US_METROS.len();
    if eu_start < metro_count {
        let eu = eu_start + rng.range_u64(0, (metro_count - eu_start) as u64) as usize;
        if !itinerary.contains(&eu) {
            itinerary.push(eu);
        }
    }

    let mut events = Vec::new();
    let mut remaining = total_target;
    let mut day = signup_day + 1;
    let mut city_cursor = 0usize;
    while remaining > 0 && day < spec.crawl_day {
        let metro = itinerary[city_cursor % itinerary.len()];
        city_cursor += 1;
        let k = (8 + rng.range_u64(0, 8)).min(remaining);
        let day_venues = sample_pool(venues, metro, k as usize, 0.7, rng);
        // Paced check-ins: T = max(5 min, D miles × 5 min) — the law
        // that evades the cheater code.
        let mut t = day * DAY + 8 * HOUR + rng.range_u64(0, HOUR);
        let mut prev: Option<GeoPoint> = None;
        for &v in &day_venues {
            let loc = venue_location(venues, v);
            if let Some(p) = prev {
                let miles = meters_to_miles(distance(p, loc));
                let wait = ((miles.max(1.0)) * 300.0).ceil() as u64;
                t += wait;
            }
            if t >= (day + 1) * DAY - 2 * HOUR {
                break;
            }
            events.push(PlannedEvent {
                at: Timestamp(t),
                user,
                venue: v,
            });
            remaining = remaining.saturating_sub(1);
            prev = Some(loc);
        }
        // Rest/travel day between cities keeps metro hops outside the
        // speed-rule window.
        day += 2;
    }
    events
}

/// A caught cheater: one plausible check-in near home each day, then
/// rapid cross-country teleports that the speed rule flags.
#[allow(clippy::too_many_arguments)]
fn teleport_spam(
    user: usize,
    total_target: u64,
    home_metro: usize,
    signup_day: u64,
    spec: &PopulationSpec,
    venues: &VenuePlan,
    rng: &mut RngStream,
) -> Vec<PlannedEvent> {
    let mut events = Vec::new();
    let mut remaining = total_target;
    // The day's first check-in happens near home and is plausible, so
    // it earns rewards — §4.2's observation that even the caught whales
    // "appeared in a recent visitor list of a venue". Rotating the
    // anchor across the metro's ~60 most popular venues keeps the
    // whale's days-per-venue inside any 60-day mayor window at ~1, so
    // organically defended venues never fall to them — matching "do not
    // have any mayorships".
    let anchors: Vec<usize> = venues
        .by_metro
        .get(home_metro)
        .map(|list| list.iter().take(60).copied().collect())
        .unwrap_or_default();
    if anchors.is_empty() {
        return events;
    }
    // Teleport targets must be far enough from home that the implied
    // speed stays super-human even late in a burst (after 2.5 h the
    // 40 m/s rule only flags hops beyond ~360 km; 1000 km clears it for
    // the longest bursts).
    let home_loc = venues.metros[home_metro.min(venues.metros.len() - 1)].location();
    let far_metros: Vec<usize> = (0..lbsn_geo::usa::US_METROS.len())
        .filter(|&m| distance(venues.metros[m].location(), home_loc) > 1_000_000.0)
        .collect();
    if far_metros.is_empty() {
        return events;
    }
    for day in (signup_day + 1)..spec.crawl_day {
        if remaining == 0 {
            break;
        }
        let days_left = spec.crawl_day - day;
        // Teleport spam comes in bursts of at least a few check-ins —
        // a lone daily check-in would never trip the speed rule.
        let k = day_quota(remaining, days_left, 30, rng)
            .max(4)
            .min(remaining);
        let mut t = day * DAY + 9 * HOUR;
        for i in 0..k {
            // First of the day: the home anchor (valid). The rest: a
            // different metro every six minutes, each flagged as
            // super-human speed.
            let pick = if i == 0 {
                Some(anchors[(day as usize) % anchors.len()])
            } else {
                let metro = far_metros[rng.range_u64(0, far_metros.len() as u64) as usize];
                sample_venue(venues, metro, rng)
            };
            if let Some(v) = pick {
                events.push(PlannedEvent {
                    at: Timestamp(t),
                    user,
                    venue: v,
                });
                remaining -= 1;
            }
            t += 6 * MINUTE;
        }
    }
    events
}

/// The §3.4 farmer: a few dormant venues per day, one check-in each,
/// paced; rest days between metros.
fn mayor_farm(
    user: usize,
    signup_day: u64,
    spec: &PopulationSpec,
    venues: &VenuePlan,
    rng: &mut RngStream,
) -> Vec<PlannedEvent> {
    let mayorship_target = spec.scaled(spec.full_farmer_mayorships);
    let revisit_budget = spec.scaled(1265 - 865);
    let us_metros = lbsn_geo::usa::US_METROS.len();
    let mut events = Vec::new();
    let mut claimed = HashSet::new();
    let mut day = signup_day + 1;
    let mut revisits_left = revisit_budget;
    // Overshoot the mayorship target: a sliver of dormant venues do get
    // organic visitors later, and a two-day challenger dethrones the
    // farmer's single check-in. Claiming ~40 % extra keeps the held
    // count at the target through that attrition.
    let claim_budget = mayorship_target + mayorship_target * 2 / 5 + 2;
    while (claimed.len() as u64) < claim_budget && day < spec.crawl_day {
        let metro = rng.range_u64(0, us_metros as u64) as usize;
        let k = 2 + rng.range_u64(0, 4);
        let mut t = day * DAY + 9 * HOUR;
        let mut prev: Option<GeoPoint> = None;
        let mut first_today = None;
        for _ in 0..k {
            if claimed.len() as u64 >= claim_budget {
                break;
            }
            let Some(v) = sample_dormant_venue(venues, metro, rng) else {
                break;
            };
            if !claimed.insert(v) {
                continue;
            }
            let loc = venue_location(venues, v);
            if let Some(p) = prev {
                let miles = meters_to_miles(distance(p, loc));
                t += ((miles.max(1.0)) * 300.0).ceil() as u64;
            }
            events.push(PlannedEvent {
                at: Timestamp(t),
                user,
                venue: v,
            });
            first_today.get_or_insert(v);
            prev = Some(loc);
        }
        // Keep totals above mayorships: revisit today's first venue
        // after the cooldown.
        if revisits_left > 0 {
            if let Some(v) = first_today {
                events.push(PlannedEvent {
                    at: Timestamp(t + 2 * HOUR),
                    user,
                    venue: v,
                });
                revisits_left -= 1;
            }
        }
        day += 2; // travel day between metros
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::venues::plan_venues;

    fn setup() -> (PopulationSpec, VenuePlan) {
        let spec = PopulationSpec::tiny(3_000, 11);
        let venues = plan_venues(&spec);
        (spec, venues)
    }

    fn plan(
        archetype: Archetype,
        total: u64,
        spec: &PopulationSpec,
        venues: &VenuePlan,
    ) -> Vec<PlannedEvent> {
        let mut rng = RngStream::from_seed(99).fork_indexed("user", 1);
        plan_user_events(0, archetype, total, 0, 10, spec, venues, &mut rng)
    }

    #[test]
    fn inactive_users_have_no_events() {
        let (spec, venues) = setup();
        assert!(plan(Archetype::Inactive, 0, &spec, &venues).is_empty());
    }

    #[test]
    fn events_are_time_ordered_and_capped() {
        let (spec, venues) = setup();
        for archetype in [
            Archetype::Dabbler,
            Archetype::Regular,
            Archetype::PowerUser,
            Archetype::EmulatorCheater,
            Archetype::CaughtCheater,
        ] {
            let total = match archetype {
                Archetype::Dabbler => 4,
                Archetype::Regular => 80,
                _ => 600,
            };
            let events = plan(archetype, total, &spec, &venues);
            assert!(
                events.len() as u64 <= total,
                "{archetype:?}: {} > {total}",
                events.len()
            );
            assert!(!events.is_empty(), "{archetype:?} produced nothing");
            for w in events.windows(2) {
                assert!(w[0].at <= w[1].at, "{archetype:?} events out of order");
            }
            assert!(events.iter().all(|e| e.at.day() < spec.crawl_day));
        }
    }

    #[test]
    fn dabbler_hits_small_targets() {
        let (spec, venues) = setup();
        for total in 1..=5 {
            let events = plan(Archetype::Dabbler, total, &spec, &venues);
            assert_eq!(events.len() as u64, total, "target {total}");
        }
    }

    #[test]
    fn regular_events_roughly_hit_target() {
        let (spec, venues) = setup();
        let events = plan(Archetype::Regular, 200, &spec, &venues);
        assert!(
            (events.len() as i64 - 200).abs() < 30,
            "got {}",
            events.len()
        );
    }

    #[test]
    fn honest_users_never_repeat_a_venue_within_a_day() {
        let (spec, venues) = setup();
        let events = plan(Archetype::Regular, 150, &spec, &venues);
        let mut per_day: std::collections::HashMap<u64, HashSet<usize>> =
            std::collections::HashMap::new();
        for e in &events {
            assert!(
                per_day.entry(e.at.day()).or_default().insert(e.venue),
                "venue repeated within day {}",
                e.at.day()
            );
        }
    }

    #[test]
    fn honest_gaps_are_calm() {
        let (spec, venues) = setup();
        let events = plan(Archetype::PowerUser, 2_000, &spec, &venues);
        for w in events.windows(2) {
            let gap = w[1].at.since(w[0].at).as_secs();
            assert!(gap >= 40 * MINUTE, "gap {gap}s too tight for honesty");
        }
    }

    #[test]
    fn emulator_tour_visits_many_metros_with_pacing() {
        let (spec, venues) = setup();
        let events = plan(Archetype::EmulatorCheater, 800, &spec, &venues);
        assert!(events.len() > 200);
        let metros: HashSet<usize> = events
            .iter()
            .map(|e| venues.venues[e.venue].metro)
            .collect();
        assert!(metros.len() >= 25, "only {} metros", metros.len());
        // Pacing: consecutive same-day check-ins obey T = D × 5 min.
        for w in events.windows(2) {
            if w[0].at.day() != w[1].at.day() {
                continue;
            }
            let d = distance(
                venue_location(&venues, w[0].venue),
                venue_location(&venues, w[1].venue),
            );
            let gap = w[1].at.since(w[0].at).as_secs() as f64;
            assert!(
                gap + 1.0 >= meters_to_miles(d).max(1.0) * 300.0,
                "gap {gap} for {d} m"
            );
        }
    }

    #[test]
    fn teleport_spam_hops_metros_within_minutes() {
        let (spec, venues) = setup();
        let events = plan(Archetype::CaughtCheater, 500, &spec, &venues);
        let mut teleports = 0;
        for w in events.windows(2) {
            if w[0].at.day() != w[1].at.day() {
                continue;
            }
            let d = distance(
                venue_location(&venues, w[0].venue),
                venue_location(&venues, w[1].venue),
            );
            let gap = w[1].at.since(w[0].at).as_secs() as f64;
            if d / gap.max(1.0) > 40.0 {
                teleports += 1;
            }
        }
        assert!(teleports > 100, "only {teleports} super-human hops");
    }

    #[test]
    fn mayor_farmer_claims_scaled_target() {
        let (spec, venues) = setup();
        let mut rng = RngStream::from_seed(3);
        let events = plan_user_events(0, Archetype::MayorFarmer, 0, 0, 5, &spec, &venues, &mut rng);
        let distinct: HashSet<usize> = events.iter().map(|e| e.venue).collect();
        let target = spec.scaled(spec.full_farmer_mayorships) as usize;
        assert!(
            distinct.len() >= target.min(events.len()),
            "distinct {} target {target}",
            distinct.len()
        );
        // All targets are dormant-tail venues.
        for v in &distinct {
            let pv = &venues.venues[*v];
            assert!(pv.rank * 10 >= venues.by_metro[pv.metro].len() * 6);
        }
        // Totals exceed distinct (the 1265 vs 865 gap).
        assert!(events.len() > distinct.len());
    }
}
