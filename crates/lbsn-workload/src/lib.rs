//! Synthetic population generation, calibrated to the August-2010
//! Foursquare crawl the paper reports.
//!
//! The thesis measured a live service; we regenerate an equivalent one.
//! Every constant in [`PopulationSpec`] traces to a number in the text:
//! 1.89 M users and 5.6 M venues; 36.3 % of users with zero check-ins
//! and 20.4 % with one to five; 0.2 % with ≥ 1000; exactly 11 accounts
//! over 5000 check-ins split 6 legitimate power users / 5 caught
//! cheaters (§4.2); the 865-mayorship account (§3.4); undetected
//! emulator cheaters hopping 30+ cities including Alaska and Europe
//! (Fig 4.3); and a Starbucks chain whose branches trace the US map
//! (Fig 3.4).
//!
//! Generation happens in two phases:
//!
//! 1. [`plan`] — deterministically lay out venues, user archetypes, and
//!    every check-in event (who, where, when) from a seed;
//! 2. [`generate`] — replay the plan through a real [`LbsnServer`], so
//!    every downstream figure reads *actual server state* shaped by the
//!    real cheater code and reward engine, not painted numbers.

#![warn(missing_docs)]

mod archetype;
mod events;
mod generate;
mod spec;
mod venues;

pub use archetype::Archetype;
pub use events::PlannedEvent;
pub use generate::{
    generate, plan, register_world, register_world_bulk, replay_span, GenerationStats, Population,
    PopulationPlan, UserTruth,
};
pub use spec::PopulationSpec;
pub use venues::{PlannedVenue, VenuePlan};

use lbsn_server::LbsnServer;

/// Convenience: plan and generate in one call.
///
/// See [`plan`] and [`generate`] for the two phases.
pub fn build(server: &LbsnServer, spec: &PopulationSpec) -> Population {
    let plan = plan(spec);
    generate(server, &plan)
}
