//! Population planning and server replay.

use lbsn_geo::destination;
use lbsn_server::{CheckinRequest, CheckinSource, LbsnServer, UserId, UserSpec, VenueId};
use lbsn_sim::RngStream;

use crate::archetype::Archetype;
use crate::events::{plan_user_events, PlannedEvent};
use crate::spec::PopulationSpec;
use crate::venues::{plan_venues, venue_location, VenuePlan};

/// A planned user, pre-registration.
#[derive(Debug, Clone)]
pub struct PlannedUser {
    /// Behavioural cohort.
    pub archetype: Archetype,
    /// Home metro index.
    pub home_metro: usize,
    /// Day the account signs up (events start no earlier).
    pub signup_day: u64,
    /// Lifetime check-in target (0 where the generator decides, e.g.
    /// the mayor farmer).
    pub total_target: u64,
    /// Vanity username (26.1 % of accounts).
    pub username: Option<String>,
    /// Plan indices of this user's friends (applied symmetrically at
    /// registration; each edge listed once, on the higher index).
    pub friends: Vec<usize>,
}

/// The deterministic layout of the whole population.
#[derive(Debug, Clone)]
pub struct PopulationPlan {
    /// The generating spec.
    pub spec: PopulationSpec,
    /// Venue layout.
    pub venues: VenuePlan,
    /// Users, in registration (ID) order.
    pub users: Vec<PlannedUser>,
    /// All check-in events, globally time-ordered.
    pub events: Vec<PlannedEvent>,
}

/// Ground truth for one registered user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserTruth {
    /// The server-assigned ID.
    pub id: UserId,
    /// Cohort.
    pub archetype: Archetype,
    /// Home metro index.
    pub home_metro: usize,
    /// Signup day.
    pub signup_day: u64,
}

/// Replay accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenerationStats {
    /// Check-ins submitted.
    pub submitted: u64,
    /// Check-ins that earned rewards.
    pub rewarded: u64,
    /// Check-ins the cheater code flagged.
    pub flagged: u64,
}

/// The generated population: ground truth plus replay stats.
#[derive(Debug, Clone)]
pub struct Population {
    /// Per-user ground truth, indexed by `id - 1`.
    pub users: Vec<UserTruth>,
    /// Number of venues registered.
    pub venue_count: u64,
    /// Replay accounting.
    pub stats: GenerationStats,
}

impl Population {
    /// Ground truth for a user.
    pub fn truth(&self, id: UserId) -> Option<&UserTruth> {
        let idx = id.value().checked_sub(1)? as usize;
        self.users.get(idx)
    }

    /// IDs of all ground-truth cheaters.
    pub fn cheater_ids(&self) -> Vec<UserId> {
        self.users
            .iter()
            .filter(|u| u.archetype.is_cheater())
            .map(|u| u.id)
            .collect()
    }

    /// IDs of users with a given archetype.
    pub fn ids_of(&self, archetype: Archetype) -> Vec<UserId> {
        self.users
            .iter()
            .filter(|u| u.archetype == archetype)
            .map(|u| u.id)
            .collect()
    }
}

/// Plans the population's people — archetypes, signup days, activity
/// targets, usernames, and the friend graph — without planning any
/// events. [`plan`] builds its event list on top of this; the bulk
/// loader ([`register_world_bulk`]) uses it directly so paper-scale
/// worlds never materialise hundreds of millions of planned check-ins.
fn plan_users(spec: &PopulationSpec) -> Vec<PlannedUser> {
    let root = RngStream::from_seed(spec.seed);
    let mut rng = root.fork("users");
    let n = spec.user_count() as usize;

    // Special cohorts: the §4.2 eleven, the farmer, and the cheater
    // slivers, spread across the middle of the ID space so every
    // account has runway before the crawl.
    let mut archetypes = vec![None::<Archetype>; n];
    let mut place = |count: usize, archetype: Archetype, rng: &mut RngStream| {
        let mut placed = 0;
        let mut guard = 0;
        while placed < count && guard < count * 300 + 1000 {
            guard += 1;
            let idx = (n / 20) + rng.range_u64(0, (n - n / 10).max(1) as u64) as usize;
            if idx < n && archetypes[idx].is_none() {
                archetypes[idx] = Some(archetype);
                placed += 1;
            }
        }
    };
    place(spec.power_users_over_5000, Archetype::PowerUser, &mut rng);
    place(spec.caught_over_5000, Archetype::CaughtWhale, &mut rng);
    if spec.include_mayor_farmer {
        place(1, Archetype::MayorFarmer, &mut rng);
    }
    let emulator_count = ((n as f64) * spec.emulator_cheater_fraction)
        .round()
        .max(1.0) as usize;
    let caught_count = ((n as f64) * spec.caught_cheater_fraction).round().max(1.0) as usize;
    place(emulator_count, Archetype::EmulatorCheater, &mut rng);
    place(caught_count, Archetype::CaughtCheater, &mut rng);

    // Everyone else: the §4.2 activity mix. The index drives both the
    // pre-placed archetype lookup and the signup-growth curve.
    let growth_rate = std::f64::consts::LN_2 / 120.0; // doubles every ~4 months
    let mut users = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let mut urng = root.fork_indexed("user", i as u64);
        let archetype = archetypes[i].unwrap_or_else(|| {
            let u = urng.next_f64();
            if u < spec.inactive_fraction {
                Archetype::Inactive
            } else if u < spec.inactive_fraction + spec.dabbler_fraction {
                Archetype::Dabbler
            } else {
                Archetype::Regular
            }
        });
        // Exponential service growth: most IDs are recent.
        let f = (i + 1) as f64 / (n + 1) as f64;
        let natural_signup = (spec.crawl_day as f64 + f.ln() / growth_rate).max(0.0) as u64;
        let signup_day = match archetype {
            // The big accounts need the full timeline to act.
            Archetype::PowerUser | Archetype::CaughtWhale | Archetype::MayorFarmer => {
                urng.range_u64(0, 40)
            }
            // "the user has used Foursquare for less than one year"
            Archetype::EmulatorCheater => spec.crawl_day - 350 + urng.range_u64(0, 180),
            _ => natural_signup.min(spec.crawl_day.saturating_sub(1)),
        };
        let total_target = match archetype {
            Archetype::Inactive => 0,
            Archetype::Dabbler => 1 + urng.range_u64(0, 5),
            Archetype::Regular => {
                let t = urng.log_normal(spec.active_total_mu, spec.active_total_sigma);
                (t.round() as u64).clamp(6, spec.active_total_cap)
            }
            Archetype::PowerUser => 5_200 + urng.range_u64(0, 4_000),
            Archetype::CaughtWhale => 5_500 + urng.range_u64(0, 3_500),
            Archetype::EmulatorCheater => 600 + urng.range_u64(0, 1_400),
            Archetype::CaughtCheater => 800 + urng.range_u64(0, 2_500),
            Archetype::MayorFarmer => 0, // generator-determined
        };
        let home_metro = match archetype {
            // Whales live in the biggest metros: their rotating anchor
            // venues need enough organic traffic to defend every
            // mayorship against a one-day visitor.
            Archetype::CaughtWhale => i % 3, // NY / LA / Chicago
            _ => {
                let m = lbsn_geo::usa::metro_by_weight(urng.next_f64());
                lbsn_geo::usa::US_METROS
                    .iter()
                    .position(|x| std::ptr::eq(x, m))
                    .unwrap_or(0)
            }
        };
        let username = urng
            .chance(spec.username_fraction)
            .then(|| format!("vanity{i}"));
        users.push(PlannedUser {
            archetype,
            home_metro,
            signup_day,
            total_target,
            username,
            friends: Vec::new(),
        });
    }

    // Friend graph: mostly same-metro edges, degree scaling with
    // activity (active people on a social network have friends on it).
    // Each edge is stored once, on the higher-index endpoint, so the
    // registration replay applies it exactly once.
    {
        let mut by_metro: Vec<Vec<usize>> = vec![Vec::new(); lbsn_geo::usa::US_METROS.len() + 8];
        for (i, u) in users.iter().enumerate() {
            by_metro[u.home_metro].push(i);
        }
        let mut frng = root.fork("friends");
        for i in 0..users.len() {
            let degree = match users[i].archetype {
                Archetype::Inactive => frng.range_u64(0, 2),
                Archetype::Dabbler => frng.range_u64(0, 5),
                _ => 2 + frng.range_u64(0, 14),
            };
            let pool = &by_metro[users[i].home_metro];
            for _ in 0..degree {
                // 85 % same-metro, 15 % anywhere.
                let j = if frng.chance(0.85) && pool.len() > 1 {
                    pool[frng.range_u64(0, pool.len() as u64) as usize]
                } else {
                    frng.range_u64(0, users.len() as u64) as usize
                };
                if j == i {
                    continue;
                }
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                if !users[hi].friends.contains(&lo) {
                    users[hi].friends.push(lo);
                }
            }
        }
    }

    // One caught whale carries the global maximum: "the one with over
    // 12,000 check-ins, the highest among all users".
    if let Some(idx) = users
        .iter()
        .position(|u| u.archetype == Archetype::CaughtWhale)
    {
        users[idx].total_target = 12_200 + rng.range_u64(0, 400);
    }

    users
}

/// Lays out the whole population deterministically from the spec.
pub fn plan(spec: &PopulationSpec) -> PopulationPlan {
    let venues = plan_venues(spec);
    let users = plan_users(spec);
    let root = RngStream::from_seed(spec.seed);

    // Plan every user's events and merge.
    let mut events: Vec<PlannedEvent> = Vec::new();
    for (i, user) in users.iter().enumerate() {
        let mut erng = root.fork_indexed("events", i as u64);
        events.extend(plan_user_events(
            i,
            user.archetype,
            user.total_target,
            user.home_metro,
            user.signup_day,
            spec,
            &venues,
            &mut erng,
        ));
    }
    events.sort_unstable_by_key(|e| (e.at, e.user));

    PopulationPlan {
        spec: spec.clone(),
        venues,
        users,
        events,
    }
}

/// Registers every venue and user of a plan on the server without
/// replaying any check-ins. IDs are plan index + 1 in both spaces.
///
/// Users are all registered at t=0; the paper dates accounts by ID,
/// which the plan's signup ordering already respects for the honest
/// majority.
pub fn register_world(server: &LbsnServer, plan: &PopulationPlan) -> Population {
    for v in &plan.venues.venues {
        server.register_venue(v.spec.clone());
    }
    let mut users = Vec::with_capacity(plan.users.len());
    for (i, u) in plan.users.iter().enumerate() {
        let metro = plan.venues.metros[u.home_metro.min(plan.venues.metros.len() - 1)];
        let mut hrng = RngStream::from_seed(plan.spec.seed).fork_indexed("home", i as u64);
        let home = destination(
            metro.location(),
            hrng.range_f64(0.0, 360.0),
            hrng.range_f64(0.0, 8_000.0),
        );
        let mut spec = match &u.username {
            Some(name) => UserSpec::named(name.clone()),
            None => UserSpec::anonymous(),
        };
        spec = spec.home(home);
        let id = server.register_user(spec);
        users.push(UserTruth {
            id,
            archetype: u.archetype,
            home_metro: u.home_metro,
            signup_day: u.signup_day,
        });
    }
    // Friendships (edges stored on the higher index, so both endpoints
    // exist by the time the edge is applied).
    for (i, u) in plan.users.iter().enumerate() {
        for &j in &u.friends {
            server
                .add_friendship(UserId(i as u64 + 1), UserId(j as u64 + 1))
                .expect("plan indices are registered");
        }
    }
    Population {
        users,
        venue_count: plan.venues.venues.len() as u64,
        stats: GenerationStats::default(),
    }
}

/// Registers a spec's whole world through the server's bulk-load path.
///
/// Venues and users land via chunked per-shard staging
/// ([`LbsnServer::bulk_register_users`] /
/// [`LbsnServer::bulk_register_venues`]) instead of one registration
/// call per entity, and no event list is ever planned — which is what
/// lets the scale ladder load the paper's full 7.49M-entity population
/// without first materialising its check-in history. The registered
/// state is identical to [`register_world`] on [`plan`]'s output: same
/// IDs, usernames, homes, venue fields, and friendship graph.
pub fn register_world_bulk(server: &LbsnServer, spec: &PopulationSpec) -> Population {
    let venue_plan = plan_venues(spec);
    let metros = venue_plan.metros.clone();
    let venue_count = venue_plan.venues.len() as u64;
    server.bulk_register_venues(venue_plan.venues.into_iter().map(|v| v.spec));

    let planned = plan_users(spec);
    let root = RngStream::from_seed(spec.seed);
    server.bulk_register_users(planned.iter().enumerate().map(|(i, u)| {
        let metro = metros[u.home_metro.min(metros.len() - 1)];
        let mut hrng = root.fork_indexed("home", i as u64);
        let home = destination(
            metro.location(),
            hrng.range_f64(0.0, 360.0),
            hrng.range_f64(0.0, 8_000.0),
        );
        let user_spec = match &u.username {
            Some(name) => UserSpec::named(name.clone()),
            None => UserSpec::anonymous(),
        };
        user_spec.home(home)
    }));
    for (i, u) in planned.iter().enumerate() {
        for &j in &u.friends {
            server
                .add_friendship(UserId(i as u64 + 1), UserId(j as u64 + 1))
                .expect("plan indices are registered");
        }
    }

    let users = planned
        .iter()
        .enumerate()
        .map(|(i, u)| UserTruth {
            id: UserId(i as u64 + 1),
            archetype: u.archetype,
            home_metro: u.home_metro,
            signup_day: u.signup_day,
        })
        .collect();
    Population {
        users,
        venue_count,
        stats: GenerationStats::default(),
    }
}

/// Replays the plan's events with virtual day index in
/// `[from_day, to_day)` through the server, in time order.
///
/// Spans must be replayed in chronological order (the virtual clock is
/// monotonic); this is what lets a test crawl the site, advance the
/// world a few days, and crawl again — the paper's re-crawl
/// methodology (§3.2).
pub fn replay_span(
    server: &LbsnServer,
    plan: &PopulationPlan,
    from_day: u64,
    to_day: u64,
) -> GenerationStats {
    let mut stats = GenerationStats::default();
    let tip_rng = RngStream::from_seed(plan.spec.seed).fork("tips");
    const TIP_TEXTS: &[&str] = &[
        "Great spot, friendly staff.",
        "Try the special!",
        "Gets crowded after five.",
        "Free wifi and good coffee.",
        "A bit pricey but worth it.",
    ];
    for (i, e) in plan.events.iter().enumerate() {
        let day = e.at.day();
        if day < from_day {
            continue;
        }
        if day >= to_day {
            break; // events are globally time-sorted
        }
        server.clock().advance_to(e.at);
        let req = CheckinRequest {
            user: UserId(e.user as u64 + 1),
            venue: VenueId(e.venue as u64 + 1),
            reported_location: venue_location(&plan.venues, e.venue),
            source: match plan.users[e.user].archetype {
                Archetype::MayorFarmer => CheckinSource::ServerApi,
                _ => CheckinSource::MobileApp,
            },
        };
        match server.check_in(&req) {
            Ok(outcome) => {
                stats.submitted += 1;
                if outcome.rewarded() {
                    stats.rewarded += 1;
                    // ~2 % of valid check-ins leave a tip — the organic
                    // comments the §2.2 badmouthing attack hides among.
                    // Deterministic per event index, so span replays
                    // stay equivalent to full replays.
                    if tip_rng.fork_indexed("tip", i as u64).chance(0.02) {
                        let text = TIP_TEXTS[i % TIP_TEXTS.len()];
                        let _ = server.leave_tip(req.user, req.venue, text);
                    }
                } else {
                    stats.flagged += 1;
                }
            }
            Err(_) => unreachable!("plan only references registered IDs"),
        }
    }
    stats
}

/// Replays a plan through a real server: registers every venue and
/// user, then submits every event in time order. The cheater code and
/// reward engine run for real — flagged totals, badges, mayorships, and
/// recent-visitor lists all come out of the server's own pipeline.
pub fn generate(server: &LbsnServer, plan: &PopulationPlan) -> Population {
    let mut population = register_world(server, plan);
    population.stats = replay_span(server, plan, 0, u64::MAX);
    population
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_server::ServerConfig;
    use lbsn_sim::SimClock;

    fn tiny_plan() -> PopulationPlan {
        plan(&PopulationSpec::tiny(2_000, 21))
    }

    #[test]
    fn plan_is_deterministic() {
        let a = tiny_plan();
        let b = tiny_plan();
        assert_eq!(a.users.len(), b.users.len());
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events.first(), b.events.first());
        assert_eq!(a.events.last(), b.events.last());
    }

    #[test]
    fn cohort_counts_match_spec() {
        let p = tiny_plan();
        let count = |a: Archetype| p.users.iter().filter(|u| u.archetype == a).count();
        assert_eq!(count(Archetype::PowerUser), 6);
        assert_eq!(count(Archetype::CaughtWhale), 5);
        assert_eq!(count(Archetype::MayorFarmer), 1);
        assert!(count(Archetype::EmulatorCheater) >= 1);
        assert!(count(Archetype::CaughtCheater) >= 1);
        let n = p.users.len() as f64;
        let inactive = count(Archetype::Inactive) as f64 / n;
        assert!((inactive - 0.363).abs() < 0.05, "inactive {inactive}");
        let dabbler = count(Archetype::Dabbler) as f64 / n;
        assert!((dabbler - 0.204).abs() < 0.05, "dabbler {dabbler}");
    }

    #[test]
    fn whale_has_global_maximum_target() {
        let p = tiny_plan();
        let max_whale = p
            .users
            .iter()
            .filter(|u| u.archetype == Archetype::CaughtWhale)
            .map(|u| u.total_target)
            .max()
            .unwrap();
        let max_power = p
            .users
            .iter()
            .filter(|u| u.archetype == Archetype::PowerUser)
            .map(|u| u.total_target)
            .max()
            .unwrap();
        assert!(max_whale > 12_000);
        assert!(max_whale > max_power);
    }

    #[test]
    fn events_sorted_globally() {
        let p = tiny_plan();
        for w in p.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(!p.events.is_empty());
    }

    #[test]
    fn generate_replays_through_server() {
        let p = tiny_plan();
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop = generate(&server, &p);
        assert_eq!(server.user_count(), p.users.len() as u64);
        assert_eq!(server.venue_count(), pop.venue_count);
        assert_eq!(pop.stats.submitted, p.events.len() as u64);
        assert!(pop.stats.rewarded > 0);
        assert!(pop.stats.flagged > 0, "caught cheaters must get flagged");
        // Most traffic is honest and unflagged. At this tiny test scale
        // the five fixed-size caught whales (~8k flagged check-ins each)
        // are a huge share of total traffic; at experiment scales the
        // flag rate drops under 10 %.
        let flag_rate = pop.stats.flagged as f64 / pop.stats.submitted as f64;
        assert!(flag_rate < 0.55, "flag rate {flag_rate}");
    }

    #[test]
    fn honest_users_are_never_flagged() {
        let p = tiny_plan();
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop = generate(&server, &p);
        for truth in &pop.users {
            if truth.archetype.is_cheater() {
                continue;
            }
            let (total, valid) = server
                .with_user(truth.id, |u| (u.total_checkins, u.valid_checkins))
                .unwrap();
            assert_eq!(
                total, valid,
                "honest {:?} user {} was flagged",
                truth.archetype, truth.id
            );
        }
    }

    #[test]
    fn emulator_cheaters_evade_the_cheater_code() {
        let p = tiny_plan();
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop = generate(&server, &p);
        for id in pop.ids_of(Archetype::EmulatorCheater) {
            let (total, valid) = server
                .with_user(id, |u| (u.total_checkins, u.valid_checkins))
                .unwrap();
            assert!(total > 0);
            assert_eq!(total, valid, "emulator cheater {id} was caught");
        }
    }

    #[test]
    fn caught_whales_have_flagged_majorities_and_no_mayorships() {
        let p = tiny_plan();
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop = generate(&server, &p);
        for id in pop.ids_of(Archetype::CaughtWhale) {
            let (total, valid, mayors, badges) = server
                .with_user(id, |u| {
                    (
                        u.total_checkins,
                        u.valid_checkins,
                        u.mayorships.len(),
                        u.badges.len(),
                    )
                })
                .unwrap();
            assert!(total > 5_000, "whale {id} total {total}");
            assert!(
                (valid as f64) < (total as f64) * 0.15,
                "whale {id}: {valid}/{total} valid"
            );
            assert_eq!(mayors, 0, "whale {id} holds {mayors} mayorships");
            assert!(badges < 12, "whale {id} has {badges} badges");
        }
    }

    #[test]
    fn mayor_farmer_hoards_mayorships() {
        let p = tiny_plan();
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop = generate(&server, &p);
        let farmer = pop.ids_of(Archetype::MayorFarmer)[0];
        let (total, mayors) = server
            .with_user(farmer, |u| (u.total_checkins, u.mayorships.len()))
            .unwrap();
        let target = p.spec.scaled(p.spec.full_farmer_mayorships);
        assert!(
            mayors as u64 >= target * 8 / 10,
            "farmer has {mayors}, target {target}"
        );
        assert!(total as usize >= mayors);
    }

    #[test]
    fn friend_graph_is_symmetric_and_populated() {
        let p = tiny_plan();
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop = register_world(&server, &p);
        let mut edges = 0u64;
        let mut to_check = Vec::new();
        for truth in &pop.users {
            let friends = server
                .with_user(truth.id, |u| u.friends.iter().copied().collect::<Vec<_>>())
                .unwrap();
            edges += friends.len() as u64;
            for f in friends {
                to_check.push((truth.id, f));
            }
        }
        assert!(
            edges > pop.users.len() as u64 / 2,
            "only {edges} friend links"
        );
        for (a, b) in to_check {
            assert!(
                server.with_user(b, |v| v.friends.contains(&a)).unwrap(),
                "friendship {a}-{b} not symmetric"
            );
        }
    }

    #[test]
    fn bulk_world_matches_incremental_registration() {
        let spec = PopulationSpec::tiny(600, 9);
        let p = plan(&spec);
        let inc = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop_inc = register_world(&inc, &p);
        let bulk = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop_bulk = register_world_bulk(&bulk, &spec);

        assert_eq!(pop_inc.users, pop_bulk.users);
        assert_eq!(pop_inc.venue_count, pop_bulk.venue_count);
        assert_eq!(inc.user_count(), bulk.user_count());
        assert_eq!(inc.venue_count(), bulk.venue_count());

        for id in (1..=inc.user_count()).step_by(13) {
            let snap = |s: &LbsnServer| {
                s.with_user(UserId(id), |u| {
                    (
                        u.username.clone(),
                        u.home,
                        u.friends.iter().copied().collect::<Vec<_>>(),
                    )
                })
                .unwrap()
            };
            assert_eq!(snap(&inc), snap(&bulk), "user {id} diverged");
        }
        for id in (1..=inc.venue_count()).step_by(17) {
            let snap = |s: &LbsnServer| {
                s.with_venue(VenueId(id), |v| {
                    (
                        v.name().to_string(),
                        v.address().to_string(),
                        v.location,
                        v.category,
                        v.special.clone(),
                    )
                })
                .unwrap()
            };
            assert_eq!(snap(&inc), snap(&bulk), "venue {id} diverged");
        }

        // The bulk world replays the same plan identically.
        let a = replay_span(&inc, &p, 0, 40);
        let b = replay_span(&bulk, &p, 0, 40);
        assert_eq!(a, b);
        assert!(a.submitted > 0);
    }

    #[test]
    fn span_replay_equals_full_replay() {
        let p = plan(&PopulationSpec::tiny(800, 5));
        let full_server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let full_pop = generate(&full_server, &p);

        let span_server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let _ = register_world(&span_server, &p);
        let mut stats = GenerationStats::default();
        // Replay in three chronological chunks.
        for (from, to) in [(0u64, 200u64), (200, 400), (400, u64::MAX)] {
            let s = replay_span(&span_server, &p, from, to);
            stats.submitted += s.submitted;
            stats.rewarded += s.rewarded;
            stats.flagged += s.flagged;
        }
        assert_eq!(stats, full_pop.stats);
        // Final state is identical for a sample of users.
        for truth in full_pop.users.iter().step_by(97) {
            let a = full_server
                .with_user(truth.id, |u| (u.total_checkins, u.valid_checkins, u.points))
                .unwrap();
            let b = span_server
                .with_user(truth.id, |u| (u.total_checkins, u.valid_checkins, u.points))
                .unwrap();
            assert_eq!(a, b, "user {} diverged", truth.id);
        }
    }

    #[test]
    fn truth_lookup_roundtrips() {
        let p = tiny_plan();
        let server = LbsnServer::new(SimClock::new(), ServerConfig::default());
        let pop = generate(&server, &p);
        let t = pop.truth(UserId(1)).unwrap();
        assert_eq!(t.id, UserId(1));
        assert!(pop.truth(UserId(0)).is_none());
        assert!(pop.truth(UserId(999_999)).is_none());
        assert_eq!(
            pop.cheater_ids().len(),
            pop.users
                .iter()
                .filter(|u| u.archetype.is_cheater())
                .count()
        );
    }
}
