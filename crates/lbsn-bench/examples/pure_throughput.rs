//! One-off pure single-thread throughput probe (sharded engine).
use lbsn_bench::throughput::{run, ThroughputConfig, Workload};
fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let r = run(&ThroughputConfig::pure(Workload::DistinctUsers, 1, ops));
    println!("{:.1}", r.checkins_per_sec);
}
