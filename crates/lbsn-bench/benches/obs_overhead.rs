//! Instrumentation overhead on the check-in hot path.
//!
//! The lbsn-obs acceptance budget is <5% overhead: a check-in through a
//! server with an enabled registry must cost within 5% of one whose
//! registry is disabled (every metric update degraded to a single
//! relaxed atomic load, timers never reading the clock).
//!
//! Run with `cargo bench -p lbsn-bench --bench obs_overhead`. Three
//! groups:
//!
//! * `checkin/{enabled,disabled}` — the headline budget above;
//! * `checkin-spans/{sampled-1-in-16,all,off}` — the same pipeline
//!   under head-sampling settings, isolating span cost (the default
//!   1-in-16 must sit within the 5% budget; `all` shows worst case);
//! * `record/{histogram,sketch,latency-stat}` — a single observation
//!   into a fixed-bucket histogram vs the log-bucket sketch vs the
//!   combined stat (histogram + sketch + window).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lbsn_geo::{destination, GeoPoint};
use lbsn_obs::{ObsConfig, Registry};
use lbsn_server::{
    CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserSpec, VenueId, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};

const VENUES: usize = 64;
const USERS: u64 = 256;

/// A server with a ring of venues and a pool of users; check-ins cycle
/// user × venue so the cooldown rule never trips and the pipeline runs
/// its full accepted path.
fn checkin_rig(registry: Arc<Registry>) -> (Arc<LbsnServer>, Vec<VenueId>) {
    let server = Arc::new(LbsnServer::with_registry(
        SimClock::new(),
        ServerConfig::default(),
        registry,
    ));
    let abq = GeoPoint::new(35.0844, -106.6504).unwrap();
    let venues: Vec<VenueId> = (0..VENUES)
        .map(|i| {
            server.register_venue(VenueSpec::new(
                format!("V{i}"),
                destination(abq, (i * 5 % 360) as f64, 50.0 * (i + 1) as f64),
            ))
        })
        .collect();
    for _ in 0..USERS {
        server.register_user(UserSpec::anonymous());
    }
    (server, venues)
}

fn bench_checkin_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkin");
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        let registry = Arc::new(Registry::new());
        registry.set_enabled(enabled);
        let (server, venues) = checkin_rig(Arc::clone(&registry));
        let mut i: u64 = 0;
        group.bench_function(label, |b| {
            b.iter(|| {
                let user = lbsn_server::UserId(i % USERS + 1);
                let venue = venues[(i / USERS) as usize % venues.len()];
                let loc = server.with_venue(venue, |v| v.location).unwrap();
                server.clock().advance(Duration::secs(90));
                i += 1;
                server
                    .check_in(&CheckinRequest {
                        user,
                        venue,
                        reported_location: loc,
                        source: CheckinSource::MobileApp,
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_span_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkin-spans");
    for (label, sample_every, sample_all) in [
        ("sampled-1-in-16", 16, false),
        ("all", 1, true),
        ("off", 0, false),
    ] {
        let registry = Arc::new(Registry::with_config(ObsConfig {
            span_sample_every: sample_every,
            span_sample_all: sample_all,
            ..ObsConfig::default()
        }));
        let (server, venues) = checkin_rig(Arc::clone(&registry));
        let mut i: u64 = 0;
        group.bench_function(label, |b| {
            b.iter(|| {
                let user = lbsn_server::UserId(i % USERS + 1);
                let venue = venues[(i / USERS) as usize % venues.len()];
                let loc = server.with_venue(venue, |v| v.location).unwrap();
                server.clock().advance(Duration::secs(90));
                i += 1;
                server
                    .check_in(&CheckinRequest {
                        user,
                        venue,
                        reported_location: loc,
                        source: CheckinSource::MobileApp,
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_record_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("record");
    let registry = Registry::new();
    let histogram = registry.histogram(lbsn_obs::names::bench::HISTOGRAM);
    let sketch = registry.sketch(lbsn_obs::names::bench::SKETCH);
    let stat = registry.latency(lbsn_obs::names::bench::LATENCY_STAT);
    // Cycle across decades so every fixed bucket and many log buckets
    // get touched, as a real latency stream would.
    let samples: Vec<u64> = (0..1024)
        .map(|i: u64| (i % 9 + 1) * 10u64.pow((i % 7) as u32 + 2))
        .collect();
    let mut i = 0usize;
    group.bench_function("histogram", |b| {
        b.iter(|| {
            histogram.record(samples[i % samples.len()]);
            i += 1;
        });
    });
    group.bench_function("sketch", |b| {
        b.iter(|| {
            sketch.record(samples[i % samples.len()]);
            i += 1;
        });
    });
    group.bench_function("latency-stat", |b| {
        b.iter(|| {
            stat.record_ns(samples[i % samples.len()]);
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(
    obs_overhead,
    bench_checkin_overhead,
    bench_span_sampling,
    bench_record_variants
);
criterion_main!(obs_overhead);
