//! One criterion group per paper figure/claim (E1…E12): benchmarks of
//! the subsystem each experiment exercises. The *values* each figure
//! reports come from the `experiments` binary; these benches measure
//! how fast the reproduction machinery runs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lbsn_analysis::{badges_vs_total, population_summary, recent_vs_total, CheaterClassifier};
use lbsn_attack::{PacingPolicy, Schedule, VenueIntel, VenueSnapper, VirtualPath};
use lbsn_bench::harness::TestBed;
use lbsn_crawler::{
    CrawlDatabase, CrawlTarget, CrawlerConfig, MultiThreadCrawler, SimulatedHttp,
    SimulatedHttpConfig,
};
use lbsn_defense::{
    AddressMapping, AttackScenario, DistanceBounding, IpOrigin, VerifierStack, WifiVerifier,
};
use lbsn_device::Emulator;
use lbsn_geo::{cluster::distinct_cities, destination, GeoPoint};
use lbsn_server::cheatercode::CheaterCodeConfig;
use lbsn_server::{
    CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserSpec, VenueId, VenueSpec,
};
use lbsn_sim::{Duration, SimClock, Timestamp};
use lbsn_workload::PopulationSpec;

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// A shared small test bed for the analysis-side benches.
fn bed() -> &'static TestBed {
    use std::sync::OnceLock;
    static BED: OnceLock<TestBed> = OnceLock::new();
    BED.get_or_init(|| TestBed::from_spec(&PopulationSpec::tiny(1_500, 0xBE9C)))
}

/// E1: a full spoofed check-in through the emulator rig.
fn e1_spoof_vectors(c: &mut Criterion) {
    let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
    let sf = GeoPoint::new(37.8080, -122.4177).unwrap();
    let venues: Vec<VenueId> = (0..1_000)
        .map(|i| {
            server.register_venue(VenueSpec::new(
                format!("V{i}"),
                destination(sf, (i % 360) as f64, 20.0 * i as f64),
            ))
        })
        .collect();
    let user = server.register_user(UserSpec::anonymous());
    let mut emulator = Emulator::boot();
    emulator.flash_recovery_image();
    let app = emulator
        .install_lbsn_app(Arc::clone(&server), user)
        .unwrap();
    let dm = emulator.debug_monitor();
    let mut i = 0usize;
    c.bench_function("e1_spoof_vectors/emulator_checkin", |b| {
        b.iter(|| {
            let v = venues[i % venues.len()];
            i += 1;
            server.clock().advance(Duration::hours(2));
            let loc = server.with_venue(v, |v| v.location).unwrap();
            dm.geo_fix(loc.lon(), loc.lat()).unwrap();
            app.check_in(v).unwrap()
        })
    });
}

/// E2: crawl throughput (parse + store path, zero latency).
fn e2_crawler_throughput(c: &mut Criterion) {
    let bed = bed();
    let mut group = c.benchmark_group("e2_crawler_throughput");
    group.sample_size(10);
    for threads in [1usize, 8] {
        group.bench_function(format!("users_{threads}_threads"), |b| {
            b.iter(|| {
                let http = SimulatedHttp::new(bed.web.clone(), SimulatedHttpConfig::default());
                let db = Arc::new(CrawlDatabase::new());
                MultiThreadCrawler::new(
                    http,
                    db,
                    CrawlerConfig {
                        threads,
                        target: CrawlTarget::Users,
                        max_id: Some(bed.server.user_count()),
                        ..CrawlerConfig::default()
                    },
                )
                .run()
            })
        });
    }
    group.finish();
}

/// E3: the Fig 3.4 LIKE query over the venue table.
fn e3_like_query(c: &mut Criterion) {
    let bed = bed();
    c.bench_function("e3_like_query/starbucks", |b| {
        b.iter(|| bed.db.venues_where_name_like("%Starbucks%"))
    });
}

/// E4: planning the Fig 3.5 tour (snap + schedule).
fn e4_schedule_build(c: &mut Criterion) {
    let venues: Vec<(VenueId, GeoPoint)> = (0..2_000)
        .map(|i| {
            (
                VenueId(i + 1),
                destination(abq(), (i % 360) as f64, 10.0 * i as f64),
            )
        })
        .collect();
    let lookup: std::collections::HashMap<_, _> = venues.iter().copied().collect();
    let snapper = VenueSnapper::from_venues(venues);
    let path = VirtualPath::clockwise_circuit(abq(), 0.005, 40, 7);
    c.bench_function("e4_schedule_build/tour_and_schedule", |b| {
        b.iter(|| {
            let tour = snapper.tour(&path, |id| lookup.get(&id).copied());
            Schedule::build(&tour, Timestamp(0), &PacingPolicy::default())
        })
    });
}

/// E5/E6: the bucketed-average curves over the crawled user table.
fn e5_e6_curves(c: &mut Criterion) {
    let bed = bed();
    c.bench_function("e5_recent_vs_total/curve", |b| {
        b.iter(|| recent_vs_total(&bed.db, 50, 2_000))
    });
    c.bench_function("e6_badges_curve/curve", |b| {
        b.iter(|| badges_vs_total(&bed.db, 100, 14_000))
    });
}

/// E7: distinct-city clustering and full-crawl classification.
fn e7_city_clustering(c: &mut Criterion) {
    let points: Vec<GeoPoint> = (0..1_000)
        .map(|i| {
            let m = lbsn_geo::usa::US_METROS[i % 30];
            destination(m.location(), (i % 360) as f64, (i % 50) as f64 * 150.0)
        })
        .collect();
    c.bench_function("e7_city_clustering/1000_points", |b| {
        b.iter(|| distinct_cities(&points))
    });
    let bed = bed();
    let truth = bed.cheater_ids();
    let mut group = c.benchmark_group("e7_city_clustering");
    group.sample_size(10);
    group.bench_function("full_classifier_scan", |b| {
        b.iter(|| CheaterClassifier::default().evaluate(&bed.db, &truth))
    });
    group.finish();
}

/// E8: the population summary pass.
fn e8_population_stats(c: &mut Criterion) {
    let bed = bed();
    c.bench_function("e8_population_stats/summary", |b| {
        b.iter(|| population_summary(&bed.db))
    });
}

/// E9: venue-intel target selection queries.
fn e9_target_selection(c: &mut Criterion) {
    let bed = bed();
    c.bench_function("e9_target_selection/unclaimed_specials", |b| {
        b.iter(|| VenueIntel::new(&bed.db).unclaimed_mayor_specials())
    });
    c.bench_function("e9_target_selection/mayor_hoarders", |b| {
        b.iter(|| VenueIntel::new(&bed.db).mayor_hoarders(5))
    });
}

/// E10: a verifier-stack decision.
fn e10_verifier_stack(c: &mut Criterion) {
    let stack = VerifierStack::new()
        .push(Box::new(DistanceBounding::default()))
        .push(Box::new(AddressMapping::default()))
        .push(Box::new(WifiVerifier::narrowed(30.0)));
    let venue = GeoPoint::new(37.8080, -122.4177).unwrap();
    let scenario = AttackScenario::remote_spoof("bench", abq(), venue, IpOrigin::Local(abq()));
    c.bench_function("e10_verifier_stack/verify", |b| {
        b.iter(|| stack.verify(&scenario.ctx))
    });
}

/// E11: the crawl gate's per-request decision.
fn e11_defended_crawl(c: &mut Criterion) {
    use lbsn_defense::crawl_control::{ClientIp, CrawlControlConfig, CrawlGate};
    let gate = CrawlGate::new(CrawlControlConfig::default());
    let mut ip = 0u32;
    c.bench_function("e11_defended_crawl/gate_check", |b| {
        b.iter(|| {
            ip = ip.wrapping_add(1);
            gate.check(ClientIp(ip % 1_000))
        })
    });
}

/// E12: check-in cost with and without the cheater code.
fn e12_cheatercode_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_cheatercode_overhead");
    for (name, config) in [
        ("full_rules", CheaterCodeConfig::default()),
        ("no_rules", CheaterCodeConfig::disabled()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let server = LbsnServer::new(
                        SimClock::new(),
                        ServerConfig::with_detectors(config.clone()),
                    );
                    let venue = server.register_venue(VenueSpec::new("V", abq()));
                    let user = server.register_user(UserSpec::anonymous());
                    (server, user, venue)
                },
                |(server, user, venue)| {
                    for _ in 0..50 {
                        server.clock().advance(Duration::hours(2));
                        server
                            .check_in(&CheckinRequest {
                                user,
                                venue,
                                reported_location: abq(),
                                source: CheckinSource::MobileApp,
                            })
                            .unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    name = figures;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =
    e1_spoof_vectors,
    e2_crawler_throughput,
    e3_like_query,
    e4_schedule_build,
    e5_e6_curves,
    e7_city_clustering,
    e8_population_stats,
    e9_target_selection,
    e10_verifier_stack,
    e11_defended_crawl,
    e12_cheatercode_overhead,
);
criterion_main!(figures);
