//! Multi-threaded check-in throughput: the sharded engine's headline.
//!
//! Two parts:
//!
//! * criterion groups (`checkin_throughput/{workload}/threads-N`)
//!   timing one full driver run per iteration — the relative view;
//! * a report pass that measures aggregate checkins/sec at 1/2/4/8
//!   threads and writes `BENCH_checkin_throughput.json` at the repo
//!   root — the committed perf trajectory CI's `bench-smoke` job
//!   regenerates.
//!
//! Workloads (see [`lbsn_bench::throughput`]): `distinct-users` (threads
//! share shards, never entities) and `contended-venue` (all writers
//! serialize on one venue). The scaling rows model a per-op client
//! think time, the regime of the paper's §3.2 crawler (14–16 threads
//! per machine masking request latency); the `pure-single-thread` row
//! is raw pipeline cost, comparable against the pre-shard baseline.
//!
//! `LBSN_BENCH_QUICK=1` shrinks op counts for CI smoke runs (the JSON
//! records which mode produced it).

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use lbsn_bench::throughput::{run, ThroughputConfig, Workload};

/// Pre-shard (single global `RwLock<State>`) single-thread rate on the
/// reference container, same workload as `pure-single-thread` below.
///
/// Throughput on the shared reference box swings ±20% with neighbor
/// load, so a single sample is meaningless: this constant is the
/// median of interleaved A/B rounds (pre-shard and sharded binaries
/// alternating back-to-back, 200k ops each) taken at the commit before
/// the sharded engine landed. The paired per-round ratio
/// (sharded / pre-shard) had geomean 0.96 across those rounds — the
/// two engines are within measurement noise of each other at one
/// thread, which is the claim `ratio_vs_pre_shard` tracks.
const PRE_SHARD_BASELINE_PER_SEC: f64 = 93_900.0;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn quick() -> bool {
    std::env::var("LBSN_BENCH_QUICK").is_ok()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkin_throughput");
    let ops = if quick() { 100 } else { 1_000 };
    if quick() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(100));
    }
    for workload in [Workload::DistinctUsers, Workload::ContendedVenue] {
        for threads in THREAD_SWEEP {
            group.bench_function(format!("{}/threads-{threads}", workload.label()), |b| {
                b.iter(|| run(&ThroughputConfig::pure(workload, threads, ops)));
            });
        }
    }
    group.finish();
}

criterion_group!(checkin_throughput, bench_throughput);

/// Best-of-`rounds` aggregate rate for one configuration.
fn best_rate(cfg: &ThroughputConfig, rounds: usize) -> f64 {
    (0..rounds)
        .map(|_| run(cfg).checkins_per_sec)
        .fold(0.0, f64::max)
}

fn scaling_sweep(workload: Workload, ops: usize, think: Duration, rounds: usize) -> Vec<String> {
    THREAD_SWEEP
        .iter()
        .map(|&threads| {
            let mut cfg = ThroughputConfig::pure(workload, threads, ops);
            cfg.think_time = Some(think);
            let rate = best_rate(&cfg, rounds);
            println!(
                "  {}/threads-{threads}: {rate:.1} checkins/sec",
                workload.label()
            );
            format!("{{\"threads\": {threads}, \"checkins_per_sec\": {rate:.1}}}")
        })
        .collect()
}

fn write_report() {
    let quick = quick();
    let (ops_pure, ops_scaled, rounds) = if quick {
        (5_000, 150, 1)
    } else {
        (200_000, 1_500, 3)
    };
    // Machine-noise on the shared box is the dominant error source for
    // the raw single-thread number, so give it extra rounds.
    let pure_rounds = if quick { 1 } else { 5 };
    let think = Duration::from_micros(800);
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    println!("== report: pure single-thread ({ops_pure} ops x {pure_rounds}) ==");
    let pure_1 = best_rate(
        &ThroughputConfig::pure(Workload::DistinctUsers, 1, ops_pure),
        pure_rounds,
    );
    println!("  pure-single-thread: {pure_1:.1} checkins/sec");

    println!("== report: scaling sweeps ({ops_scaled} ops/thread, {think:?} think time) ==");
    let distinct = scaling_sweep(Workload::DistinctUsers, ops_scaled, think, rounds);
    let contended = scaling_sweep(Workload::ContendedVenue, ops_scaled, think, rounds);

    let json = format!(
        r#"{{
  "bench": "checkin_throughput",
  "mode": "{mode}",
  "hardware": {{"cores": {cores}}},
  "note": "Scaling rows model an {think_us} us per-op client think time (the paper's Fig 3.3/3.4 crawler regime: threads overlap request latency), so thread scaling holds even on a single-core runner. pure-single-thread is raw pipeline cost with no think time. pre_shard_baseline_per_sec is the pre-shard (single global RwLock) engine measured as the median of interleaved A/B rounds on the reference container, where the paired sharded/pre-shard ratio had geomean 0.96; single samples on this box swing +/-20% with neighbor load.",
  "pure_single_thread": {{
    "checkins_per_sec": {pure_1:.1},
    "pre_shard_baseline_per_sec": {baseline:.1},
    "ratio_vs_pre_shard": {ratio:.3}
  }},
  "distinct_users": [
{distinct}
  ],
  "contended_venue": [
{contended}
  ],
  "speedup_1_to_8_distinct": {speedup:.2}
}}
"#,
        mode = if quick { "quick" } else { "full" },
        think_us = think.as_micros(),
        baseline = PRE_SHARD_BASELINE_PER_SEC,
        ratio = pure_1 / PRE_SHARD_BASELINE_PER_SEC,
        distinct = indent(&distinct),
        contended = indent(&contended),
        speedup = extract_rate(distinct.last().unwrap()) / extract_rate(distinct.first().unwrap()),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_checkin_throughput.json"
    );
    std::fs::write(path, json).expect("write BENCH_checkin_throughput.json");
    println!("wrote {path}");
}

fn indent(rows: &[String]) -> String {
    rows.iter()
        .map(|r| format!("    {r}"))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn extract_rate(row: &str) -> f64 {
    row.split("checkins_per_sec\": ")
        .nth(1)
        .and_then(|s| s.trim_end_matches(['}', ' ']).parse().ok())
        .expect("rate field")
}

fn main() {
    checkin_throughput();
    write_report();
}
