//! Per-detector cost of the admission pipeline.
//!
//! Two parts, mirroring `checkin_throughput`:
//!
//! * criterion groups (`checkin_pipeline/{variant}`) timing a batch of
//!   honest check-ins through one pipeline configuration per variant;
//! * a report pass that measures ns/check-in per variant and writes
//!   `BENCH_checkin_pipeline.json` at the repo root — the committed
//!   record of what each §2.3 detector (and the §5.1 Wi-Fi verifier
//!   stage) adds on top of the detector-free pipeline.
//!
//! Every variant is pure [`PolicyConfig`] data — the same sweep the
//! E13 experiment drives from `policies/*.json`, here pointed at cost
//! instead of admission outcomes. The workload is honest by
//! construction (distinct venues 100 m apart, two simulated minutes
//! between check-ins) so every detector runs to its cheap "pass" exit:
//! the numbers are steady-state overhead, not rejection-path cost.
//!
//! `LBSN_BENCH_QUICK=1` shrinks op counts for CI smoke runs (the JSON
//! records which mode produced it).

use std::sync::Arc;
use std::time::{Duration as WallDuration, Instant};

use criterion::{criterion_group, Criterion};
use lbsn_defense::{RouterRegistry, VerifierStack, VerifierStage, WifiVerifier};
use lbsn_geo::destination;
use lbsn_obs::Registry;
use lbsn_server::{
    CheckinEvidence, CheckinRequest, CheckinSource, CheckinVerifier, DetectorConfig, LbsnServer,
    ServerConfig, UserSpec, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};

const VENUE_RING: usize = 64;
/// Check-ins rotate over this many users so per-user history stays
/// bounded: the bench measures steady-state pipeline cost, not
/// record-growth effects. A multiple of `VENUE_RING`, so each user
/// lands on one fixed venue, revisited far outside the cooldown.
const USERS: usize = 128;

fn quick() -> bool {
    std::env::var("LBSN_BENCH_QUICK").is_ok()
}

/// One pipeline configuration under test.
struct Variant {
    name: &'static str,
    detectors: DetectorConfig,
    wifi_verifier: bool,
}

/// Detector-set sweep: none → each rule alone → the full chain → the
/// full chain behind the Wi-Fi verifier stage. Branding is off except
/// in the full-chain rows (it never fires on this honest workload
/// either way; keeping it on there matches the shipped default).
fn variants() -> Vec<Variant> {
    let none = || DetectorConfig::disabled().branding_threshold(None);
    vec![
        Variant {
            name: "no-detectors",
            detectors: none(),
            wifi_verifier: false,
        },
        Variant {
            name: "gps-only",
            detectors: DetectorConfig {
                enable_gps: true,
                ..none()
            },
            wifi_verifier: false,
        },
        Variant {
            name: "cooldown-only",
            detectors: DetectorConfig {
                enable_cooldown: true,
                ..none()
            },
            wifi_verifier: false,
        },
        Variant {
            name: "speed-only",
            detectors: DetectorConfig {
                enable_speed: true,
                ..none()
            },
            wifi_verifier: false,
        },
        Variant {
            name: "rapid-fire-only",
            detectors: DetectorConfig {
                enable_rapid_fire: true,
                ..none()
            },
            wifi_verifier: false,
        },
        Variant {
            name: "full-chain",
            detectors: DetectorConfig::default(),
            wifi_verifier: false,
        },
        Variant {
            name: "full-chain+wifi-verifier",
            detectors: DetectorConfig::default(),
            wifi_verifier: true,
        },
    ]
}

/// A server plus an honest check-in driver for one variant.
struct Rig {
    server: LbsnServer,
    venues: Vec<lbsn_server::VenueId>,
    // Venue locations, precomputed so the timed loop never pays for a
    // venue-record clone: the loop should cost one check-in, plus the
    // couple of instructions picking the next user/venue.
    locs: Vec<lbsn_geo::GeoPoint>,
    users: Vec<lbsn_server::UserId>,
    registry: Arc<Registry>,
    verified: bool,
}

fn rig(variant: &Variant) -> Rig {
    let routers = Arc::new(RouterRegistry::new());
    let verifiers: Vec<Box<dyn CheckinVerifier>> = if variant.wifi_verifier {
        vec![Box::new(VerifierStage::new(
            VerifierStack::new().push(Box::new(WifiVerifier::default())),
            Arc::clone(&routers),
        ))]
    } else {
        Vec::new()
    };
    let registry = Arc::new(Registry::new());
    let server = LbsnServer::with_pipeline(
        SimClock::new(),
        ServerConfig::with_detectors(variant.detectors.clone()),
        Arc::clone(&registry),
        verifiers,
    );
    let origin = lbsn_geo::GeoPoint::new(37.8080, -122.4177).unwrap();
    // An actual circle (adjacent venues ~100 m apart, wrap included) so
    // the i%RING walk never takes a superhuman hop.
    let radius = VENUE_RING as f64 * 100.0 / std::f64::consts::TAU;
    let venues: Vec<_> = (0..VENUE_RING)
        .map(|i| {
            let v = server.register_venue(VenueSpec::new(
                format!("Ring {i}"),
                destination(origin, 360.0 * i as f64 / VENUE_RING as f64, radius),
            ));
            if variant.wifi_verifier {
                routers.register(v);
            }
            v
        })
        .collect();
    let users = (0..USERS)
        .map(|_| server.register_user(UserSpec::anonymous()))
        .collect();
    let locs = venues
        .iter()
        .map(|&v| server.venue(v).unwrap().location)
        .collect();
    Rig {
        server,
        venues,
        locs,
        users,
        registry,
        verified: variant.wifi_verifier,
    }
}

impl Rig {
    /// Runs `ops` honest check-ins, two simulated minutes apart,
    /// rotating over the user pool and the 100 m-spaced venue ring so
    /// no rule fires: adjacent hops are sub-walking-speed, and any one
    /// user revisits its venue hours outside the cooldown.
    fn run(&self, ops: usize) {
        for i in 0..ops {
            let venue = self.venues[i % VENUE_RING];
            let loc = self.locs[i % VENUE_RING];
            let req = CheckinRequest {
                user: self.users[i % USERS],
                venue,
                reported_location: loc,
                source: CheckinSource::MobileApp,
            };
            let out = if self.verified {
                let evidence = CheckinEvidence::local(loc);
                match self.server.check_in_with_evidence(&req, Some(&evidence)) {
                    Ok(out) => out.rewarded(),
                    Err(_) => false,
                }
            } else {
                self.server.check_in(&req).is_ok_and(|o| o.rewarded())
            };
            assert!(out, "bench workload must stay honest");
            self.server.clock().advance(Duration::minutes(2));
        }
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkin_pipeline");
    let ops = if quick() { 100 } else { 1_000 };
    if quick() {
        group
            .sample_size(2)
            .warm_up_time(WallDuration::from_millis(10))
            .measurement_time(WallDuration::from_millis(100));
    }
    for variant in variants() {
        group.bench_function(variant.name, |b| {
            let rig = rig(&variant);
            b.iter(|| rig.run(ops));
        });
    }
    group.finish();
}

criterion_group!(checkin_pipeline, bench_pipeline);

/// Best-of-`rounds` ns/check-in for one variant (fresh rig per round so
/// user history never accumulates across rounds).
fn best_ns_per_op(variant: &Variant, ops: usize, rounds: usize) -> f64 {
    (0..rounds)
        .map(|_| {
            let r = rig(variant);
            let start = Instant::now();
            r.run(ops);
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Per-detector p50/p99, read from the pipeline's own
/// `server.checkin.detector.{slug}.latency` histograms after an
/// instrumented run — far more precise than differencing noisy
/// end-to-end totals, since each sample times exactly one detector.
fn detector_rows(variant: &Variant, ops: usize) -> Vec<String> {
    let r = rig(variant);
    r.run(ops);
    let snap = r.registry.snapshot();
    let mut rows = Vec::new();
    let mut quantiles = |label: &str, metric: &str| {
        let p50 = snap.quantile_ns(metric, 0.50);
        let p99 = snap.quantile_ns(metric, 0.99);
        if let (Some(p50), Some(p99)) = (p50, p99) {
            println!("  {label}: p50 {p50} ns, p99 {p99} ns");
            rows.push(format!(
                "{{\"stage\": \"{label}\", \"p50_ns\": {p50}, \"p99_ns\": {p99}}}"
            ));
        }
    };
    for slug in [
        "branded_account",
        "gps_proximity",
        "frequent_checkins",
        "superhuman_speed",
        "rapid_fire",
    ] {
        quantiles(slug, &lbsn_obs::names::server::detector_latency(slug));
    }
    quantiles("wifi-verify-stage", lbsn_obs::names::server::STAGE_VERIFY);
    rows
}

fn write_report() {
    let quick = quick();
    let (ops, rounds) = if quick { (2_000, 1) } else { (50_000, 3) };

    println!("== report: end-to-end cost per variant ({ops} check-ins x {rounds}) ==");
    let all = variants();
    let mut measured = Vec::new();
    for variant in &all {
        let ns = best_ns_per_op(variant, ops, rounds);
        println!("  {}: {ns:.1} ns/check-in", variant.name);
        measured.push((variant.name, ns));
    }
    let rows: Vec<String> = measured
        .iter()
        .map(|(name, ns)| format!("{{\"variant\": \"{name}\", \"ns_per_checkin\": {ns:.1}}}"))
        .collect();

    println!("== report: per-stage cost from pipeline histograms ({ops} check-ins) ==");
    let stages = detector_rows(all.last().unwrap(), ops);

    let indent = |rows: &[String]| {
        rows.iter()
            .map(|r| format!("    {r}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        r#"{{
  "bench": "checkin_pipeline",
  "mode": "{mode}",
  "note": "Single-thread honest workload (venue ring, user pool, 2 simulated minutes between check-ins): every detector takes its pass exit, so stages[] is steady-state per-rule cost, not rejection-path cost. stages[] comes from the pipeline's own server.checkin.detector.*.latency histograms during the full-chain+wifi-verifier run; each sample times exactly one stage, so those numbers resolve far below box noise. variants[] is the end-to-end check-in cost per pipeline configuration — on a shared box it swings +/-20% with neighbor load, so treat it as scale, not signal.",
  "variants": [
{variant_rows}
  ],
  "stages": [
{stage_rows}
  ]
}}
"#,
        mode = if quick { "quick" } else { "full" },
        variant_rows = indent(&rows),
        stage_rows = indent(&stages),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_checkin_pipeline.json"
    );
    std::fs::write(path, json).expect("write BENCH_checkin_pipeline.json");
    println!("wrote {path}");
}

fn main() {
    checkin_pipeline();
    write_report();
}
