//! The scale ladder: does the observatory's story hold as the world
//! approaches paper scale?
//!
//! Bulk-loads a synthetic population at three rungs — 10k, 100k, and
//! 1M total entities (users + venues, the paper's full population is
//! 7.49M) — then drives a fixed check-in mix through each world and
//! records, per rung:
//!
//! * `checkins_per_sec` — fixed-mix throughput after bulk load;
//! * `resident_bytes_per_user` — the deep-accounted
//!   `server.mem.bytes_per_user` gauge after a full memory sweep;
//! * `shard_skew_{users,venues}` — hottest/coldest ops ratio from the
//!   per-shard contention heatmap (registration + mix + sweep traffic).
//!
//! Writes `BENCH_scale.json` at the repo root — the committed capacity
//! trajectory. `LBSN_BENCH_QUICK=1` runs only the 10k and 100k rungs
//! with a shorter mix (CI's `scale-smoke` job); the JSON records which
//! mode produced it.
//!
//! Run with `cargo bench -p lbsn-bench --bench scale_ladder`.

use std::sync::Arc;
use std::time::Instant;

use lbsn_obs::names::server as obs_names;
use lbsn_obs::Registry;
use lbsn_server::{CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserId, VenueId};
use lbsn_sim::{Duration, SimClock};
use lbsn_workload::{plan, register_world, PopulationSpec};

/// Total entities at full scale: 1.89M users + 5.6M venues.
const FULL_ENTITIES: f64 = 7_490_000.0;

const SEED: u64 = 0x5ca1e;

fn quick() -> bool {
    std::env::var("LBSN_BENCH_QUICK").is_ok()
}

struct Rung {
    entities: u64,
    users: u64,
    venues: u64,
    load_secs: f64,
    checkins_per_sec: f64,
    hot_set_checkins_per_sec: f64,
    lock_wait_p99_ns: u64,
    bytes_per_user: f64,
    total_bytes: f64,
    side_maps_bytes: f64,
    skew_users: f64,
    skew_venues: f64,
}

/// User-pool size of the smallest rung: the hot-set mix cycles only
/// this many users so its working set matches the 10k rung's even
/// inside a 1M-entity world.
const HOT_SET_USERS: u64 = 2_523;

/// Hottest/coldest ops skew for one heat family in `snap`, 1.0 when the
/// family is absent (single-shard or untouched worlds).
fn skew(snap: &lbsn_obs::Snapshot, family: &str) -> f64 {
    snap.shard_heat
        .iter()
        .find(|h| h.family == family)
        .map_or(1.0, lbsn_obs::ShardHeatSnapshot::skew_ratio)
}

fn run_rung(entities: u64, mix_ops: u64) -> Rung {
    let scale = entities as f64 / FULL_ENTITIES;
    let spec = PopulationSpec::at_scale(scale, SEED);
    let registry = Arc::new(Registry::new());
    let server = LbsnServer::with_registry(
        SimClock::new(),
        ServerConfig::default(),
        Arc::clone(&registry),
    );

    let started = Instant::now();
    let world = plan(&spec);
    let population = register_world(&server, &world);
    let load_secs = started.elapsed().as_secs_f64();
    let users = population.users.len() as u64;
    let venues = population.venue_count;

    // Fixed mix: cycle users × a venue ring, always reporting the
    // venue's own coordinates, one virtual second per op — user/venue
    // pairs don't repeat inside the cooldown, so the accepted path runs
    // end to end every time.
    let ring = venues.min(1024);
    let mix = |user_pool: u64, ops: u64, virtual_offset: u64| {
        let mix_started = Instant::now();
        for i in 0..ops {
            let user = UserId((virtual_offset + i) % user_pool + 1);
            let venue = VenueId(i % ring + 1);
            let loc = server
                .with_venue(venue, |v| v.location)
                .expect("registered");
            server.clock().advance(Duration::secs(1));
            server
                .check_in(&CheckinRequest {
                    user,
                    venue,
                    reported_location: loc,
                    source: CheckinSource::MobileApp,
                })
                .expect("known ids");
        }
        ops as f64 / mix_started.elapsed().as_secs_f64().max(1e-9)
    };
    let checkins_per_sec = mix(users, mix_ops, 0);
    // Attribution probe: the same world, the same op count, but the
    // user cycle narrowed to the smallest rung's pool. Per-op work is
    // identical — only the user-record working set shrinks — so any
    // recovery relative to the full mix is attributable to cache
    // locality, not to anything that grows with population. (The venue
    // cycle is deliberately left at full width: the residual gap is
    // the venue-record working set, which this probe does not narrow.)
    let hot_set_checkins_per_sec = mix(users.min(HOT_SET_USERS), mix_ops, mix_ops);

    // One authoritative sweep so the gauges and occupancy columns
    // describe the final world, however the periodic sampler landed.
    server.sample_memory();
    let snap = registry.snapshot();
    Rung {
        entities,
        users,
        venues,
        load_secs,
        checkins_per_sec,
        hot_set_checkins_per_sec,
        lock_wait_p99_ns: snap
            .quantile_ns(obs_names::SHARD_LOCK_WAIT, 0.99)
            .unwrap_or(0),
        bytes_per_user: snap.gauge(obs_names::MEM_BYTES_PER_USER),
        total_bytes: snap.gauge(obs_names::MEM_TOTAL_BYTES),
        side_maps_bytes: snap.gauge(obs_names::MEM_SIDE_MAPS_BYTES),
        skew_users: skew(&snap, &obs_names::shard_heat("users")),
        skew_venues: skew(&snap, &obs_names::shard_heat("venues")),
    }
}

fn main() {
    let quick = quick();
    let rungs: &[u64] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mix_ops: u64 = if quick { 2_000 } else { 20_000 };

    let mut rows = Vec::new();
    for &entities in rungs {
        println!("== rung: {entities} entities ({mix_ops} mix ops) ==");
        let r = run_rung(entities, mix_ops);
        println!(
            "  load {:.2}s, {:.0} checkins/sec ({:.0} hot-set), lock_wait p99 {}ns, \
             {:.0} bytes/user, skew users {:.2}x venues {:.2}x",
            r.load_secs,
            r.checkins_per_sec,
            r.hot_set_checkins_per_sec,
            r.lock_wait_p99_ns,
            r.bytes_per_user,
            r.skew_users,
            r.skew_venues
        );
        rows.push(format!(
            "{{\"entities\": {}, \"users\": {}, \"venues\": {}, \"load_secs\": {:.2}, \
             \"checkins_per_sec\": {:.1}, \"hot_set_checkins_per_sec\": {:.1}, \
             \"lock_wait_p99_ns\": {}, \"resident_bytes_per_user\": {:.1}, \
             \"total_mem_bytes\": {:.0}, \"side_maps_bytes\": {:.0}, \
             \"shard_skew_users\": {:.2}, \"shard_skew_venues\": {:.2}}}",
            r.entities,
            r.users,
            r.venues,
            r.load_secs,
            r.checkins_per_sec,
            r.hot_set_checkins_per_sec,
            r.lock_wait_p99_ns,
            r.bytes_per_user,
            r.total_bytes,
            r.side_maps_bytes,
            r.skew_users,
            r.skew_venues,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"scale_ladder\",\n  \"mode\": \"{}\",\n  \"mix_ops_per_rung\": {},\n  \
         \"note\": \"Each rung bulk-loads a fresh world via lbsn-workload at \
         entities/7.49M of paper scale, runs a fixed accepted-path check-in mix, \
         then takes one full memory sweep. bytes_per_user is the deep-accounted \
         server.mem.bytes_per_user gauge; shard skew is hottest/coldest ops over \
         registration + mix + sweep traffic on 16 shards. \
         hot_set_checkins_per_sec reruns the identical mix with the user cycle \
         narrowed to the smallest rung's 2523-user pool: per-op work is unchanged, \
         only the user-record working set shrinks. On the 1M rung's throughput cliff \
         (several-fold below the 10k rung): narrowing only the user cycle recovers a \
         large multiple of the full-mix rate (the residual gap is the venue \
         working set, which the probe leaves at full width), lock_wait_p99_ns \
         stays flat across rungs (the mix is single-threaded; the sharded locks \
         are uncontended), and side_maps_bytes stays a small fraction of \
         total_mem_bytes - so the cliff is cache misses against the ~470MB \
         resident world, not lock contention, side-map growth, or \
         population-dependent per-op cost.\",\n  \"rungs\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        mix_ops,
        rows.iter()
            .map(|r| format!("    {r}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    println!("wrote {path}");
}
