//! The scale ladder: does the observatory's story hold as the world
//! approaches paper scale?
//!
//! Bulk-loads a synthetic population at four rungs — 10k, 100k, 1M,
//! and the paper's full 7.49M total entities (1.89M users + 5.6M
//! venues) — then drives a fixed check-in mix through each world and
//! records, per rung:
//!
//! * `checkins_per_sec` — fixed-mix throughput after bulk load;
//! * `resident_bytes_per_user` — the deep-accounted
//!   `server.mem.bytes_per_user` gauge after a full memory sweep;
//! * `shard_skew_{users,venues}` — hottest/coldest ops ratio from the
//!   per-shard contention heatmap (registration + mix + sweep traffic).
//!
//! Worlds land through the bulk-load path (`register_world_bulk` →
//! chunked per-shard staging, venue strings interned into per-shard
//! arenas) followed by one `compact_memory` pass, so the resident
//! numbers describe a settled world, not doubling-growth slack.
//!
//! The final (paper) rung additionally runs the Fig 3.3/3.4 crawler
//! sweep: every user profile at 100k users/h and every venue page at
//! 50k venues/h, paced in virtual time, the way the paper's crawler
//! walked the live service. The sweep's wall-clock rates say how far
//! above the paper's pacing this single-threaded server sits.
//!
//! Writes `BENCH_scale.json` at the repo root — the committed capacity
//! trajectory. `LBSN_BENCH_QUICK=1` runs the 10k and 100k rungs plus a
//! 1%-scale paper rung (74.9k entities) with a shorter mix (CI's
//! `scale-smoke` job); the JSON records which mode produced it.
//!
//! Run with `cargo bench -p lbsn-bench --bench scale_ladder`.

use std::sync::Arc;
use std::time::Instant;

use lbsn_obs::names::server as obs_names;
use lbsn_obs::Registry;
use lbsn_server::{CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserId, VenueId};
use lbsn_sim::{Duration, SimClock};
use lbsn_workload::{register_world_bulk, PopulationSpec};

/// Total entities at full scale: 1.89M users + 5.6M venues.
const FULL_ENTITIES: f64 = 7_490_000.0;

const SEED: u64 = 0x5ca1e;

/// Fig 3.3: "we can crawl all users' information once per day" at
/// roughly this API rate.
const CRAWL_USERS_PER_HOUR: u64 = 100_000;
/// Fig 3.4: venue crawl rate (venues carry more payload per fetch).
const CRAWL_VENUES_PER_HOUR: u64 = 50_000;

fn quick() -> bool {
    std::env::var("LBSN_BENCH_QUICK").is_ok()
}

struct Rung {
    entities: u64,
    users: u64,
    venues: u64,
    load_secs: f64,
    checkins_per_sec: f64,
    hot_set_checkins_per_sec: f64,
    lock_wait_p99_ns: u64,
    bytes_per_user: f64,
    total_bytes: f64,
    side_maps_bytes: f64,
    skew_users: f64,
    skew_venues: f64,
}

/// The paper-rate crawler sweep over a loaded world.
struct Crawl {
    virtual_hours: f64,
    wall_secs: f64,
    user_profiles_per_sec: f64,
    venue_pages_per_sec: f64,
    named_user_fraction: f64,
    mayored_venue_fraction: f64,
}

/// User-pool size of the smallest rung: the hot-set mix cycles only
/// this many users so its working set matches the 10k rung's even
/// inside a 1M-entity world.
const HOT_SET_USERS: u64 = 2_523;

/// Hottest/coldest ops skew for one heat family in `snap`, 1.0 when the
/// family is absent (single-shard or untouched worlds).
fn skew(snap: &lbsn_obs::Snapshot, family: &str) -> f64 {
    snap.shard_heat
        .iter()
        .find(|h| h.family == family)
        .map_or(1.0, lbsn_obs::ShardHeatSnapshot::skew_ratio)
}

/// Sweeps every user profile and venue page at the paper's crawl rates,
/// advancing the virtual clock to match the pacing (100k users/h then
/// 50k venues/h). Touches only projection accessors — `user_profile`
/// and a venue field read — the way the crawler's API calls would.
fn crawl_world(server: &LbsnServer, users: u64, venues: u64) -> Crawl {
    let wall = Instant::now();
    let mut named = 0u64;
    let mut advanced = 0u64;
    for i in 0..users {
        let due = i * 3600 / CRAWL_USERS_PER_HOUR;
        if due > advanced {
            server.clock().advance(Duration::secs(due - advanced));
            advanced = due;
        }
        let profile = server.user_profile(UserId(i + 1)).expect("registered");
        if profile.username.is_some() {
            named += 1;
        }
    }
    let user_wall = wall.elapsed().as_secs_f64();
    let mut mayored = 0u64;
    let venue_wall = Instant::now();
    let mut v_advanced = 0u64;
    for i in 0..venues {
        let due = i * 3600 / CRAWL_VENUES_PER_HOUR;
        if due > v_advanced {
            server.clock().advance(Duration::secs(due - v_advanced));
            v_advanced = due;
        }
        let has_mayor = server
            .with_venue(VenueId(i + 1), |v| {
                // The page fields a crawler parses: identity + status.
                let _ = (v.name().len(), v.address().len(), v.checkins_here);
                v.mayor.is_some()
            })
            .expect("registered");
        if has_mayor {
            mayored += 1;
        }
    }
    let venue_secs = venue_wall.elapsed().as_secs_f64();
    Crawl {
        virtual_hours: (advanced + v_advanced) as f64 / 3600.0,
        wall_secs: wall.elapsed().as_secs_f64(),
        user_profiles_per_sec: users as f64 / user_wall.max(1e-9),
        venue_pages_per_sec: venues as f64 / venue_secs.max(1e-9),
        named_user_fraction: named as f64 / users.max(1) as f64,
        mayored_venue_fraction: mayored as f64 / venues.max(1) as f64,
    }
}

fn run_rung(entities: u64, mix_ops: u64, crawl: bool) -> (Rung, Option<Crawl>) {
    let scale = entities as f64 / FULL_ENTITIES;
    let spec = PopulationSpec::at_scale(scale, SEED);
    let registry = Arc::new(Registry::new());
    let server = LbsnServer::with_registry(
        SimClock::new(),
        ServerConfig::default(),
        Arc::clone(&registry),
    );

    let started = Instant::now();
    let population = register_world_bulk(&server, &spec);
    server.compact_memory();
    let load_secs = started.elapsed().as_secs_f64();
    let users = population.users.len() as u64;
    let venues = population.venue_count;

    // Fixed mix: cycle users × a venue ring, always reporting the
    // venue's own coordinates, one virtual second per op — user/venue
    // pairs don't repeat inside the cooldown, so the accepted path runs
    // end to end every time.
    let ring = venues.min(1024);
    let mix = |user_pool: u64, ops: u64, virtual_offset: u64| {
        let mix_started = Instant::now();
        for i in 0..ops {
            let user = UserId((virtual_offset + i) % user_pool + 1);
            let venue = VenueId(i % ring + 1);
            let loc = server
                .with_venue(venue, |v| v.location)
                .expect("registered");
            server.clock().advance(Duration::secs(1));
            server
                .check_in(&CheckinRequest {
                    user,
                    venue,
                    reported_location: loc,
                    source: CheckinSource::MobileApp,
                })
                .expect("known ids");
        }
        ops as f64 / mix_started.elapsed().as_secs_f64().max(1e-9)
    };
    let checkins_per_sec = mix(users, mix_ops, 0);
    // Attribution probe: the same world, the same op count, but the
    // user cycle narrowed to the smallest rung's pool. Per-op work is
    // identical — only the user-record working set shrinks — so any
    // recovery relative to the full mix is attributable to cache
    // locality, not to anything that grows with population. (The venue
    // cycle is deliberately left at full width: the residual gap is
    // the venue-record working set, which this probe does not narrow.)
    let hot_set_checkins_per_sec = mix(users.min(HOT_SET_USERS), mix_ops, mix_ops);

    let crawl_stats = crawl.then(|| crawl_world(&server, users, venues));

    // One authoritative sweep so the gauges and occupancy columns
    // describe the final world, however the periodic sampler landed.
    server.sample_memory();
    let snap = registry.snapshot();
    let rung = Rung {
        entities,
        users,
        venues,
        load_secs,
        checkins_per_sec,
        hot_set_checkins_per_sec,
        lock_wait_p99_ns: snap
            .quantile_ns(obs_names::SHARD_LOCK_WAIT, 0.99)
            .unwrap_or(0),
        bytes_per_user: snap.gauge(obs_names::MEM_BYTES_PER_USER),
        total_bytes: snap.gauge(obs_names::MEM_TOTAL_BYTES),
        side_maps_bytes: snap.gauge(obs_names::MEM_SIDE_MAPS_BYTES),
        skew_users: skew(&snap, &obs_names::shard_heat("users")),
        skew_venues: skew(&snap, &obs_names::shard_heat("venues")),
    };
    (rung, crawl_stats)
}

fn main() {
    let quick = quick();
    // The last rung is the paper rung: full 7.49M entities (or a 1 %
    // stand-in under quick mode) plus the crawler sweep.
    let rungs: &[u64] = if quick {
        &[10_000, 100_000, 74_900]
    } else {
        &[10_000, 100_000, 1_000_000, 7_490_000]
    };
    let mix_ops: u64 = if quick { 2_000 } else { 20_000 };

    let mut rows = Vec::new();
    for (i, &entities) in rungs.iter().enumerate() {
        let is_paper_rung = i == rungs.len() - 1;
        println!(
            "== rung: {entities} entities ({mix_ops} mix ops{}) ==",
            if is_paper_rung { ", crawler sweep" } else { "" }
        );
        let (r, crawl) = run_rung(entities, mix_ops, is_paper_rung);
        println!(
            "  load {:.2}s, {:.0} checkins/sec ({:.0} hot-set), lock_wait p99 {}ns, \
             {:.0} bytes/user, skew users {:.2}x venues {:.2}x",
            r.load_secs,
            r.checkins_per_sec,
            r.hot_set_checkins_per_sec,
            r.lock_wait_p99_ns,
            r.bytes_per_user,
            r.skew_users,
            r.skew_venues
        );
        let crawl_json = match &crawl {
            Some(c) => {
                println!(
                    "  crawl: {:.1} virtual h in {:.1}s wall ({:.0} profiles/s, {:.0} pages/s)",
                    c.virtual_hours, c.wall_secs, c.user_profiles_per_sec, c.venue_pages_per_sec
                );
                format!(
                    ", \"crawl\": {{\"paced_users_per_hour\": {CRAWL_USERS_PER_HOUR}, \
                     \"paced_venues_per_hour\": {CRAWL_VENUES_PER_HOUR}, \
                     \"virtual_hours\": {:.1}, \"wall_secs\": {:.1}, \
                     \"user_profiles_per_sec\": {:.0}, \"venue_pages_per_sec\": {:.0}, \
                     \"named_user_fraction\": {:.3}, \"mayored_venue_fraction\": {:.4}}}",
                    c.virtual_hours,
                    c.wall_secs,
                    c.user_profiles_per_sec,
                    c.venue_pages_per_sec,
                    c.named_user_fraction,
                    c.mayored_venue_fraction,
                )
            }
            None => String::new(),
        };
        rows.push(format!(
            "{{\"entities\": {}, \"users\": {}, \"venues\": {}, \"load_secs\": {:.2}, \
             \"checkins_per_sec\": {:.1}, \"hot_set_checkins_per_sec\": {:.1}, \
             \"lock_wait_p99_ns\": {}, \"resident_bytes_per_user\": {:.1}, \
             \"total_mem_bytes\": {:.0}, \"side_maps_bytes\": {:.0}, \
             \"shard_skew_users\": {:.2}, \"shard_skew_venues\": {:.2}{}}}",
            r.entities,
            r.users,
            r.venues,
            r.load_secs,
            r.checkins_per_sec,
            r.hot_set_checkins_per_sec,
            r.lock_wait_p99_ns,
            r.bytes_per_user,
            r.total_bytes,
            r.side_maps_bytes,
            r.skew_users,
            r.skew_venues,
            crawl_json,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"scale_ladder\",\n  \"mode\": \"{}\",\n  \"mix_ops_per_rung\": {},\n  \
         \"note\": \"Each rung bulk-loads a fresh world via lbsn-workload's \
         register_world_bulk at entities/7.49M of paper scale (chunked per-shard \
         staging, venue strings interned into per-shard arenas, one compact_memory \
         pass), runs a fixed accepted-path check-in mix, then takes one full memory \
         sweep. bytes_per_user is the deep-accounted server.mem.bytes_per_user gauge \
         over the whole world (venues included); shard skew is hottest/coldest ops \
         over registration + mix + sweep traffic on 16 shards. \
         hot_set_checkins_per_sec reruns the identical mix with the user cycle \
         narrowed to the smallest rung's 2523-user pool: per-op work is unchanged, \
         only the user-record working set shrinks, so the remaining cliff at the big \
         rungs is cache misses against the resident world, not lock contention \
         (lock_wait_p99_ns stays flat; the mix is single-threaded) or side-map \
         growth. The last rung is the paper rung - the full 1.89M-user / 5.6M-venue \
         August-2010 population (1 % stand-in under quick mode) - and additionally \
         runs the Fig 3.3/3.4 crawler sweep: every user profile at 100k users/h and \
         every venue page at 50k venues/h, paced in virtual time; its wall rates \
         say how far above the paper's pacing the single-threaded server sits.\",\n  \
         \"rungs\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        mix_ops,
        rows.iter()
            .map(|r| format!("    {r}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    println!("wrote {path}");
}
