//! Open-loop tail latency of the batched request frontend.
//!
//! Two parts, mirroring `checkin_throughput`:
//!
//! * criterion groups (`checkin_frontend/rate-F/batch-B/depth-D`)
//!   timing one full open-loop run per iteration across the arrival
//!   rate × `batch_max` × queue-depth grid — the relative view;
//! * a report pass that calibrates the backend's batch-drain rate μ,
//!   then measures sojourn (submit→decision) p50/p99/p999 and shed
//!   ratio at 0.5×, 0.9×, and 1.2× μ, plus the contended-venue
//!   batched-vs-per-op throughput ratio, and writes
//!   `BENCH_checkin_frontend.json` at the repo root — the committed
//!   trajectory CI's `bench-smoke` job regenerates.
//!
//! Closed-loop drivers cannot overload the server (each thread waits
//! for its own previous op), so the shed path and queueing tail only
//! show up here: arrivals follow a Poisson schedule that does not slow
//! down when the server does (see [`lbsn_bench::throughput`]).
//!
//! `LBSN_BENCH_QUICK=1` shrinks arrival counts for CI smoke runs (the
//! JSON records which mode produced it).

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use lbsn_bench::throughput::{
    calibrate_drain_rate, run, run_batched, run_open_loop, OpenLoopConfig, OpenLoopResult,
    ThroughputConfig, Workload,
};
use lbsn_server::FrontendConfig;

/// Load factors relative to the calibrated drain rate μ: comfortably
/// under, near saturation, and past it.
const LOAD_FACTORS: [f64; 3] = [0.5, 0.9, 1.2];

fn quick() -> bool {
    std::env::var("LBSN_BENCH_QUICK").is_ok()
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkin_frontend");
    let arrivals = if quick() { 200 } else { 2_000 };
    if quick() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(100));
    } else {
        // One iteration is a full open-loop run with real waiting in
        // it; keep criterion's sampling budget modest.
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(8));
    }
    let mu = calibrate_drain_rate(
        &OpenLoopConfig::at_rate(1.0, 0),
        if quick() { 2_000 } else { 20_000 },
    );
    for factor in LOAD_FACTORS {
        for batch_max in [1usize, 64] {
            for queue_depth in [64usize, 1024] {
                let mut cfg = OpenLoopConfig::at_rate(mu * factor, arrivals);
                cfg.frontend = FrontendConfig {
                    workers: 4,
                    queue_depth,
                    batch_max,
                };
                group.bench_function(
                    format!("rate-{factor}x/batch-{batch_max}/depth-{queue_depth}"),
                    |b| b.iter(|| run_open_loop(&cfg)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(checkin_frontend, bench_frontend);

/// One JSON sweep row, `lead` being the sweep-specific first field
/// (e.g. `"load_factor": 0.9`).
fn sweep_row(label: &str, lead: &str, r: &OpenLoopResult) -> String {
    println!(
        "  {label}: offered {:.0}/s achieved {:.0}/s shed {:.4} p50 {}us p99 {}us p999 {}us",
        r.offered_rate_per_sec,
        r.achieved_rate_per_sec,
        r.shed_ratio,
        r.sojourn_p50_ns / 1_000,
        r.sojourn_p99_ns / 1_000,
        r.sojourn_p999_ns / 1_000,
    );
    format!(
        "{{{lead}, \"offered_rate_per_sec\": {:.1}, \"achieved_rate_per_sec\": {:.1}, \
         \"submitted\": {}, \"decided\": {}, \"shed\": {}, \"shed_ratio\": {:.4}, \
         \"sojourn_p50_ns\": {}, \"sojourn_p99_ns\": {}, \"sojourn_p999_ns\": {}}}",
        r.offered_rate_per_sec,
        r.achieved_rate_per_sec,
        r.submitted,
        r.decided,
        r.shed,
        r.shed_ratio,
        r.sojourn_p50_ns,
        r.sojourn_p99_ns,
        r.sojourn_p999_ns,
    )
}

fn write_report() {
    let quick = quick();
    let (calib_ops, arrivals, contended_ops) = if quick {
        (2_000, 1_000, 500)
    } else {
        (100_000, 100_000, 50_000)
    };
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    // Shallower queues than the default 1024: at 1.2x mu the sweep
    // should actually reach the high-water mark within the run, not
    // buffer the entire overload in 16k queue slots.
    let frontend = FrontendConfig {
        queue_depth: 256,
        ..FrontendConfig::default()
    };

    println!("== report: calibrating batch-drain rate ({calib_ops} ops) ==");
    let mu = calibrate_drain_rate(&OpenLoopConfig::at_rate(1.0, 0), calib_ops);
    println!("  drain rate: {mu:.0} checkins/sec");

    println!("== report: open-loop load sweep ({arrivals} arrivals/run) ==");
    let load_sweep: Vec<String> = LOAD_FACTORS
        .iter()
        .map(|&factor| {
            let mut cfg = OpenLoopConfig::at_rate(mu * factor, arrivals);
            cfg.frontend = frontend.clone();
            let r = run_open_loop(&cfg);
            sweep_row(
                &format!("load-{factor}x"),
                &format!("\"load_factor\": {factor}"),
                &r,
            )
        })
        .collect();

    println!("== report: batch_max sweep at 0.9x mu ==");
    let batch_sweep: Vec<String> = [1usize, 16, 64]
        .iter()
        .map(|&batch_max| {
            let mut cfg = OpenLoopConfig::at_rate(mu * 0.9, arrivals);
            cfg.frontend = FrontendConfig {
                batch_max,
                ..frontend.clone()
            };
            let r = run_open_loop(&cfg);
            sweep_row(
                &format!("batch-{batch_max}"),
                &format!("\"batch_max\": {batch_max}"),
                &r,
            )
        })
        .collect();

    println!("== report: contended-venue batched vs per-op (4 threads x {contended_ops} ops) ==");
    let contended = ThroughputConfig::pure(Workload::ContendedVenue, 4, contended_ops);
    let per_op = run(&contended).checkins_per_sec;
    let batched = run_batched(&contended, frontend.batch_max).checkins_per_sec;
    println!(
        "  per-op {per_op:.0}/s batched {batched:.0}/s ratio {:.2}",
        batched / per_op
    );

    let json = format!(
        r#"{{
  "bench": "checkin_frontend",
  "mode": "{mode}",
  "hardware": {{"cores": {cores}}},
  "note": "Open-loop Poisson arrivals against the request frontend: offered load is set by the schedule, not the server, so queueing delay and shedding are visible. Rates are expressed against the calibrated batch-drain rate mu of the same world (check_in_batch driven directly, no queue in front). Sojourn is submit-to-decision. The contended_venue comparison drives 4 threads at one shared venue: the per-op path pays a venue-shard lock acquisition per check-in, the batched path pays one per batch of batch_max.",
  "calibrated_drain_rate_per_sec": {mu:.1},
  "frontend": {{"workers": {workers}, "queue_depth": {queue_depth}, "batch_max": {batch_max}}},
  "load_sweep": [
{load_sweep}
  ],
  "batch_sweep_at_0_9x": [
{batch_sweep}
  ],
  "contended_venue_batch_vs_per_op": {{
    "threads": 4,
    "ops_per_thread": {contended_ops},
    "per_op_checkins_per_sec": {per_op:.1},
    "batched_checkins_per_sec": {batched:.1},
    "ratio": {ratio:.4}
  }}
}}
"#,
        mode = if quick { "quick" } else { "full" },
        workers = frontend.workers,
        queue_depth = frontend.queue_depth,
        batch_max = frontend.batch_max,
        load_sweep = indent(&load_sweep),
        batch_sweep = indent(&batch_sweep),
        ratio = batched / per_op,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_checkin_frontend.json"
    );
    std::fs::write(path, json).expect("write BENCH_checkin_frontend.json");
    println!("wrote {path}");
}

fn indent(rows: &[String]) -> String {
    rows.iter()
        .map(|r| format!("    {r}"))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    checkin_frontend();
    write_report();
}
