//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! Criterion measures the runtime of each configuration; the functional
//! effect of each ablation (what gets caught, how strong a signal is)
//! is printed once per group via `eprintln!` so `cargo bench` output
//! doubles as the ablation table.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lbsn_attack::{AttackSession, PacingPolicy, Schedule};
use lbsn_geo::{destination, GeoGrid, GeoPoint};
use lbsn_server::cheatercode::CheaterCodeConfig;
use lbsn_server::{LbsnServer, ServerConfig, UserSpec, VenueSpec};
use lbsn_sim::{Duration, RngStream, SimClock, Timestamp};
use lbsn_workload::PopulationSpec;

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// Which cheater-code rule catches what: replay a small population
/// under rule subsets.
fn ablation_rules(c: &mut Criterion) {
    let configs: Vec<(&str, CheaterCodeConfig)> = vec![
        ("all_rules", CheaterCodeConfig::default()),
        (
            "no_gps",
            CheaterCodeConfig {
                enable_gps: false,
                ..CheaterCodeConfig::default()
            },
        ),
        (
            "no_speed",
            CheaterCodeConfig {
                enable_speed: false,
                ..CheaterCodeConfig::default()
            },
        ),
        (
            "no_cooldown",
            CheaterCodeConfig {
                enable_cooldown: false,
                ..CheaterCodeConfig::default()
            },
        ),
        (
            "no_rapid_fire",
            CheaterCodeConfig {
                enable_rapid_fire: false,
                ..CheaterCodeConfig::default()
            },
        ),
        ("disabled", CheaterCodeConfig::disabled()),
    ];
    let plan = lbsn_workload::plan(&PopulationSpec::tiny(300, 0xAB1A));
    // Account branding off: the ablation isolates what each *rule*
    // catches per check-in (branding would re-flag everything after the
    // first ten hits regardless of which rule fired).
    let server_config = |cheater_code: CheaterCodeConfig| {
        ServerConfig::with_detectors(cheater_code.branding_threshold(None))
    };
    // Print the functional ablation once.
    for (name, config) in &configs {
        let server = LbsnServer::new(SimClock::new(), server_config(config.clone()));
        let pop = lbsn_workload::generate(&server, &plan);
        eprintln!(
            "ablation_rules: {name:<14} flagged {:>6} / {} check-ins",
            pop.stats.flagged, pop.stats.submitted
        );
    }
    let mut group = c.benchmark_group("ablation_rules");
    group.sample_size(10);
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let server = LbsnServer::new(SimClock::new(), server_config(config.clone()));
                lbsn_workload::generate(&server, &plan)
            })
        });
    }
    group.finish();
}

/// The §3.3 pacing law vs faster pacing: where detection kicks in.
fn ablation_pacing(c: &mut Criterion) {
    let paces: Vec<(&str, u64, u64)> = vec![
        // (name, min interval s, per-mile s)
        ("paper_5min_per_mile", 300, 300),
        ("2min_per_mile", 120, 120),
        ("30s_per_mile", 30, 30),
        ("5s_per_mile", 5, 5),
    ];
    let run = |min_interval: u64, per_mile: u64| {
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let tour: Vec<_> = (0..20)
            .map(|i| {
                let loc = destination(abq(), (i * 31 % 360) as f64, 1_500.0 * (i + 1) as f64);
                (
                    server.register_venue(VenueSpec::new(format!("V{i}"), loc)),
                    loc,
                )
            })
            .collect();
        let user = server.register_user(UserSpec::anonymous());
        let session = AttackSession::new(Arc::clone(&server), user);
        let schedule = Schedule::build(
            &tour,
            Timestamp(0),
            &PacingPolicy {
                min_interval: Duration::secs(min_interval),
                per_mile: Duration::secs(per_mile),
                venue_cooldown: Duration::hours(1),
            },
        );
        session.execute(&schedule)
    };
    for (name, min_interval, per_mile) in &paces {
        let report = run(*min_interval, *per_mile);
        eprintln!(
            "ablation_pacing: {name:<20} {} rewarded, {} flagged of {}",
            report.rewarded,
            report.flagged.len(),
            report.attempted
        );
    }
    let mut group = c.benchmark_group("ablation_pacing");
    group.sample_size(10);
    for (name, min_interval, per_mile) in paces {
        group.bench_function(name, |b| b.iter(|| run(min_interval, per_mile)));
    }
    group.finish();
}

/// Recent-visitor-list length vs the Fig 4.1 signal: longer lists keep
/// users visible longer and weaken the churn that separates cheaters.
fn ablation_visitor_list(c: &mut Criterion) {
    let plan = lbsn_workload::plan(&PopulationSpec::tiny(300, 0xF161));
    let signal = |len: usize| {
        let server = LbsnServer::new(
            SimClock::new(),
            ServerConfig {
                recent_visitors_len: len,
                ..ServerConfig::default()
            },
        );
        lbsn_workload::generate(&server, &plan);
        // Signal: total recent-list presence across venues.
        let mut presence = 0u64;
        server.for_each_venue(|v| presence += v.recent_visitors().len() as u64);
        presence
    };
    for len in [1usize, 5, 10, 50] {
        eprintln!(
            "ablation_visitor_list: len {len:>3} → total list presence {}",
            signal(len)
        );
    }
    let mut group = c.benchmark_group("ablation_visitor_list");
    group.sample_size(10);
    for len in [5usize, 50] {
        group.bench_function(format!("len_{len}"), |b| b.iter(|| signal(len)));
    }
    group.finish();
}

/// GeoGrid cell size vs nearest-venue query latency (the snap step of
/// every automated tour).
fn ablation_grid(c: &mut Criterion) {
    let mut rng = RngStream::from_seed(0x9A1D);
    let points: Vec<GeoPoint> = (0..50_000)
        .map(|_| {
            destination(
                abq(),
                rng.range_f64(0.0, 360.0),
                rng.range_f64(0.0, 15_000.0),
            )
        })
        .collect();
    let queries: Vec<GeoPoint> = (0..256)
        .map(|_| {
            destination(
                abq(),
                rng.range_f64(0.0, 360.0),
                rng.range_f64(0.0, 12_000.0),
            )
        })
        .collect();
    let mut group = c.benchmark_group("ablation_grid");
    for cell_m in [100.0, 500.0, 2_000.0, 10_000.0] {
        let mut grid = GeoGrid::new(cell_m);
        for (i, p) in points.iter().enumerate() {
            grid.insert(*p, i);
        }
        group.bench_function(format!("nearest_cell_{cell_m}m"), |b| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                grid.nearest(queries[i % queries.len()])
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =
    ablation_rules,
    ablation_pacing,
    ablation_visitor_list,
    ablation_grid,
);
criterion_main!(ablations);
