//! Multi-threaded check-in throughput driver.
//!
//! Drives the server's check-in pipeline from N worker threads and
//! reports aggregate checkins/sec — the measurement behind the
//! committed `BENCH_checkin_throughput.json` trajectory and the
//! `checkin_throughput` criterion bench. Two workload shapes:
//!
//! * [`Workload::DistinctUsers`] — every thread owns a disjoint user
//!   pool and venue ring, so threads only ever meet on *shard* locks,
//!   never on an entity. This is the scaling headline: with the
//!   sharded engine the aggregate rate should grow with threads.
//! * [`Workload::ContendedVenue`] — every thread hammers one shared
//!   venue (distinct users). All writers serialize on that venue's
//!   shard; the floor the sharding cannot lift.
//!
//! Workload parameters are chosen so *every* check-in passes the
//! cheater code (reported fix = venue's own location; the shared
//! virtual clock advances ~2 min per op, defeating cooldown,
//! rapid-fire, and superhuman-speed windows), which the driver asserts
//! via the server's accepted counter — a run that trips a rule is a
//! bug in the driver, not noise in the number.
//!
//! An optional per-op [`ThroughputConfig::think_time`] models the
//! client round-trip the paper's crawler masked with 14–16 threads per
//! machine (§3.2, Fig 3.3/3.4): with real sleep dominating each op,
//! thread scaling measures latency overlap rather than raw CPU — the
//! regime a 1-core CI box can still demonstrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use lbsn_geo::{destination, GeoPoint};
use lbsn_obs::Registry;
use lbsn_server::{
    CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserId, UserSpec, VenueId, VenueSpec,
};
use lbsn_sim::SimClock;
use serde::Serialize;

/// Which contention shape the worker threads generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Disjoint per-thread user pools and venue rings: threads share
    /// shards, never entities.
    DistinctUsers,
    /// One venue shared by every thread (users stay disjoint): all
    /// writers serialize on a single venue shard.
    ContendedVenue,
}

impl Workload {
    /// Stable label used in bench ids and the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            Workload::DistinctUsers => "distinct-users",
            Workload::ContendedVenue => "contended-venue",
        }
    }
}

/// Parameters for one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Check-ins each thread submits.
    pub ops_per_thread: usize,
    /// Contention shape.
    pub workload: Workload,
    /// Per-op client think time (real sleep). `None` measures raw
    /// pipeline cost.
    pub think_time: Option<Duration>,
    /// Users registered per thread.
    pub users_per_thread: usize,
    /// Venues per thread ring (ignored by [`Workload::ContendedVenue`]).
    pub venues_per_thread: usize,
    /// Server lock-stripe count.
    pub shards: usize,
}

impl ThroughputConfig {
    /// A pure-CPU run (no think time) of `ops` check-ins per thread.
    pub fn pure(workload: Workload, threads: usize, ops: usize) -> Self {
        ThroughputConfig {
            threads,
            ops_per_thread: ops,
            workload,
            think_time: None,
            users_per_thread: 64,
            venues_per_thread: 16,
            shards: 16,
        }
    }
}

/// The outcome of one throughput run.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputResult {
    /// Worker thread count.
    pub threads: usize,
    /// Total check-ins submitted across all threads.
    pub total_ops: u64,
    /// Wall-clock seconds from barrier release to last thread done.
    pub elapsed_secs: f64,
    /// Aggregate throughput.
    pub checkins_per_sec: f64,
}

/// One worker thread's assignment: its private user pool and the
/// (venue, location) ring it cycles through.
type ThreadPlan = (Vec<UserId>, Vec<(VenueId, GeoPoint)>);

/// Runs one throughput measurement.
///
/// # Panics
///
/// If any check-in errors or is flagged — the workload is constructed
/// so every op passes the cheater code, and the accepted counter is
/// asserted to prove it.
pub fn run(config: &ThroughputConfig) -> ThroughputResult {
    let registry = Arc::new(Registry::new());
    let server = Arc::new(LbsnServer::with_registry(
        SimClock::new(),
        ServerConfig {
            shards: config.shards,
            ..ServerConfig::default()
        },
        Arc::clone(&registry),
    ));
    let abq = GeoPoint::new(35.0844, -106.6504).unwrap();

    // Per-thread plans: disjoint users; venues disjoint rings or one
    // shared spot depending on workload.
    let mut plans: Vec<ThreadPlan> = Vec::new();
    let shared_venue = (server.register_venue(VenueSpec::new("Shared", abq)), abq);
    for t in 0..config.threads {
        let users: Vec<UserId> = (0..config.users_per_thread)
            .map(|_| server.register_user(UserSpec::anonymous()))
            .collect();
        let venues: Vec<(VenueId, GeoPoint)> = match config.workload {
            Workload::ContendedVenue => vec![shared_venue],
            Workload::DistinctUsers => (0..config.venues_per_thread)
                .map(|i| {
                    // A tight ring per thread (~≤1 km spread): any
                    // consecutive same-user hop stays far under the
                    // 40 m/s speed bound at 2-min virtual gaps.
                    let loc = destination(
                        abq,
                        ((t * 37 + i * 11) % 360) as f64,
                        100.0 + 50.0 * (i % 16) as f64,
                    );
                    (
                        server.register_venue(VenueSpec::new(format!("T{t}V{i}"), loc)),
                        loc,
                    )
                })
                .collect(),
        };
        plans.push((users, venues));
    }

    let barrier = Arc::new(Barrier::new(config.threads + 1));
    let rejected = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for (users, venues) in plans {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        let rejected = Arc::clone(&rejected);
        let ops = config.ops_per_thread;
        let think = config.think_time;
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..ops {
                let user = users[i % users.len()];
                let (venue, loc) = venues[(i / users.len()) % venues.len()];
                // ~2 virtual minutes per op: clears the 1 h same-venue
                // cooldown long before any (user, venue) pair recurs
                // and keeps rapid-fire intervals far above 1 min.
                server.clock().advance(lbsn_sim::Duration::secs(121));
                let out = server
                    .check_in(&CheckinRequest {
                        user,
                        venue,
                        reported_location: loc,
                        source: CheckinSource::MobileApp,
                    })
                    .expect("registered ids");
                if !out.rewarded() {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(d) = think {
                    std::thread::sleep(d);
                }
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let elapsed = start.elapsed();

    let total_ops = (config.threads * config.ops_per_thread) as u64;
    assert_eq!(
        rejected.load(Ordering::Relaxed),
        0,
        "throughput workload must not trip the cheater code"
    );
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(lbsn_obs::names::server::ACCEPTED),
        total_ops,
        "accepted counter must equal submitted ops"
    );
    let secs = elapsed.as_secs_f64();
    ThroughputResult {
        threads: config.threads,
        total_ops,
        elapsed_secs: secs,
        checkins_per_sec: total_ops as f64 / secs.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_users_run_is_flag_free() {
        let r = run(&ThroughputConfig::pure(Workload::DistinctUsers, 2, 300));
        assert_eq!(r.total_ops, 600);
        assert!(r.checkins_per_sec > 0.0);
    }

    #[test]
    fn contended_venue_run_is_flag_free() {
        let r = run(&ThroughputConfig::pure(Workload::ContendedVenue, 4, 200));
        assert_eq!(r.total_ops, 800);
        assert!(r.checkins_per_sec > 0.0);
    }

    #[test]
    fn think_time_bounds_single_thread_rate() {
        let mut cfg = ThroughputConfig::pure(Workload::DistinctUsers, 1, 20);
        cfg.think_time = Some(Duration::from_millis(2));
        let r = run(&cfg);
        // 20 ops × ≥2 ms sleep: the run cannot beat 500 ops/sec.
        assert!(r.checkins_per_sec < 600.0, "got {}", r.checkins_per_sec);
    }
}
