//! Multi-threaded check-in throughput driver.
//!
//! Drives the server's check-in pipeline from N worker threads and
//! reports aggregate checkins/sec — the measurement behind the
//! committed `BENCH_checkin_throughput.json` trajectory and the
//! `checkin_throughput` criterion bench. Two workload shapes:
//!
//! * [`Workload::DistinctUsers`] — every thread owns a disjoint user
//!   pool and venue ring, so threads only ever meet on *shard* locks,
//!   never on an entity. This is the scaling headline: with the
//!   sharded engine the aggregate rate should grow with threads.
//! * [`Workload::ContendedVenue`] — every thread hammers one shared
//!   venue (distinct users). All writers serialize on that venue's
//!   shard; the floor the sharding cannot lift.
//!
//! Workload parameters are chosen so *every* check-in passes the
//! cheater code (reported fix = venue's own location; the shared
//! virtual clock advances ~2 min per op, defeating cooldown,
//! rapid-fire, and superhuman-speed windows), which the driver asserts
//! via the server's accepted counter — a run that trips a rule is a
//! bug in the driver, not noise in the number.
//!
//! An optional per-op [`ThroughputConfig::think_time`] models the
//! client round-trip the paper's crawler masked with 14–16 threads per
//! machine (§3.2, Fig 3.3/3.4): with real sleep dominating each op,
//! thread scaling measures latency overlap rather than raw CPU — the
//! regime a 1-core CI box can still demonstrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use lbsn_geo::{destination, GeoPoint};
use lbsn_obs::Registry;
use lbsn_server::{
    CheckinRequest, CheckinSource, FrontendConfig, LbsnServer, RequestFrontend, ServerConfig,
    UserId, UserSpec, VenueId, VenueSpec,
};
use lbsn_sim::{RngStream, SimClock};
use serde::Serialize;

/// Which contention shape the worker threads generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Disjoint per-thread user pools and venue rings: threads share
    /// shards, never entities.
    DistinctUsers,
    /// One venue shared by every thread (users stay disjoint): all
    /// writers serialize on a single venue shard.
    ContendedVenue,
}

impl Workload {
    /// Stable label used in bench ids and the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            Workload::DistinctUsers => "distinct-users",
            Workload::ContendedVenue => "contended-venue",
        }
    }
}

/// Parameters for one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Check-ins each thread submits.
    pub ops_per_thread: usize,
    /// Contention shape.
    pub workload: Workload,
    /// Per-op client think time (real sleep). `None` measures raw
    /// pipeline cost.
    pub think_time: Option<Duration>,
    /// Users registered per thread.
    pub users_per_thread: usize,
    /// Venues per thread ring (ignored by [`Workload::ContendedVenue`]).
    pub venues_per_thread: usize,
    /// Server lock-stripe count.
    pub shards: usize,
}

impl ThroughputConfig {
    /// A pure-CPU run (no think time) of `ops` check-ins per thread.
    pub fn pure(workload: Workload, threads: usize, ops: usize) -> Self {
        ThroughputConfig {
            threads,
            ops_per_thread: ops,
            workload,
            think_time: None,
            users_per_thread: 64,
            venues_per_thread: 16,
            shards: 16,
        }
    }
}

/// The outcome of one throughput run.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputResult {
    /// Worker thread count.
    pub threads: usize,
    /// Total check-ins submitted across all threads.
    pub total_ops: u64,
    /// Wall-clock seconds from barrier release to last thread done.
    pub elapsed_secs: f64,
    /// Aggregate throughput.
    pub checkins_per_sec: f64,
}

/// One worker thread's assignment: its private user pool and the
/// (venue, location) ring it cycles through.
type ThreadPlan = (Vec<UserId>, Vec<(VenueId, GeoPoint)>);

/// Builds the server and per-thread plans one throughput run drives.
fn build_world(config: &ThroughputConfig) -> (Arc<Registry>, Arc<LbsnServer>, Vec<ThreadPlan>) {
    let registry = Arc::new(Registry::new());
    let server = Arc::new(LbsnServer::with_registry(
        SimClock::new(),
        ServerConfig {
            shards: config.shards,
            ..ServerConfig::default()
        },
        Arc::clone(&registry),
    ));
    let abq = GeoPoint::new(35.0844, -106.6504).unwrap();

    // Per-thread plans: disjoint users; venues disjoint rings or one
    // shared spot depending on workload.
    let mut plans: Vec<ThreadPlan> = Vec::new();
    let shared_venue = (server.register_venue(VenueSpec::new("Shared", abq)), abq);
    for t in 0..config.threads {
        let users: Vec<UserId> = (0..config.users_per_thread)
            .map(|_| server.register_user(UserSpec::anonymous()))
            .collect();
        let venues: Vec<(VenueId, GeoPoint)> = match config.workload {
            Workload::ContendedVenue => vec![shared_venue],
            Workload::DistinctUsers => (0..config.venues_per_thread)
                .map(|i| {
                    // A tight ring per thread (~≤1 km spread): any
                    // consecutive same-user hop stays far under the
                    // 40 m/s speed bound at 2-min virtual gaps.
                    let loc = destination(
                        abq,
                        ((t * 37 + i * 11) % 360) as f64,
                        100.0 + 50.0 * (i % 16) as f64,
                    );
                    (
                        server.register_venue(VenueSpec::new(format!("T{t}V{i}"), loc)),
                        loc,
                    )
                })
                .collect(),
        };
        plans.push((users, venues));
    }
    (registry, server, plans)
}

/// The `i`-th request of a thread plan — the same op sequence whether
/// the thread submits per-op or in batches.
fn plan_request(plan: &ThreadPlan, i: usize) -> CheckinRequest {
    let (users, venues) = plan;
    let user = users[i % users.len()];
    let (venue, loc) = venues[(i / users.len()) % venues.len()];
    CheckinRequest {
        user,
        venue,
        reported_location: loc,
        source: CheckinSource::MobileApp,
    }
}

/// Runs one throughput measurement.
///
/// # Panics
///
/// If any check-in errors or is flagged — the workload is constructed
/// so every op passes the cheater code, and the accepted counter is
/// asserted to prove it.
pub fn run(config: &ThroughputConfig) -> ThroughputResult {
    let (registry, server, plans) = build_world(config);

    let barrier = Arc::new(Barrier::new(config.threads + 1));
    let rejected = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for plan in plans {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        let rejected = Arc::clone(&rejected);
        let ops = config.ops_per_thread;
        let think = config.think_time;
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..ops {
                // ~2 virtual minutes per op: clears the 1 h same-venue
                // cooldown long before any (user, venue) pair recurs
                // and keeps rapid-fire intervals far above 1 min.
                server.clock().advance(lbsn_sim::Duration::secs(121));
                let out = server
                    .check_in(&plan_request(&plan, i))
                    .expect("registered ids");
                if !out.rewarded() {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(d) = think {
                    std::thread::sleep(d);
                }
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let elapsed = start.elapsed();

    let total_ops = (config.threads * config.ops_per_thread) as u64;
    assert_eq!(
        rejected.load(Ordering::Relaxed),
        0,
        "throughput workload must not trip the cheater code"
    );
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(lbsn_obs::names::server::ACCEPTED),
        total_ops,
        "accepted counter must equal submitted ops"
    );
    let secs = elapsed.as_secs_f64();
    ThroughputResult {
        threads: config.threads,
        total_ops,
        elapsed_secs: secs,
        checkins_per_sec: total_ops as f64 / secs.max(1e-9),
    }
}

/// Like [`run`], but each thread admits its op stream through
/// [`LbsnServer::check_in_batch`] in chunks of `batch_max` — the same
/// requests in the same order, so the accepted-counter assertion holds
/// identically. The interesting comparison is `ContendedVenue`: the
/// per-op path pays a venue-shard lock acquisition per check-in, the
/// batched path pays one per batch.
pub fn run_batched(config: &ThroughputConfig, batch_max: usize) -> ThroughputResult {
    assert!(batch_max >= 1, "batch_max must be at least 1");
    let (registry, server, plans) = build_world(config);

    let barrier = Arc::new(Barrier::new(config.threads + 1));
    let rejected = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for plan in plans {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        let rejected = Arc::clone(&rejected);
        let ops = config.ops_per_thread;
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            let mut i = 0;
            while i < ops {
                let len = batch_max.min(ops - i);
                // Hoist the per-op virtual-time advances to the batch
                // boundary. Always advance a full batch's worth: a
                // short tail batch would otherwise leave same-user
                // gaps inside the 1 h cooldown and trip TooFrequent.
                server
                    .clock()
                    .advance(lbsn_sim::Duration::secs(121 * batch_max as u64));
                let reqs: Vec<CheckinRequest> =
                    (i..i + len).map(|j| plan_request(&plan, j)).collect();
                for out in server.check_in_batch(&reqs) {
                    if !out.expect("registered ids").rewarded() {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                i += len;
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let elapsed = start.elapsed();

    let total_ops = (config.threads * config.ops_per_thread) as u64;
    assert_eq!(
        rejected.load(Ordering::Relaxed),
        0,
        "batched throughput workload must not trip the cheater code"
    );
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(lbsn_obs::names::server::ACCEPTED),
        total_ops,
        "accepted counter must equal submitted ops"
    );
    let secs = elapsed.as_secs_f64();
    ThroughputResult {
        threads: config.threads,
        total_ops,
        elapsed_secs: secs,
        checkins_per_sec: total_ops as f64 / secs.max(1e-9),
    }
}

// ---------------------------------------------------------------------
// Open-loop arrivals: offered load is set by a Poisson process, not by
// how fast the server drains — the regime where queueing delay and
// shedding become visible. A closed-loop driver can never overload the
// server (each thread waits for its previous op); an open-loop one
// keeps submitting on schedule and lets the frontend queue absorb,
// delay, or shed the excess.
// ---------------------------------------------------------------------

/// Parameters for one open-loop run against the request frontend.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target mean arrival rate (Poisson, exponential inter-arrivals).
    pub arrival_rate_per_sec: f64,
    /// Total submissions to generate.
    pub arrivals: usize,
    /// Frontend under test (workers, queue depth, batch size).
    pub frontend: FrontendConfig,
    /// Server lock-stripe count.
    pub shards: usize,
    /// Registered user pool the arrivals cycle through.
    pub users: usize,
    /// Venue ring the arrivals cycle through.
    pub venues: usize,
    /// Root seed for the inter-arrival stream.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// An open-loop run at `rate` arrivals/sec with default topology.
    pub fn at_rate(rate: f64, arrivals: usize) -> Self {
        OpenLoopConfig {
            arrival_rate_per_sec: rate,
            arrivals,
            frontend: FrontendConfig::default(),
            shards: 16,
            users: 256,
            venues: 64,
            seed: 0x0b5e_1e55,
        }
    }
}

/// The outcome of one open-loop run.
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopResult {
    /// The rate the Poisson schedule aimed for.
    pub offered_rate_per_sec: f64,
    /// The rate the arrival thread actually sustained (submissions over
    /// the submission window). Falls below offered when inter-arrival
    /// gaps get shorter than the submit path itself.
    pub achieved_rate_per_sec: f64,
    /// Submissions generated.
    pub submitted: u64,
    /// Submissions decided by the pipeline.
    pub decided: u64,
    /// Submissions shed at the queue high-water mark.
    pub shed: u64,
    /// `shed / submitted`.
    pub shed_ratio: f64,
    /// Sojourn (submit→decision) quantiles over decided ops, in ns.
    pub sojourn_p50_ns: u64,
    /// 99th percentile sojourn.
    pub sojourn_p99_ns: u64,
    /// 99.9th percentile sojourn.
    pub sojourn_p999_ns: u64,
    /// Wall-clock seconds from first arrival to full drain.
    pub elapsed_secs: f64,
}

/// Builds the single-pool world the open-loop driver submits against:
/// one venue ring shared by one user pool, every fix at the venue, 2
/// virtual minutes per arrival — flag-free by the same argument as the
/// closed-loop workloads.
fn open_loop_world(cfg: &OpenLoopConfig) -> (Arc<Registry>, Arc<LbsnServer>, ThreadPlan) {
    let registry = Arc::new(Registry::new());
    let server = Arc::new(LbsnServer::with_registry(
        SimClock::new(),
        ServerConfig {
            shards: cfg.shards,
            ..ServerConfig::default()
        },
        Arc::clone(&registry),
    ));
    let abq = GeoPoint::new(35.0844, -106.6504).unwrap();
    let users: Vec<UserId> = (0..cfg.users)
        .map(|_| server.register_user(UserSpec::anonymous()))
        .collect();
    let venues: Vec<(VenueId, GeoPoint)> = (0..cfg.venues)
        .map(|i| {
            let loc = destination(abq, ((i * 11) % 360) as f64, 100.0 + 50.0 * (i % 16) as f64);
            (
                server.register_venue(VenueSpec::new(format!("OL{i}"), loc)),
                loc,
            )
        })
        .collect();
    (registry, server, (users, venues))
}

/// Runs one open-loop measurement: a single arrival thread submits on a
/// Poisson schedule (spin-waiting between arrivals — sleep granularity
/// is far too coarse at interesting rates), tickets are dropped (the
/// worker records sojourn at decision time regardless), and the run
/// ends once the frontend has fully drained.
pub fn run_open_loop(cfg: &OpenLoopConfig) -> OpenLoopResult {
    assert!(
        cfg.arrival_rate_per_sec > 0.0,
        "arrival rate must be positive"
    );
    let (registry, server, plan) = open_loop_world(cfg);
    let frontend = RequestFrontend::new(Arc::clone(&server), cfg.frontend.clone());
    let mut arrivals = RngStream::from_seed(cfg.seed).fork("open-loop-arrivals");

    // Warmup outside the measurement: worker-thread spawn, first-touch
    // allocations, and branch warm-up otherwise land on the first few
    // hundred sojourn samples and smear the low-rate runs' tails.
    // Counters and sketches reset to zero afterwards, so conservation
    // below still balances.
    for i in 0..(cfg.arrivals / 10).clamp(64, 2_000) {
        server.clock().advance(lbsn_sim::Duration::secs(121));
        let _ = frontend.submit(plan_request(&plan, i));
    }
    frontend.quiesce();
    registry.reset();

    let start = Instant::now();
    let mut next = 0.0f64; // seconds since start of the next arrival
    for i in 0..cfg.arrivals {
        // Exponential inter-arrival gap; 1 - U keeps ln() finite.
        next += -(1.0 - arrivals.next_f64()).ln() / cfg.arrival_rate_per_sec;
        while start.elapsed().as_secs_f64() < next {
            std::hint::spin_loop();
        }
        server.clock().advance(lbsn_sim::Duration::secs(121));
        // SubmitOutcome is deliberately unused: enqueued tickets are
        // dropped (sojourn is recorded worker-side) and sheds are
        // counted by the frontend's own metrics.
        let _ = frontend.submit(plan_request(&plan, i));
    }
    let submit_window = start.elapsed().as_secs_f64();
    frontend.quiesce();
    let elapsed = start.elapsed().as_secs_f64();
    frontend.shutdown();

    let snap = registry.snapshot();
    let submitted = snap.counter(lbsn_obs::names::server::FRONTEND_SUBMITTED);
    let decided = snap.counter(lbsn_obs::names::server::FRONTEND_DECIDED);
    let shed = snap.counter(lbsn_obs::names::server::FRONTEND_SHED);
    assert_eq!(submitted, cfg.arrivals as u64, "every arrival submitted");
    assert_eq!(decided + shed, submitted, "frontend conservation");
    let q = |p: f64| {
        snap.quantile_ns(lbsn_obs::names::server::FRONTEND_SOJOURN, p)
            .unwrap_or(0)
    };
    OpenLoopResult {
        offered_rate_per_sec: cfg.arrival_rate_per_sec,
        achieved_rate_per_sec: submitted as f64 / submit_window.max(1e-9),
        submitted,
        decided,
        shed,
        shed_ratio: shed as f64 / submitted.max(1) as f64,
        sojourn_p50_ns: q(0.5),
        sojourn_p99_ns: q(0.99),
        sojourn_p999_ns: q(0.999),
        elapsed_secs: elapsed,
    }
}

/// Estimates the backend's batch-drain service rate (ops/sec): the
/// saturation point μ the open-loop sweep expresses its arrival rates
/// against (0.5×, 0.9×, 1.2×). Measured by driving `check_in_batch`
/// directly — no queue in front — over the same world the open-loop
/// run uses.
pub fn calibrate_drain_rate(cfg: &OpenLoopConfig, ops: usize) -> f64 {
    let (_registry, server, plan) = open_loop_world(cfg);
    let batch_max = cfg.frontend.batch_max.max(1);
    let start = Instant::now();
    let mut i = 0;
    while i < ops {
        let len = batch_max.min(ops - i);
        // Full-batch advance even on the tail: see run_batched.
        server
            .clock()
            .advance(lbsn_sim::Duration::secs(121 * batch_max as u64));
        let reqs: Vec<CheckinRequest> = (i..i + len).map(|j| plan_request(&plan, j)).collect();
        for out in server.check_in_batch(&reqs) {
            out.expect("registered ids");
        }
        i += len;
    }
    ops as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_users_run_is_flag_free() {
        let r = run(&ThroughputConfig::pure(Workload::DistinctUsers, 2, 300));
        assert_eq!(r.total_ops, 600);
        assert!(r.checkins_per_sec > 0.0);
    }

    #[test]
    fn contended_venue_run_is_flag_free() {
        let r = run(&ThroughputConfig::pure(Workload::ContendedVenue, 4, 200));
        assert_eq!(r.total_ops, 800);
        assert!(r.checkins_per_sec > 0.0);
    }

    #[test]
    fn batched_run_is_flag_free() {
        let r = run_batched(
            &ThroughputConfig::pure(Workload::ContendedVenue, 2, 300),
            16,
        );
        assert_eq!(r.total_ops, 600);
        assert!(r.checkins_per_sec > 0.0);
    }

    #[test]
    fn open_loop_below_saturation_sheds_nothing() {
        // 500/s against a backend that drains tens of thousands per
        // second: the queue never builds, nothing sheds, and every
        // decision records a sojourn sample.
        let r = run_open_loop(&OpenLoopConfig::at_rate(500.0, 200));
        assert_eq!(r.submitted, 200);
        assert_eq!(r.decided, 200);
        assert_eq!(r.shed, 0);
        assert!(r.sojourn_p99_ns > 0);
        assert!(r.sojourn_p50_ns <= r.sojourn_p999_ns);
    }

    #[test]
    fn open_loop_overload_sheds_and_conserves() {
        // A one-deep queue per shard and a crawl-speed drain (the
        // worker still decides at full speed, but arrivals at 50k/s
        // against depth 1 guarantee overflow).
        let mut cfg = OpenLoopConfig::at_rate(50_000.0, 2_000);
        cfg.frontend = FrontendConfig {
            workers: 1,
            queue_depth: 1,
            batch_max: 1,
        };
        let r = run_open_loop(&cfg);
        assert_eq!(r.decided + r.shed, r.submitted);
        assert!(r.shed > 0, "depth-1 queues at 50k/s must shed");
    }

    #[test]
    fn calibration_rate_is_positive() {
        let rate = calibrate_drain_rate(&OpenLoopConfig::at_rate(1.0, 0), 500);
        assert!(rate > 0.0);
    }

    #[test]
    fn think_time_bounds_single_thread_rate() {
        let mut cfg = ThroughputConfig::pure(Workload::DistinctUsers, 1, 20);
        cfg.think_time = Some(Duration::from_millis(2));
        let r = run(&cfg);
        // 20 ops × ≥2 ms sleep: the run cannot beat 500 ops/sec.
        assert!(r.checkins_per_sec < 600.0, "got {}", r.checkins_per_sec);
    }
}
