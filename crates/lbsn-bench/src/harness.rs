//! The shared experiment test bed: generate → serve → crawl.

use std::sync::Arc;

use lbsn_crawler::{
    CrawlDatabase, CrawlTarget, CrawlerConfig, MultiThreadCrawler, SimulatedHttp,
    SimulatedHttpConfig,
};
use lbsn_obs::{Registry, Snapshot};
use lbsn_server::web::WebFrontend;
use lbsn_server::{LbsnServer, ServerConfig};
use lbsn_sim::SimClock;
use lbsn_workload::{Population, PopulationPlan, PopulationSpec};

/// A fully stood-up reproduction environment:
///
/// 1. a synthetic population generated through the real server (cheater
///    code and rewards live);
/// 2. the public web frontend over that server;
/// 3. a completed crawl of every user and venue page into the analysis
///    database — the paper's vantage point.
pub struct TestBed {
    /// The live service.
    pub server: Arc<LbsnServer>,
    /// The population plan (venues, users, events).
    pub plan: PopulationPlan,
    /// Ground truth.
    pub population: Population,
    /// The public frontend.
    pub web: WebFrontend,
    /// The crawled database, aggregates recomputed.
    pub db: Arc<CrawlDatabase>,
    /// The bed's private metric registry: the server pipeline and the
    /// stand-up crawl report here, isolated from other beds and from
    /// the process-wide registry.
    pub registry: Arc<Registry>,
}

impl TestBed {
    /// Builds a test bed at a population scale (fraction of the
    /// August-2010 production numbers).
    pub fn at_scale(scale: f64, seed: u64) -> TestBed {
        TestBed::from_spec(&PopulationSpec::at_scale(scale, seed))
    }

    /// Builds a test bed from an explicit spec.
    pub fn from_spec(spec: &PopulationSpec) -> TestBed {
        let clock = SimClock::new();
        let registry = Arc::new(Registry::new());
        let server = Arc::new(LbsnServer::with_registry(
            clock,
            ServerConfig::default(),
            Arc::clone(&registry),
        ));
        let plan = lbsn_workload::plan(spec);
        let population = lbsn_workload::generate(&server, &plan);
        let web = WebFrontend::new(Arc::clone(&server));
        let db = crawl_everything_with_registry(&web, Arc::clone(&registry));
        TestBed {
            server,
            plan,
            population,
            web,
            db,
            registry,
        }
    }

    /// The ground-truth cheater ID set (numeric, for the classifier).
    pub fn cheater_ids(&self) -> std::collections::HashSet<u64> {
        self.population
            .cheater_ids()
            .into_iter()
            .map(|id| id.value())
            .collect()
    }

    /// Captures the bed's registry — check-in stage latencies, flag
    /// counters, crawler counters — as plain data.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

/// Crawls every user and venue page of a frontend into a fresh database
/// and recomputes the derived aggregates — the full §3.2 pipeline with
/// zero latency. Crawl metrics go to the process-wide registry.
pub fn crawl_everything(web: &WebFrontend) -> Arc<CrawlDatabase> {
    crawl_everything_with_registry(web, lbsn_obs::global())
}

/// [`crawl_everything`], reporting crawl metrics into an injected
/// registry.
pub fn crawl_everything_with_registry(
    web: &WebFrontend,
    registry: Arc<Registry>,
) -> Arc<CrawlDatabase> {
    let db = Arc::new(CrawlDatabase::new());
    let http = SimulatedHttp::new(web.clone(), SimulatedHttpConfig::default());
    for target in [CrawlTarget::Users, CrawlTarget::Venues] {
        let crawler = MultiThreadCrawler::with_registry(
            http.clone(),
            Arc::clone(&db),
            CrawlerConfig {
                threads: 8,
                target,
                ..CrawlerConfig::default()
            },
            Arc::clone(&registry),
        );
        crawler.run();
    }
    db.recompute_aggregates();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_stands_up_end_to_end() {
        let bed = TestBed::from_spec(&PopulationSpec::tiny(600, 17));
        assert_eq!(bed.db.user_count() as u64, bed.server.user_count());
        assert_eq!(bed.db.venue_count() as u64, bed.server.venue_count());
        assert!(bed.db.recent_checkin_count() > 0);
        assert!(!bed.cheater_ids().is_empty());
        // Crawled totals match server truth for a sample user.
        let truth = &bed.population.users[0];
        let crawled = bed.db.user(truth.id.value()).unwrap();
        let server_total = bed
            .server
            .with_user(truth.id, |u| u.total_checkins)
            .unwrap();
        assert_eq!(crawled.total_checkins, server_total);
    }
}
