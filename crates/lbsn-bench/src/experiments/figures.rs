//! E5–E8: the §4 evaluation figures and statistics.

use std::path::Path;

use lbsn_analysis::{
    badges_vs_total, heavy_hitters_split_at, population_summary, recent_vs_total, user_map,
    CheaterClassifier,
};
use lbsn_workload::Archetype;

use crate::harness::TestBed;
use crate::report::{write_csv, Experiment};

/// E5 (Fig 4.1): average recent check-ins vs total check-ins.
///
/// Shape to reproduce: rising with totals, then a plateau (recent-list
/// presence tracks *distinct venues*, which grows sub-linearly), with
/// anomalously high values for some heavy users — the suspected
/// cheaters.
pub fn e05_recent_vs_total(bed: &TestBed, output_dir: &Path) -> Experiment {
    let mut exp = Experiment::new("E5", "Recent check-ins vs total check-ins", "Fig 4.1");
    let curve = recent_vs_total(&bed.db, 50, 2_000);
    let _ = write_csv(
        output_dir.join("e5_recent_vs_total.csv"),
        "total_checkins,avg_recent,count",
        curve
            .iter()
            .map(|p| format!("{},{:.2},{}", p.total_checkins, p.average, p.count)),
    );

    // Coverage: the ≤2000 cut covers virtually everyone.
    let mut over_2000 = 0u64;
    let mut total_users = 0u64;
    bed.db.for_each_user(|u| {
        total_users += 1;
        if u.total_checkins > 2_000 {
            over_2000 += 1;
        }
    });
    let coverage = 1.0 - over_2000 as f64 / total_users.max(1) as f64;
    exp.row(
        "users with ≤2000 total check-ins",
        "99.98 %",
        format!("{:.2} %", coverage * 100.0),
        coverage > 0.995,
    );

    // Shape: low-activity users have low recent counts…
    let low = curve
        .iter()
        .filter(|p| p.total_checkins <= 100)
        .map(|p| p.average)
        .fold(f64::NAN, f64::max);
    // …and past 500 totals the curve is meaningfully higher.
    let plateau: Vec<f64> = curve
        .iter()
        .filter(|p| p.total_checkins > 500)
        .map(|p| p.average)
        .collect();
    let plateau_avg = plateau.iter().sum::<f64>() / plateau.len().max(1) as f64;
    exp.row(
        "avg recent check-ins for users >500 totals",
        "≈100",
        format!("{plateau_avg:.0}"),
        plateau_avg > 30.0,
    );
    exp.row(
        "curve rises from low-activity levels",
        "monotone-ish rise to the plateau",
        format!("≤100-totals max {low:.0} vs plateau {plateau_avg:.0}"),
        plateau_avg > low * 0.8 && low < plateau_avg * 1.5,
    );

    // The cheater spike: undetected cheaters sit far above honest users
    // of the same total-check-in class.
    let spike = cheater_vs_honest_recent_ratio(bed);
    exp.row(
        "cheaters' recent presence vs honest peers",
        "\"unusually high percentage of recent check-ins … possibly cheaters\"",
        format!("×{spike:.1} the honest average"),
        spike > 2.0,
    );
    exp.note("Counting users in 500–2000 totals: the paper found 25,074 (×scale).");
    exp
}

fn cheater_vs_honest_recent_ratio(bed: &TestBed) -> f64 {
    let mut cheater = Vec::new();
    let mut honest = Vec::new();
    for truth in &bed.population.users {
        let Some(row) = bed.db.user(truth.id.value()) else {
            continue;
        };
        if !(300..=2_000).contains(&row.total_checkins) {
            continue;
        }
        let ratio = row.recent_checkins as f64 / row.total_checkins as f64;
        if truth.archetype == Archetype::EmulatorCheater {
            cheater.push(ratio);
        } else if !truth.archetype.is_cheater() {
            honest.push(ratio);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if honest.is_empty() || cheater.is_empty() {
        return 0.0;
    }
    avg(&cheater) / avg(&honest).max(1e-9)
}

/// E6 (Fig 4.2): average badges vs total check-ins.
///
/// Shape: stable, rising badge counts up to ~1000 totals; beyond that
/// the curve oscillates because caught cheaters (counted totals, no
/// rewards) drag buckets down; the ≥9000 region is reward-starved.
pub fn e06_badges_vs_total(bed: &TestBed, output_dir: &Path) -> Experiment {
    let mut exp = Experiment::new("E6", "Badges vs total check-ins", "Fig 4.2");
    let curve = badges_vs_total(&bed.db, 100, 14_000);
    let _ = write_csv(
        output_dir.join("e6_badges_vs_total.csv"),
        "total_checkins,avg_badges,count",
        curve
            .iter()
            .map(|p| format!("{},{:.2},{}", p.total_checkins, p.average, p.count)),
    );

    // Stable region: badge averages rise with totals below 1000.
    let early: Vec<&_> = curve.iter().filter(|p| p.total_checkins < 1_000).collect();
    let rising = early
        .first()
        .zip(early.last())
        .map(|(a, b)| b.average > a.average)
        .unwrap_or(false);
    exp.row(
        "≤1000 totals: more check-ins → more badges",
        "\"stable … likely to get more badges after doing more check-ins\"",
        format!(
            "first bucket {:.1} → last bucket {:.1}",
            early.first().map(|p| p.average).unwrap_or(0.0),
            early.last().map(|p| p.average).unwrap_or(0.0)
        ),
        rising,
    );

    // Caught cheaters: >1000 totals, <10 badges.
    let mut starved = 0u64;
    let mut heavy = 0u64;
    bed.db.for_each_user(|u| {
        if u.total_checkins > 1_000 {
            heavy += 1;
            if u.total_badges < 10 {
                starved += 1;
            }
        }
    });
    exp.row(
        "users >1000 check-ins with <10 badges",
        "\"many users with more than 1000 check-ins only have less than 10 badges\"",
        format!("{starved} of {heavy} heavy users"),
        starved > 0,
    );

    // The ≥9000 region is reward-starved.
    let whales: Vec<f64> = curve
        .iter()
        .filter(|p| p.total_checkins >= 9_000)
        .map(|p| p.average)
        .collect();
    let whale_avg = whales.iter().sum::<f64>() / whales.len().max(1) as f64;
    let mid: Vec<f64> = curve
        .iter()
        .filter(|p| (500..1_000).contains(&p.total_checkins))
        .map(|p| p.average)
        .collect();
    let mid_avg = mid.iter().sum::<f64>() / mid.len().max(1) as f64;
    exp.row(
        "≥9000 totals: reward level",
        "\"for almost all users with more than 9000 check-ins, the reward level is low\"",
        format!("avg {whale_avg:.1} badges vs {mid_avg:.1} at 500–1000 totals"),
        !whales.is_empty() && whale_avg < mid_avg,
    );
    exp.note("The oscillation beyond 1000 totals comes from caught cheaters mixing into sparse buckets, exactly the paper's explanation.");
    exp
}

/// E7 (Fig 4.3/4.4): check-in dispersion separates a suspected cheater
/// from a normal user.
pub fn e07_dispersion(bed: &TestBed, output_dir: &Path) -> Experiment {
    let mut exp = Experiment::new("E7", "Suspicious check-in patterns", "Fig 4.3/4.4");

    // The Fig 4.3 subject: an undetected emulator cheater.
    let cheater = bed
        .population
        .ids_of(Archetype::EmulatorCheater)
        .into_iter()
        .next()
        .expect("population includes emulator cheaters");
    let cheater_profile = user_map(&bed.db, cheater.value());
    exp.row(
        "suspected cheater: distinct cities",
        "\"spread over 30 different cities\"",
        format!("{}", cheater_profile.distinct_cities),
        cheater_profile.distinct_cities >= 15,
    );
    exp.row(
        "suspected cheater: reaches Alaska and Europe",
        "\"including Alaska, and Europe\"",
        format!(
            "alaska: {}, europe: {}",
            cheater_profile.visits_alaska, cheater_profile.visits_europe
        ),
        cheater_profile.visits_alaska || cheater_profile.visits_europe,
    );

    // The Fig 4.4 subject: a regular user with a similar recent count.
    let normal = bed
        .population
        .users
        .iter()
        .filter(|t| t.archetype == Archetype::Regular)
        .max_by_key(|t| {
            bed.db
                .user(t.id.value())
                .map(|u| u.recent_checkins)
                .unwrap_or(0)
        })
        .expect("population includes regular users");
    let normal_profile = user_map(&bed.db, normal.id.value());
    exp.row(
        "normal user: distinct cities",
        "\"concentrated in three cities … and a few other places\"",
        format!("{}", normal_profile.distinct_cities),
        normal_profile.distinct_cities <= 6,
    );
    exp.row(
        "concentration contrast",
        "cheater scattered, normal concentrated",
        format!(
            "cheater {:.2} vs normal {:.2} (fraction in largest cluster)",
            cheater_profile.concentration, normal_profile.concentration
        ),
        normal_profile.concentration > cheater_profile.concentration + 0.3,
    );

    // Classifier over the whole crawl.
    let report = CheaterClassifier::default().evaluate(&bed.db, &bed.cheater_ids());
    exp.row(
        "combined classifier (all three §4 signals)",
        "identifies suspected cheaters the service missed",
        format!(
            "precision {:.2}, recall {:.2} ({} suspects)",
            report.precision(),
            report.recall(),
            report.suspects.len()
        ),
        report.precision() > 0.5 && report.recall() > 0.5,
    );
    let breakdown = lbsn_analysis::classify::signal_breakdown(&report);
    let mut parts: Vec<String> = breakdown
        .iter()
        .map(|(sig, n)| format!("{sig:?}: {n}"))
        .collect();
    parts.sort();
    exp.row(
        "signal contributions",
        "each §4 subsection contributes evidence",
        parts.join(", "),
        breakdown.len() >= 2,
    );
    let _ = write_csv(
        output_dir.join("e7_cheater_map.csv"),
        "lon,lat",
        cheater_profile
            .locations
            .iter()
            .map(|p| format!("{:.6},{:.6}", p.lon(), p.lat())),
    );
    let _ = write_csv(
        output_dir.join("e7_normal_map.csv"),
        "lon,lat",
        normal_profile
            .locations
            .iter()
            .map(|p| format!("{:.6},{:.6}", p.lon(), p.lat())),
    );
    exp
}

/// E8 (§4.1–4.2): the population summary statistics, scaled.
pub fn e08_population_stats(bed: &TestBed) -> Experiment {
    let mut exp = Experiment::new("E8", "Population statistics", "§4.1–4.2");
    let s = population_summary(&bed.db);
    let scale = bed.plan.spec.scale;

    exp.row(
        "users crawled",
        format!("1.89 M (×{scale} → {})", (1_890_000.0 * scale) as u64),
        format!("{}", s.users),
        (s.users as f64 / (1_890_000.0 * scale) - 1.0).abs() < 0.05,
    );
    exp.row(
        "venues crawled",
        format!("5.6 M (×{scale} → {})", (5_600_000.0 * scale) as u64),
        format!("{}", s.venues),
        (s.venues as f64 / (5_600_000.0 * scale) - 1.0).abs() < 0.06,
    );
    exp.row(
        "users with zero check-ins",
        "36.3 %",
        format!("{:.1} %", s.zero_checkin_fraction * 100.0),
        (s.zero_checkin_fraction - 0.363).abs() < 0.03,
    );
    exp.row(
        "users with 1–5 check-ins",
        "20.4 %",
        format!("{:.1} %", s.one_to_five_fraction * 100.0),
        (s.one_to_five_fraction - 0.204).abs() < 0.03,
    );
    exp.row(
        "users with ≥1000 check-ins",
        "0.2 %",
        format!("{:.2} %", s.ge_1000_fraction * 100.0),
        s.ge_1000_fraction > 0.0002 && s.ge_1000_fraction < 0.01,
    );
    exp.row(
        "users with ≥5000 check-ins",
        "11 (6 power users + 5 caught cheaters)",
        format!("{}", s.ge_5000_count),
        (10..=13).contains(&s.ge_5000_count),
    );
    exp.row(
        "users with 500–2000 check-ins",
        format!("25,074 (×{scale} → {})", (25_074.0 * scale) as u64),
        format!("{}", s.users_500_to_2000),
        s.users_500_to_2000 as f64 > 25_074.0 * scale * 0.2
            && (s.users_500_to_2000 as f64) < 25_074.0 * scale * 5.0,
    );
    exp.row(
        "venues with exactly one visitor",
        format!(
            "2,014,305 ≈ 36 % of venues (measured {:.0} %)",
            100.0 * s.one_visitor_venues as f64 / s.venues.max(1) as f64
        ),
        format!("{}", s.one_visitor_venues),
        {
            let frac = s.one_visitor_venues as f64 / s.venues.max(1) as f64;
            (0.02..0.7).contains(&frac)
        },
    );
    exp.row(
        "mayorships per mayor-holding user",
        "5.45",
        format!("{:.2}", s.mayorships_per_mayor_user),
        s.mayorships_per_mayor_user > 1.0 && s.mayorships_per_mayor_user < 12.0,
    );

    // The §4.2 split of the ≥5000 club ("mayor of tens of venues" vs
    // essentially none).
    let split = heavy_hitters_split_at(&bed.db, 5_000, 10);
    let (with_badges, without_badges) = split.badge_gap();
    exp.row(
        "≥5000 club split by mayorship",
        "6 with tens of mayorships / 5 with none",
        format!(
            "{} with / {} without",
            split.with_mayorships.len(),
            split.without_mayorships.len()
        ),
        split.with_mayorships.len() >= 4 && split.without_mayorships.len() >= 4,
    );
    exp.row(
        "badge gap between the groups",
        "\"received much less badges than the first group\"",
        format!("{with_badges:.1} vs {without_badges:.1} avg badges"),
        with_badges > without_badges,
    );
    let top = split.top();
    exp.row(
        "the record holder",
        "over 12,000 check-ins, no mayorships (a caught cheater)",
        top.map(|t| {
            format!(
                "{} check-ins, {} mayorships",
                t.total_checkins, t.total_mayors
            )
        })
        .unwrap_or_else(|| "none".into()),
        top.map(|t| t.total_checkins > 12_000 && t.total_mayors <= 1)
            .unwrap_or(false),
    );
    exp
}

#[cfg(test)]
mod tests {
    // Figure experiments are exercised end-to-end in tests/experiments.rs
    // (they need a shared TestBed, which is too heavy per-unit-test).
}
