//! One module per experiment family; every figure/claim of the paper's
//! evaluation has a function here that regenerates it.
//!
//! | ID  | Paper artifact | Function |
//! |-----|----------------|----------|
//! | E1  | §3.1, Fig 3.1/3.2 — GPS spoofing | [`e01_spoofing`] |
//! | E2  | §3.2 — crawler throughput | [`e02_crawl_throughput`] |
//! | E3  | Fig 3.4 — Starbucks map | [`e03_starbucks_map`] |
//! | E4  | Fig 3.5 — automated virtual tour | [`e04_virtual_tour`] |
//! | E5  | Fig 4.1 — recent vs total check-ins | [`e05_recent_vs_total`] |
//! | E6  | Fig 4.2 — badges vs total check-ins | [`e06_badges_vs_total`] |
//! | E7  | Fig 4.3/4.4 — dispersion | [`e07_dispersion`] |
//! | E8  | §4.1–4.2 — population statistics | [`e08_population_stats`] |
//! | E9  | §3.4 — venue intel & mayor attacks | [`e09_venue_intel`] |
//! | E10 | §5.1 — location verification | [`e10_defenses`] |
//! | E11 | §5.2 — anti-crawl defenses | [`e11_crawl_defense`] |
//! | E12 | §2.3 — cheater code rules | [`e12_cheater_code`] |
//! | E13 | §2.3 + §5.1 — policy matrix from config | [`e13_policy_matrix`] |
//! | E14 | DESIGN §12 — frontend under overload | [`e14_overload`] |

mod attacks;
mod crawling;
mod defense;
mod figures;
mod overload;
mod policy_matrix;

pub use attacks::{e01_spoofing, e04_virtual_tour, e09_venue_intel};
pub use crawling::{e02_crawl_throughput, e03_starbucks_map, e11_crawl_defense};
pub use defense::{e10_defenses, e12_cheater_code};
pub use figures::{e05_recent_vs_total, e06_badges_vs_total, e07_dispersion, e08_population_stats};
pub use overload::e14_overload;
pub use policy_matrix::e13_policy_matrix;

use crate::harness::TestBed;
use crate::report::Experiment;

/// The experiment IDs, in the order [`run_all`] returns them.
pub const KNOWN_IDS: [&str; 14] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14",
];

/// Runs `run` against a freshly-reset process-wide registry and
/// attaches what it recorded — used for experiments that stand up their
/// own servers/crawlers (those default to [`lbsn_obs::global`]).
fn with_global_metrics(run: impl FnOnce() -> Experiment) -> Experiment {
    let registry = lbsn_obs::global();
    registry.reset();
    let mut e = run();
    e.attach_metrics(registry.snapshot());
    e
}

/// Runs `run` and attaches the shared bed's registry snapshot (check-in
/// pipeline + stand-up crawl, cumulative over the bed's lifetime).
fn with_bed_metrics(bed: &TestBed, run: impl FnOnce() -> Experiment) -> Experiment {
    let mut e = run();
    e.attach_metrics(bed.metrics_snapshot());
    e
}

/// Runs every experiment at the given population scale, sharing one
/// test bed where possible. Returns reports in [`KNOWN_IDS`] order,
/// each with a metrics snapshot attached.
pub fn run_all(scale: f64, seed: u64, output_dir: &std::path::Path) -> Vec<Experiment> {
    let bed = TestBed::at_scale(scale, seed);
    vec![
        with_global_metrics(e01_spoofing),
        with_global_metrics(|| e02_crawl_throughput(seed)),
        with_bed_metrics(&bed, || e03_starbucks_map(&bed, output_dir)),
        with_bed_metrics(&bed, || e04_virtual_tour(&bed, output_dir)),
        with_bed_metrics(&bed, || e05_recent_vs_total(&bed, output_dir)),
        with_bed_metrics(&bed, || e06_badges_vs_total(&bed, output_dir)),
        with_bed_metrics(&bed, || e07_dispersion(&bed, output_dir)),
        with_bed_metrics(&bed, || e08_population_stats(&bed)),
        with_bed_metrics(&bed, || e09_venue_intel(&bed)),
        with_global_metrics(e10_defenses),
        with_global_metrics(|| e11_crawl_defense(seed)),
        with_global_metrics(|| e12_cheater_code(seed)),
        // E13 attaches its own snapshot: every cell runs against its
        // own registry so per-cell audit forensics don't merge.
        e13_policy_matrix(),
        // E14 must stay LAST among the bed experiments: its cumulative
        // bed snapshot is the one CI's slo-gate reads, and it must be a
        // superset of every earlier bed experiment's metrics.
        with_bed_metrics(&bed, || e14_overload(&bed)),
    ]
}
