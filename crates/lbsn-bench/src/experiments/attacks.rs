//! E1, E4, E9: the attack experiments.

use std::path::Path;
use std::sync::Arc;

use lbsn_attack::{
    deny_mayorships, AttackSession, MayorFarmer, PacingPolicy, Schedule, VenueIntel, VenueSnapper,
    VirtualPath,
};
use lbsn_device::{Emulator, Phone, SimulatedGpsReceiver};
use lbsn_geo::{distance, GeoPoint};
use lbsn_server::api::ApiClient;
use lbsn_server::{Badge, LbsnServer, ServerConfig, UserSpec, VenueId, VenueSpec};
use lbsn_sim::{Duration, SimClock};

use crate::harness::TestBed;
use crate::report::{write_csv, Experiment};

fn albuquerque() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// E1 (§3.1, Fig 3.1/3.2): all four spoofing vectors check in to San
/// Francisco venues from Albuquerque; rewards and a mayorship follow.
pub fn e01_spoofing() -> Experiment {
    let mut exp = Experiment::new("E1", "GPS spoofing attack", "§3.1, Fig 3.1–3.2");
    let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
    // Ten San Francisco venues (the Adventurer badge needs ten).
    let wharf_loc = GeoPoint::new(37.8080, -122.4177).unwrap();
    let mut venues =
        vec![server.register_venue(VenueSpec::new("Fisherman's Wharf Sign", wharf_loc))];
    for i in 1..10 {
        venues.push(server.register_venue(VenueSpec::new(
            format!("SF Venue {i}"),
            lbsn_geo::destination(wharf_loc, (i * 36) as f64, 1_500.0 * i as f64),
        )));
    }

    // Control: an honest check-in from Albuquerque is flagged.
    let honest = server.register_user(UserSpec::named("honest"));
    let phone = Arc::new(Phone::at(albuquerque()));
    let app = lbsn_device::ClientApp::install(phone.clone(), Arc::clone(&server), honest);
    let control = app.check_in(venues[0]).unwrap();
    exp.row(
        "control: unspoofed remote check-in",
        "rejected by GPS verification",
        format!("flags {:?}", control.flags),
        !control.rewarded(),
    );

    // Vector 1: hook the OS location API.
    let u1 = server.register_user(UserSpec::named("v1"));
    let p1 = Arc::new(Phone::at(albuquerque()));
    let app1 = lbsn_device::ClientApp::install(p1.clone(), Arc::clone(&server), u1);
    p1.hook_location_api(wharf_loc);
    let r1 = app1.check_in(venues[0]).unwrap();
    exp.row(
        "vector 1: hooked GPS APIs",
        "accepted",
        outcome_str(&r1),
        r1.rewarded(),
    );

    // Vector 2: simulated Bluetooth GPS receiver as the hardware.
    server.clock().advance(Duration::hours(2));
    let u2 = server.register_user(UserSpec::named("v2"));
    let p2 = Arc::new(Phone::at(albuquerque()));
    p2.replace_gps_hardware(Arc::new(SimulatedGpsReceiver::fixed(wharf_loc)));
    let app2 = lbsn_device::ClientApp::install(p2, Arc::clone(&server), u2);
    let r2 = app2.check_in(venues[0]).unwrap();
    exp.row(
        "vector 2: simulated GPS module",
        "accepted",
        outcome_str(&r2),
        r2.rewarded(),
    );

    // Vector 3: the public server API, no device at all.
    server.clock().advance(Duration::hours(2));
    let u3 = server.register_user(UserSpec::named("v3"));
    let api = ApiClient::new(Arc::clone(&server));
    let r3 = api.checkin(u3, venues[0], wharf_loc).unwrap();
    exp.row(
        "vector 3: server API",
        "accepted",
        outcome_str(&r3),
        r3.rewarded(),
    );

    // Vector 4: the emulator rig the paper used, across ten venues —
    // collecting points, the Adventurer badge, and the mayorship after
    // four daily check-ins.
    server.clock().advance(Duration::hours(2));
    let u4 = server.register_user(UserSpec::named("test"));
    let mut emulator = Emulator::boot();
    emulator.flash_recovery_image();
    let app4 = emulator.install_lbsn_app(Arc::clone(&server), u4).unwrap();
    let dm = emulator.debug_monitor();
    let mut last = None;
    for v in &venues {
        let loc = server.venue(*v).unwrap().location;
        dm.geo_fix(loc.lon(), loc.lat()).unwrap();
        last = Some(app4.check_in(*v).unwrap());
        server.clock().advance(Duration::minutes(30));
    }
    let last = last.unwrap();
    exp.row(
        "vector 4: emulator geo fix ×10 venues",
        "all accepted, points each",
        format!("10 accepted, {} points on last", last.points),
        last.rewarded(),
    );
    exp.row(
        "Adventurer badge at 10 venues",
        "\"You've checked into 10 different venues!\"",
        format!("{:?}", last.new_badges),
        last.new_badges.contains(&Badge::Adventurer),
    );

    // Mayorship: four daily check-ins at the Wharf.
    let session = AttackSession::new(Arc::clone(&server), u4);
    server.clock().advance(Duration::days(1));
    let farm = MayorFarmer::new(&session).farm(venues[0], 10);
    exp.row(
        "mayorship of Fisherman's Wharf Sign",
        "mayor after 4 daily check-ins (9 days to appear)",
        format!("mayor after {} daily check-ins", farm.days_spent),
        farm.became_mayor && farm.days_spent <= 5,
    );
    exp.note("All four §3.1 vectors inject the same fake fix at different pipeline layers; the server cannot distinguish them from honest clients.");
    exp
}

fn outcome_str(o: &lbsn_server::CheckinOutcome) -> String {
    if o.rewarded() {
        format!("accepted, {} points", o.points)
    } else {
        format!("rejected {:?}", o.flags)
    }
}

/// E4 (Fig 3.5): the automated virtual tour through a city — snap
/// waypoints to crawled venues, pace by the §3.3 law, 25 undetected
/// check-ins.
pub fn e04_virtual_tour(bed: &TestBed, output_dir: &Path) -> Experiment {
    let mut exp = Experiment::new("E4", "Automated cheating along a virtual path", "Fig 3.5");
    // Venues near Albuquerque, from the crawl (the attack's map data).
    let abq = albuquerque();
    let nearby: Vec<(VenueId, GeoPoint)> = {
        let mut v = Vec::new();
        bed.db.for_each_venue(|row| {
            if distance(row.location, abq) < 15_000.0 {
                v.push((VenueId(row.id), row.location));
            }
        });
        v
    };
    exp.row(
        "crawled venues around the city",
        "venue DB from §3.2 crawl",
        format!("{} venues within 15 km", nearby.len()),
        nearby.len() >= 25,
    );
    let snapper = VenueSnapper::from_venues(nearby.iter().copied());
    let lookup: std::collections::HashMap<VenueId, GeoPoint> = nearby.iter().copied().collect();

    // The paper's walk: start downtown, head north, keep turning
    // right, 0.005° steps. An outward spiral rather than a closed
    // circuit: a circuit retraces its own track after one lap and
    // stops yielding new venues, which starves the tour when the
    // scaled-down world has few venues per snap cell.
    let path = VirtualPath::outward_spiral(abq, 0.005, 240);
    let tour: Vec<(VenueId, GeoPoint)> = snapper
        .tour(&path, |id| lookup.get(&id).copied())
        .into_iter()
        .take(25)
        .collect();
    let start = bed.server.clock().now() + Duration::hours(1);
    let schedule = Schedule::build(&tour, start, &PacingPolicy::default());

    let attacker = bed.server.register_user(UserSpec::named("tour-attacker"));
    let session =
        AttackSession::with_registry(Arc::clone(&bed.server), attacker, Arc::clone(&bed.registry));
    let report = session.execute(&schedule);

    exp.row(
        "check-ins along the path",
        "25 venues",
        format!("{}", report.attempted),
        report.attempted >= 20,
    );
    exp.row(
        "cheater-code detections",
        "0 (\"without being detected as a cheater\")",
        format!("{}", report.flagged.len()),
        report.flagged.is_empty(),
    );
    exp.row(
        "rewards received",
        "points and badges accordingly",
        format!("{} points, {} badges", report.points, report.badges.len()),
        report.points > 0,
    );
    let _ = write_csv(
        output_dir.join("e4_virtual_tour.csv"),
        "kind,lon,lat",
        path.points
            .iter()
            .map(|p| format!("waypoint,{:.6},{:.6}", p.lon(), p.lat()))
            .chain(
                schedule
                    .items()
                    .iter()
                    .map(|i| format!("checkin,{:.6},{:.6}", i.location.lon(), i.location.lat())),
            ),
    );
    exp.note(format!(
        "Tour spans {} virtual minutes under the T = max(5 min, D×5 min/mile) pacing law.",
        schedule.span().as_secs() / 60
    ));
    exp
}

/// E9 (§3.4): venue-profile intelligence — unclaimed specials, the
/// 865-mayorship farmer, and the mayor-denial attack.
pub fn e09_venue_intel(bed: &TestBed) -> Experiment {
    let mut exp = Experiment::new("E9", "Cheating with venue profile analysis", "§3.4");
    let intel = VenueIntel::new(&bed.db);
    let scale = bed.plan.spec.scale;

    let unclaimed = intel.unclaimed_mayor_specials();
    let expected = bed.plan.spec.scaled(bed.plan.spec.full_unclaimed_specials);
    exp.row(
        "venues with mayor special, no mayor",
        format!("≈1000 (×{scale:.3} scale → ≈{expected})"),
        format!("{}", unclaimed.len()),
        unclaimed.len() as f64 >= expected as f64 * 0.5,
    );

    let easy = intel.easy_specials();
    exp.row(
        "specials not requiring mayorship",
        "\"much easier to obtain\" — discoverable only by crawling",
        format!("{}", easy.len()),
        !easy.is_empty(),
    );

    // §3.4's signature account: huge mayorship count, barely more
    // check-ins than mayorships. In our population both the dedicated
    // farmer and the emulator tourists produce this profile — the
    // emulator cheaters, sweeping dormant venues across 30+ cities,
    // usually out-hoard the farmer, which is the attack working as
    // described.
    let hoarders = intel.mayor_hoarders(bed.plan.spec.scaled(100));
    let top = hoarders.first();
    let top_is_cheater = top
        .map(|h| {
            bed.population
                .truth(lbsn_server::UserId(h.id))
                .map(|t| t.archetype.is_cheater())
                .unwrap_or(false)
        })
        .unwrap_or(false);
    let (mayors, totals) = top
        .map(|h| (h.total_mayors, h.total_checkins))
        .unwrap_or((0, 0));
    exp.row(
        "top mayor hoarder",
        "mayor of 865 venues from only 1265 check-ins",
        format!("mayor of {mayors} venues from {totals} check-ins"),
        top_is_cheater && mayors > 0 && (totals as f64) < mayors as f64 * 4.0,
    );

    // Mayor denial: take every mayorship from a power user.
    let victim = bed
        .population
        .ids_of(lbsn_workload::Archetype::PowerUser)
        .into_iter()
        .next()
        .expect("population includes power users");
    let victim_mayorships = intel.mayorships_of(victim.value()).len();
    let attacker = bed.server.register_user(UserSpec::named("denial-attacker"));
    let session =
        AttackSession::with_registry(Arc::clone(&bed.server), attacker, Arc::clone(&bed.registry));
    let denial = deny_mayorships(&session, victim.value(), &bed.db, 70);
    exp.row(
        "mayor-denial attack on a power user",
        "\"attack the mayorships of the victim\"",
        format!(
            "{} of {} mayorships taken ({:.0}%)",
            denial.taken.len(),
            victim_mayorships.max(denial.targeted.len()),
            denial.capture_rate() * 100.0
        ),
        denial.capture_rate() > 0.5,
    );
    exp.note("Targets selected purely from crawled public venue profiles, as in the paper.");
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_reproduces() {
        let exp = e01_spoofing();
        assert!(exp.all_ok(), "{}", exp.to_markdown());
    }
}
