//! E10, E12: location verification and the cheater code.

use std::sync::Arc;

use lbsn_defense::{
    evaluate_verifier, AddressMapping, AttackScenario, DistanceBounding, IpOrigin,
    LocationVerifier, VerifierStack, WifiVerifier,
};
use lbsn_geo::{destination, GeoPoint};
use lbsn_server::cheatercode::CheaterCodeConfig;
use lbsn_server::{
    CheatFlag, CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserSpec, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};
use lbsn_workload::PopulationSpec;

use crate::report::Experiment;

fn venue() -> GeoPoint {
    GeoPoint::new(37.8080, -122.4177).unwrap()
}

fn scenario_matrix() -> Vec<AttackScenario> {
    let abq = GeoPoint::new(35.0844, -106.6504).unwrap();
    let hub = GeoPoint::new(41.8781, -87.6298).unwrap(); // Chicago carrier hub
    vec![
        AttackScenario::honest("honest walk-in (Wi-Fi)", venue(), IpOrigin::Local(venue())),
        AttackScenario::honest(
            "honest walk-in (cellular)",
            venue(),
            IpOrigin::CarrierHub(hub),
        ),
        AttackScenario::remote_spoof(
            "cross-country spoof (broadband)",
            abq,
            venue(),
            IpOrigin::Local(abq),
        ),
        AttackScenario::remote_spoof(
            "cross-country spoof (cellular)",
            abq,
            venue(),
            IpOrigin::CarrierHub(hub),
        ),
        AttackScenario::remote_spoof(
            "same-city spoof (5 km)",
            destination(venue(), 45.0, 5_000.0),
            venue(),
            IpOrigin::Local(venue()),
        ),
        AttackScenario::remote_spoof(
            "next-door cheat (50 m)",
            destination(venue(), 90.0, 50.0),
            venue(),
            IpOrigin::Local(venue()),
        ),
    ]
}

/// E10 (§5.1): every proposed verification technique against the attack
/// matrix — detection, false positives, cost.
pub fn e10_defenses() -> Experiment {
    let mut exp = Experiment::new("E10", "Location verification techniques", "§5.1");
    let scenarios = scenario_matrix();

    let mechanisms: Vec<(Box<dyn LocationVerifier>, &str, f64)> = vec![
        (
            // 4 cheat scenarios: catches all but the 50 m neighbour → 3/4.
            Box::new(DistanceBounding::default()),
            "most accurate, highest cost (new hardware per venue)",
            0.74,
        ),
        (
            // Only the cross-country broadband spoof geolocates wrong → 1/4.
            Box::new(AddressMapping::default()),
            "least accurate, lowest cost",
            0.24,
        ),
        (
            Box::new(WifiVerifier::default()),
            "enough accuracy, no extra hardware (misses in-range neighbours)",
            0.74,
        ),
        (
            Box::new(WifiVerifier::narrowed(30.0)),
            "DD-WRT range narrowing defeats the next-door cheat",
            0.99,
        ),
    ];
    for (mech, paper_claim, min_detection) in &mechanisms {
        let row = evaluate_verifier(mech.as_ref(), &scenarios);
        exp.row(
            format!("{} (cost {:?})", row.name, mech.cost()),
            *paper_claim,
            format!(
                "detection {:.0} %, false positives {:.0} %",
                row.detection_rate * 100.0,
                row.false_positive_rate * 100.0
            ),
            row.detection_rate >= *min_detection - 1e-9 && row.false_positive_rate == 0.0,
        );
    }

    // Strict address mapping: the usability cost the paper warns about.
    let strict = AddressMapping {
        reject_carrier_hubs: true,
        ..AddressMapping::default()
    };
    let row = evaluate_verifier(&strict, &scenarios);
    exp.row(
        "address mapping, strict (reject carrier hubs)",
        "\"mobile phones may access the Internet from nonlocal IP addresses\" → honest users punished",
        format!(
            "detection {:.0} %, false positives {:.0} %",
            row.detection_rate * 100.0,
            row.false_positive_rate * 100.0
        ),
        row.false_positive_rate > 0.0,
    );

    // A composed stack: cheap IP screening + narrowed venue-side Wi-Fi.
    let stack = VerifierStack::new()
        .push(Box::new(AddressMapping::default()))
        .push(Box::new(WifiVerifier::narrowed(30.0)));
    let row = stack.evaluate("address-mapping + narrowed wifi", &scenarios);
    exp.row(
        "composed stack (AM + narrowed Wi-Fi)",
        "layered verification closes the remaining gaps",
        format!(
            "detection {:.0} %, false positives {:.0} %",
            row.detection_rate * 100.0,
            row.false_positive_rate * 100.0
        ),
        row.detection_rate == 1.0 && row.false_positive_rate == 0.0,
    );
    // End-to-end deployment (the §6.2.2 future work, built): the §3.1
    // emulator attack against a server fronted by venue-side
    // verification.
    let deployment_stopped = {
        use lbsn_defense::integration::{VerifiedCheckinService, VerifiedOutcome};
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let wharf = server.register_venue(VenueSpec::new("Wharf", venue()));
        let attacker = server.register_user(UserSpec::anonymous());
        let service = VerifiedCheckinService::new(
            Arc::clone(&server),
            VerifierStack::new().push(Box::new(WifiVerifier::default())),
        );
        service.register_router(wharf);
        // The spoofed request is byte-identical to an honest one; only
        // the physical evidence differs.
        let spoof = CheckinRequest {
            user: attacker,
            venue: wharf,
            reported_location: venue(),
            source: CheckinSource::MobileApp,
        };
        let abq = GeoPoint::new(35.0844, -106.6504).unwrap();
        let attack = service
            .check_in(&spoof, abq, lbsn_defense::IpOrigin::Local(abq))
            .unwrap();
        let honest = service
            .check_in(&spoof, venue(), lbsn_defense::IpOrigin::Local(venue()))
            .unwrap();
        attack == VerifiedOutcome::RejectedByVerifier && honest.rewarded()
    };
    exp.row(
        "deployed venue-side verification vs the §3.1 attack",
        "\"the Wi-Fi router sends the verification information to the … LBS server\"",
        if deployment_stopped {
            "attack rejected before the reward pipeline; honest visitor unaffected"
        } else {
            "attack not stopped"
        }
        .to_string(),
        deployment_stopped,
    );
    exp.note("Scenario matrix: 2 honest (Wi-Fi / cellular egress) + 4 attacks (cross-country ×2, same-city, 50 m next-door).");
    exp
}

/// E12 (§2.3): black-box probes confirming each cheater-code rule, plus
/// the per-rule ablation (what each rule uniquely catches).
pub fn e12_cheater_code(seed: u64) -> Experiment {
    let mut exp = Experiment::new("E12", "The cheater code's rules", "§2.3");
    let abq = GeoPoint::new(35.0844, -106.6504).unwrap();

    // Probe rig: one server, fresh users per probe.
    let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
    let v_home = server.register_venue(VenueSpec::new("Home Cafe", abq));
    let v_sf = server.register_venue(VenueSpec::new("SF Spot", venue()));
    let mut nearby = Vec::new();
    for i in 0..4 {
        nearby.push(server.register_venue(VenueSpec::new(
            format!("Mall Shop {i}"),
            destination(abq, 90.0, 40.0 * i as f64),
        )));
    }
    let check = |user, venue_id, loc| {
        server
            .check_in(&CheckinRequest {
                user,
                venue: venue_id,
                reported_location: loc,
                source: CheckinSource::MobileApp,
            })
            .unwrap()
    };

    // Probe 1: same-venue cooldown.
    let u = server.register_user(UserSpec::anonymous());
    let first = check(u, v_home, abq);
    server.clock().advance(Duration::minutes(30));
    let again = check(u, v_home, abq);
    server.clock().advance(Duration::minutes(31));
    let later = check(u, v_home, abq);
    exp.row(
        "frequent check-ins rule",
        "\"cannot check in to the same venue again within one hour\"",
        format!(
            "t+0: {}, t+30min: {:?}, t+61min: {}",
            ok(&first),
            again.flags,
            ok(&later)
        ),
        first.rewarded() && again.flags == vec![CheatFlag::TooFrequent] && later.rewarded(),
    );

    // Probe 2: super-human speed.
    let u = server.register_user(UserSpec::anonymous());
    check(u, v_home, abq);
    server.clock().advance(Duration::minutes(10));
    let teleport = check(u, v_sf, venue());
    exp.row(
        "super human speed rule",
        "\"continuously checks into locations far away … refuse to give any reward\"",
        format!("ABQ→SF in 10 min: {:?}", teleport.flags),
        teleport.flags.contains(&CheatFlag::SuperhumanSpeed),
    );

    // Probe 3: rapid-fire — warning on the fourth check-in in a 180 m
    // square at 1-minute intervals.
    let u = server.register_user(UserSpec::anonymous());
    server.clock().advance(Duration::hours(2));
    let mut outcomes = Vec::new();
    for v in &nearby {
        let loc = server.venue(*v).unwrap().location;
        outcomes.push(check(u, *v, loc));
        server.clock().advance(Duration::secs(45));
    }
    let first_three_ok = outcomes[..3].iter().all(|o| o.rewarded());
    let fourth_flagged = outcomes[3].flags.contains(&CheatFlag::RapidFire);
    exp.row(
        "rapid-fire check-ins rule",
        "\"warning about rapid-fire check-ins on the fourth check-in\"",
        format!(
            "1st–3rd rewarded: {first_three_ok}, 4th: {:?}",
            outcomes[3].flags
        ),
        first_three_ok && fourth_flagged,
    );

    // Probe 4: the paper's safe pacing passes.
    let u = server.register_user(UserSpec::anonymous());
    server.clock().advance(Duration::hours(2));
    let mut all_ok = true;
    let mut prev = abq;
    for i in 0..5 {
        let loc = destination(abq, 0.0, 1_200.0 * i as f64);
        let v = server.register_venue(VenueSpec::new(format!("Paced {i}"), loc));
        let miles = lbsn_geo::meters_to_miles(lbsn_geo::distance(prev, loc));
        server
            .clock()
            .advance(Duration::secs(((miles.max(1.0)) * 300.0) as u64));
        all_ok &= check(u, v, loc).rewarded();
        prev = loc;
    }
    exp.row(
        "the §3.3 pacing law evades all rules",
        "\"5-minute interval … without being detected\"",
        format!("5 paced check-ins all rewarded: {all_ok}"),
        all_ok,
    );

    // Ablation: replay a small population with each rule disabled and
    // count what goes uncaught.
    let full = flagged_with(seed, CheaterCodeConfig::default());
    let no_speed = flagged_with(
        seed,
        CheaterCodeConfig {
            enable_speed: false,
            ..CheaterCodeConfig::default()
        },
    );
    let none = flagged_with(seed, CheaterCodeConfig::disabled());
    exp.row(
        "ablation: disable the speed rule",
        "teleport cheaters go uncaught",
        format!("flagged {full} → {no_speed} check-ins"),
        no_speed < full / 2,
    );
    exp.row(
        "ablation: disable everything (pre-April-2010)",
        "\"the basic cheating method worked in the early days\"",
        format!("flagged {none} check-ins"),
        none == 0,
    );
    exp
}

fn ok(o: &lbsn_server::CheckinOutcome) -> &'static str {
    if o.rewarded() {
        "rewarded"
    } else {
        "flagged"
    }
}

fn flagged_with(seed: u64, cheater_code: CheaterCodeConfig) -> u64 {
    // Disable account branding: the ablation isolates what each *rule*
    // catches per check-in, and branding would re-flag everything after
    // the first ten hits regardless of rule.
    let server = LbsnServer::new(
        SimClock::new(),
        ServerConfig::with_detectors(cheater_code.branding_threshold(None)),
    );
    let plan = lbsn_workload::plan(&PopulationSpec::tiny(400, seed));
    let pop = lbsn_workload::generate(&server, &plan);
    pop.stats.flagged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_reproduces() {
        let exp = e10_defenses();
        assert!(exp.all_ok(), "{}", exp.to_markdown());
    }

    #[test]
    fn e12_reproduces() {
        let exp = e12_cheater_code(5);
        assert!(exp.all_ok(), "{}", exp.to_markdown());
    }
}
