//! E2, E3, E11: the crawling experiments.

use std::path::Path;
use std::sync::Arc;

use lbsn_crawler::{
    CrawlDatabase, CrawlTarget, CrawlerConfig, Fetcher, MultiThreadCrawler, SimulatedHttp,
    SimulatedHttpConfig,
};
use lbsn_defense::crawl_control::{
    collateral_damage, proxied_pages_per_hour, ClientIp, CrawlControlConfig, CrawlGate,
    GatedFetcher, NatModel,
};
use lbsn_geo::BoundingBox;
use lbsn_server::web::{WebConfig, WebFrontend};
use lbsn_sim::{LatencyModel, RngStream};
use lbsn_workload::PopulationSpec;

use crate::harness::TestBed;
use crate::report::{write_csv, Experiment};

/// Builds a small population and returns its web frontend (enough for
/// crawl-mechanics experiments that don't need the full bed).
fn small_frontend(seed: u64, users: u64) -> (WebFrontend, u64) {
    let bed = TestBed::from_spec(&PopulationSpec::tiny(users, seed));
    let count = bed.server.user_count();
    (bed.web, count)
}

/// E2 (§3.2): crawler throughput vs thread count.
///
/// The paper: "we set 14 to 16 threads on each of the three crawling
/// machines to crawl 100,000 users per hour" — i.e. ~33 k pages/hour per
/// machine at 14–16 threads, which implies roughly 1.5 s per page
/// end-to-end. We sweep threads at that per-page latency and check the
/// scaling shape plus the paper's operating point.
pub fn e02_crawl_throughput(seed: u64) -> Experiment {
    let mut exp = Experiment::new("E2", "Multi-threaded crawler throughput", "§3.2");
    let (web, users) = small_frontend(seed, 1_500);
    let latency = LatencyModel::Lognormal {
        median_ms: 1_400.0,
        sigma: 0.4,
    };
    let mut series = Vec::new();
    for threads in [1usize, 2, 4, 8, 15, 32] {
        let http = SimulatedHttp::new(
            web.clone(),
            SimulatedHttpConfig {
                latency,
                time_scale: 0.002, // sleep 0.2% of real latency: realistic interleaving, fast wall-clock
                failure_rate: 0.01,
                seed: seed ^ threads as u64,
                ..SimulatedHttpConfig::default()
            },
        );
        let db = Arc::new(CrawlDatabase::new());
        let crawler = MultiThreadCrawler::new(
            http,
            db,
            CrawlerConfig {
                threads,
                target: CrawlTarget::Users,
                max_id: Some(users),
                ..CrawlerConfig::default()
            },
        );
        let stats = crawler.run();
        series.push((threads, stats.pages_per_hour()));
    }
    for (threads, pph) in &series {
        let expected = 2_400.0 * *threads as f64; // ~1.5s/page ⇒ 2.4k/h/thread
        exp.row(
            format!("{threads} threads"),
            format!("~{:.0}k pages/h (linear scaling)", expected / 1_000.0),
            format!("{:.0}k pages/h", pph / 1_000.0),
            *pph > expected * 0.5 && *pph < expected * 2.5,
        );
    }
    let at_15 = series
        .iter()
        .find(|(t, _)| *t == 15)
        .map(|(_, p)| *p)
        .unwrap_or(0.0);
    exp.row(
        "the paper's rig: 3 machines × 15 threads",
        "100,000 users/hour",
        format!(
            "{:.0}k users/hour (3 × measured 15-thread rate)",
            3.0 * at_15 / 1_000.0
        ),
        (3.0 * at_15) > 50_000.0 && (3.0 * at_15) < 220_000.0,
    );
    let (t1, p1) = series[0];
    let (t15, p15) = series[4];
    exp.row(
        "thread scaling 1 → 15",
        "near-linear (parallel crawling pays)",
        format!("×{:.1} throughput for ×{} threads", p15 / p1, t15 / t1),
        p15 / p1 > 8.0,
    );
    // Full-crawl turnaround at the measured rate, with the paper's
    // three machines.
    let full_users_days = 1_890_000.0 / (3.0 * at_15) / 24.0;
    exp.row(
        "time to re-crawl all 1.89 M user profiles",
        "\"we can update all user profiles in less than two days\"",
        format!("{full_users_days:.1} days at 3×15 threads"),
        full_users_days < 2.5,
    );
    // Venue crawling ran at half the user rate (5–6 threads/machine).
    let venue_rate = 3.0 * at_15 * (5.5 / 15.0);
    let full_venues_days = 5_600_000.0 / venue_rate / 24.0;
    exp.row(
        "time to re-crawl all 5.6 M venue profiles",
        "\"update all venue profiles in about 5 days\" (3×5–6 threads)",
        format!("{full_venues_days:.1} days at 3×5.5 threads"),
        (3.0..9.0).contains(&full_venues_days),
    );
    exp.note("Per-page latency ~1.5 s (log-normal), matching the implied production rate; wall-clock sleeps scaled to 0.2 % with throughput accounted in simulated time.");
    exp
}

/// E3 (Fig 3.4): `SELECT Longitude, Latitude FROM VenueInfo WHERE Name
/// LIKE "%Starbucks%"` traces the US silhouette.
pub fn e03_starbucks_map(bed: &TestBed, output_dir: &Path) -> Experiment {
    let mut exp = Experiment::new(
        "E3",
        "Starbucks branches crawled from the website",
        "Fig 3.4",
    );
    let rows = bed.db.venues_where_name_like("%Starbucks%");
    exp.row(
        "query returns the chain",
        "branches distributed all over the US",
        format!("{} branches", rows.len()),
        rows.len() >= 60,
    );
    let bbox = BoundingBox::enclosing(rows.iter().map(|v| v.location)).expect("chain is non-empty");
    exp.row(
        "longitude span",
        "≈ −160…−60 (Hawaii/Alaska to the east coast)",
        format!("{:.1}…{:.1}", bbox.min_lon(), bbox.max_lon()),
        bbox.min_lon() < -149.0 && bbox.max_lon() > -72.0,
    );
    exp.row(
        "latitude span",
        "≈ 19…61 (Honolulu to Fairbanks)",
        format!("{:.1}…{:.1}", bbox.min_lat(), bbox.max_lat()),
        bbox.min_lat() < 26.0 && bbox.max_lat() > 58.0,
    );
    let all_coffee = rows.iter().all(|v| v.category == "Coffee Shop");
    exp.row(
        "category integrity",
        "coffee shops",
        if all_coffee {
            "all Coffee Shop"
        } else {
            "mixed"
        }
        .to_string(),
        all_coffee,
    );
    let _ = write_csv(
        output_dir.join("e3_starbucks.csv"),
        "lon,lat",
        rows.iter()
            .map(|v| format!("{:.6},{:.6}", v.location.lon(), v.location.lat())),
    );
    exp.note("Scatter written to e3_starbucks.csv; plot lon/lat to see the silhouette.");
    exp
}

/// E11 (§5.2): anti-crawl defenses — login gating, rate limiting with
/// automatic blocking, NAT collateral damage, and Tor throughput.
pub fn e11_crawl_defense(seed: u64) -> Experiment {
    let mut exp = Experiment::new("E11", "Mitigating the crawling threat", "§5.2");
    let (web, users) = small_frontend(seed, 1_200);

    let crawl_with = |fetcher: Arc<dyn Fetcher>| {
        let db = Arc::new(CrawlDatabase::new());
        let crawler = MultiThreadCrawler::new(
            fetcher,
            Arc::clone(&db),
            CrawlerConfig {
                threads: 8,
                target: CrawlTarget::Users,
                max_id: Some(users),
                ..CrawlerConfig::default()
            },
        );
        let stats = crawler.run();
        (db, stats)
    };

    // Baseline: the open August-2010 site.
    let open_http = SimulatedHttp::new(web.clone(), SimulatedHttpConfig::default());
    let (open_db, open_stats) = crawl_with(open_http);
    exp.row(
        "open site (baseline)",
        "full profile crawl possible",
        format!("{} of {} profiles stored", open_stats.stored, users),
        open_db.user_count() as u64 == users,
    );

    // Login gate.
    let gated_web = web.clone();
    gated_web.set_config(WebConfig {
        require_login: true,
        ..WebConfig::default()
    });
    let anon_http = SimulatedHttp::new(gated_web.clone(), SimulatedHttpConfig::default());
    let (login_db, login_stats) = crawl_with(anon_http);
    exp.row(
        "login required, anonymous crawler",
        "crawl blocked (\"easier to detect … and block them\")",
        format!(
            "{} stored, {} blocked",
            login_db.user_count(),
            login_stats.blocked
        ),
        login_db.user_count() == 0,
    );
    gated_web.set_config(WebConfig::default());

    // Per-IP rate limiting with escalation to blocking.
    let gate = CrawlGate::new(CrawlControlConfig {
        requests_per_minute: 60.0,
        burst: 40.0,
        block_after_limit_hits: 50,
    });
    let inner = SimulatedHttp::new(web.clone(), SimulatedHttpConfig::default());
    let limited = GatedFetcher::new(inner, Arc::clone(&gate), ClientIp(1));
    let (limited_db, _limited_stats) = crawl_with(limited);
    exp.row(
        "per-IP rate limit (60/min, burst 40) + auto-block",
        "crawl throughput collapses; crawler IP blocked",
        format!(
            "{} of {} stored before block; blocked IPs: {}",
            limited_db.user_count(),
            users,
            gate.blocked_ips().len()
        ),
        (limited_db.user_count() as u64) < users / 5 && !gate.blocked_ips().is_empty(),
    );

    // NAT collateral damage (Casado–Freedman). Independent RNG stream.
    let mut rng = RngStream::from_seed(seed ^ 0x4E41_5400);
    let damage = collateral_damage(1_000, &NatModel::default(), &mut rng);
    exp.row(
        "collateral damage of blocking 1000 crawler IPs",
        "\"limited collateral damage\" (most NATs hide few hosts)",
        format!("{:.1} innocents per blocked IP", damage.innocents_per_ip),
        damage.innocents_per_ip < 4.0,
    );

    // Tor/proxy throughput.
    let direct = proxied_pages_per_hour(1_500.0, 1.0, 15);
    let tor = proxied_pages_per_hour(1_500.0, 20.0, 15);
    exp.row(
        "crawling through Tor (≈20× latency)",
        "\"suffers from limited performance for the purpose of crawling\"",
        format!("{:.0} pages/h vs {:.0} direct", tor, direct),
        tor < direct / 10.0,
    );
    exp.note("Rate-limit numbers use real-time refill; the crawl finishes in well under a minute, so the burst dominates.");
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_reproduces_quickly() {
        let exp = e11_crawl_defense(7);
        assert!(exp.all_ok(), "{}", exp.to_markdown());
    }
}
