//! E13: the admission-policy scenario matrix, driven by config alone.
//!
//! The pipeline refactor's payoff claim is that rule ablations and
//! defense deployments are *configuration*, not code: every cell of
//! this matrix is a committed `policies/*.json` file deserialized into
//! [`ServerConfig`], optionally fronted by a Wi-Fi
//! [`VerifierStage`](lbsn_defense::VerifierStage) — the same probe
//! battery runs unchanged against every cell.
//!
//! Each cell runs against its own registry (probe user ids restart per
//! cell, so sharing an audit plane would merge unrelated accounts), and
//! the battery's forensics claim is checked the same way an operator
//! would: `obs-audit why` on each flagged probe account must name the
//! detector or verifier the cell's policy enables.

use std::path::PathBuf;
use std::sync::Arc;

use lbsn_defense::{RouterRegistry, VerifierStack, VerifierStage, WifiVerifier};
use lbsn_geo::{destination, GeoPoint};
use lbsn_server::{
    AdmissionOutcome, CheatFlag, CheckinEvidence, CheckinRequest, CheckinSource, CheckinVerifier,
    LbsnServer, ServerConfig, UserSpec, VenueSpec,
};
use lbsn_sim::{Duration, SimClock};

use crate::obsaudit::{parse_audit_input, render_why};
use crate::report::Experiment;

fn sf() -> GeoPoint {
    GeoPoint::new(37.8080, -122.4177).unwrap()
}

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// Repo-relative policy file directory (committed alongside the code).
fn policies_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../policies")
}

/// Loads one committed policy file into a [`ServerConfig`].
pub fn load_policy(file: &str) -> ServerConfig {
    let path = policies_dir().join(file);
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad policy {}: {e}", path.display()))
}

/// What the fixed probe battery observed against one matrix cell.
struct Probes {
    /// The honest walk-in was rewarded.
    honest_ok: bool,
    /// What happened to the §3.1 GPS spoof (request byte-identical to
    /// an honest one; only the physical evidence differs).
    spoof: &'static str,
    /// The 4th rapid-fire check-in drew the warning flag.
    rapid_flagged: bool,
    /// The ABQ→SF 10-minute teleport drew the speed flag.
    teleport_flagged: bool,
    /// `obs-audit why` on the spoof account, run against the cell's
    /// snapshot; `None` when the account drew no captured negative.
    spoof_why: Option<String>,
    /// `obs-audit why` on the teleporting account.
    teleport_why: Option<String>,
    /// The cell's full registry snapshot (for report attachment).
    snapshot: lbsn_obs::Snapshot,
}

impl Probes {
    fn observed(&self) -> String {
        format!(
            "honest {}, spoof {}, rapid-fire 4th {}, teleport {}",
            if self.honest_ok {
                "rewarded"
            } else {
                "refused"
            },
            self.spoof,
            if self.rapid_flagged {
                "flagged"
            } else {
                "passed"
            },
            if self.teleport_flagged {
                "flagged"
            } else {
                "passed"
            },
        )
    }
}

/// Runs the probe battery against a server built purely from `config`,
/// optionally fronted by a venue-side Wi-Fi verifier stage. Each cell
/// gets its own registry: probe user ids restart from 1 every cell, so
/// a shared audit plane would merge unrelated accounts' forensics.
fn run_cell(config: ServerConfig, wifi: bool) -> Probes {
    let routers = Arc::new(RouterRegistry::new());
    let verifiers: Vec<Box<dyn CheckinVerifier>> = if wifi {
        vec![Box::new(VerifierStage::new(
            VerifierStack::new().push(Box::new(WifiVerifier::default())),
            Arc::clone(&routers),
        ))]
    } else {
        Vec::new()
    };
    let registry = Arc::new(lbsn_obs::Registry::new());
    let server =
        LbsnServer::with_pipeline(SimClock::new(), config, Arc::clone(&registry), verifiers);

    let v_sf = server.register_venue(VenueSpec::new("Wharf Sign", sf()));
    let v_abq = server.register_venue(VenueSpec::new("Home Cafe", abq()));
    let mut mall = Vec::new();
    for i in 0..4 {
        mall.push(server.register_venue(VenueSpec::new(
            format!("Mall Shop {i}"),
            destination(abq(), 90.0, 40.0 * i as f64),
        )));
    }
    if wifi {
        for v in [v_sf, v_abq].iter().chain(&mall) {
            routers.register(*v);
        }
    }

    let check = |user, venue, reported, physical| {
        server
            .check_in_with_evidence(
                &CheckinRequest {
                    user,
                    venue,
                    reported_location: reported,
                    source: CheckinSource::MobileApp,
                },
                Some(&CheckinEvidence::local(physical)),
            )
            .unwrap()
    };
    let flags = |out: &AdmissionOutcome| match out {
        AdmissionOutcome::Processed(o) => o.flags.clone(),
        AdmissionOutcome::VerifierRejected { .. } => Vec::new(),
    };

    // Probe 1: honest walk-in, physically at the venue.
    let honest = server.register_user(UserSpec::anonymous());
    let honest_ok = check(honest, v_sf, sf(), sf()).rewarded();

    // Probe 2: the §3.1 spoof — reported fix says SF, device sits in
    // Albuquerque. Indistinguishable from probe 1 on the wire.
    let cheater = server.register_user(UserSpec::anonymous());
    let spoof = match check(cheater, v_sf, sf(), abq()) {
        AdmissionOutcome::VerifierRejected { .. } => "dropped by verifier",
        AdmissionOutcome::Processed(o) if o.rewarded() => "rewarded",
        AdmissionOutcome::Processed(_) => "flagged",
    };

    // Probe 3: rapid-fire burst — four mall venues, 45 s apart.
    let burster = server.register_user(UserSpec::anonymous());
    let mut last = Vec::new();
    for v in &mall {
        let loc = server.venue(*v).unwrap().location;
        last = flags(&check(burster, *v, loc, loc));
        server.clock().advance(Duration::secs(45));
    }
    let rapid_flagged = last.contains(&CheatFlag::RapidFire);

    // Probe 4: superhuman speed — ABQ to SF in ten minutes.
    let runner = server.register_user(UserSpec::anonymous());
    check(runner, v_abq, abq(), abq());
    server.clock().advance(Duration::minutes(10));
    let teleport_flagged =
        flags(&check(runner, v_sf, sf(), sf())).contains(&CheatFlag::SuperhumanSpeed);

    // Interrogate the cell exactly the way an operator would: snapshot
    // the registry and run the `obs-audit why` query over it.
    let snapshot = registry.snapshot();
    let audit = parse_audit_input(&snapshot.to_json(), "cell snapshot")
        .expect("cell snapshot parses as an audit corpus");
    let spoof_why = render_why(&audit, cheater.value());
    let teleport_why = render_why(&audit, runner.value());

    Probes {
        honest_ok,
        spoof,
        rapid_flagged,
        teleport_flagged,
        spoof_why,
        teleport_why,
        snapshot,
    }
}

/// Whether an `obs-audit why` answer blames `name` — i.e. the account
/// drew a negative decision attributed to that detector or verifier.
fn blames(why: &Option<String>, name: &str) -> bool {
    why.as_deref().is_some_and(|w| {
        w.contains(&format!("| `{name}` | **fired**"))
            || w.contains(&format!("| `{name}` | reject |"))
    })
}

/// E13: detector on/off combinations ± Wi-Fi verifier, each cell a
/// committed JSON policy file — no code changes between cells.
pub fn e13_policy_matrix() -> Experiment {
    let mut exp = Experiment::new(
        "E13",
        "Admission-policy matrix from config alone",
        "§2.3 + §5.1",
    );

    // Cell 1: the paper-era default, no verification deployed. The GPS
    // spoof sails through (the server only ever sees the forged fix);
    // the behavioural rules still bite.
    let p = run_cell(load_policy("default.json"), false);
    exp.row(
        "default.json, no verifier",
        "\"the current system design of foursquare is vulnerable to location cheating\" (§3.1)",
        p.observed(),
        p.honest_ok && p.spoof == "rewarded" && p.rapid_flagged && p.teleport_flagged,
    );
    // The undetected spoof leaves no negative evidence; the teleport's
    // `why` must blame the speed detector with its compared values.
    exp.row(
        "forensics: default, no verifier",
        "obs-audit why blames the detector the cell enables",
        "spoof leaves no evidence; teleport blamed on superhuman-speed",
        !blames(&p.spoof_why, "verifier-stack") && blames(&p.teleport_why, "superhuman-speed"),
    );

    // Cell 2: same file, venue-side Wi-Fi verification stage installed.
    // Only the spoof's fate changes; honest traffic and the behavioural
    // rules are untouched.
    let p = run_cell(load_policy("default.json"), true);
    exp.row(
        "default.json + Wi-Fi verifier",
        "\"the Wi-Fi router sends the verification information to the … LBS server\" (§5.1)",
        p.observed(),
        p.honest_ok && p.spoof == "dropped by verifier" && p.rapid_flagged && p.teleport_flagged,
    );
    exp.row(
        "forensics: default + Wi-Fi verifier",
        "obs-audit why blames the verifier stage for the spoof drop",
        "spoof blamed on verifier-stack; teleport blamed on superhuman-speed",
        blames(&p.spoof_why, "verifier-stack") && blames(&p.teleport_why, "superhuman-speed"),
    );
    // Attach the richest cell's snapshot (verifier drop + detector
    // flags + sampled accepts) as E13's observability record — the
    // corpus the README forensics walkthrough queries.
    let wifi_snapshot = p.snapshot.clone();

    // Cell 3: one detector ablated by editing JSON, nothing else moves.
    let p = run_cell(load_policy("no-rapid-fire.json"), false);
    exp.row(
        "no-rapid-fire.json, no verifier",
        "ablating one §2.3 rule is a one-line config edit",
        p.observed(),
        p.honest_ok && p.spoof == "rewarded" && !p.rapid_flagged && p.teleport_flagged,
    );
    exp.row(
        "forensics: no-rapid-fire",
        "the ablated rule never appears in any account's evidence",
        "teleport still blamed on superhuman-speed, never on rapid-fire",
        blames(&p.teleport_why, "superhuman-speed") && !blames(&p.teleport_why, "rapid-fire"),
    );

    // Cell 4: the pre-April-2010 service with a modern verifier bolted
    // on — the stages compose independently: every behavioural rule is
    // off, yet the physical-evidence check still stops the spoof.
    let p = run_cell(load_policy("detectors-off.json"), true);
    exp.row(
        "detectors-off.json + Wi-Fi verifier",
        "verifier and detector stages swap independently (§5.1 on §2.2's rule-free era)",
        p.observed(),
        p.honest_ok && p.spoof == "dropped by verifier" && !p.rapid_flagged && !p.teleport_flagged,
    );
    exp.row(
        "forensics: detectors-off + Wi-Fi verifier",
        "with every detector off, only the verifier can be blamed",
        "spoof blamed on verifier-stack; teleport leaves no evidence",
        blames(&p.spoof_why, "verifier-stack") && !blames(&p.teleport_why, "superhuman-speed"),
    );

    exp.note(
        "Every cell deserializes a committed policies/*.json into ServerConfig and runs \
         against its own registry; the probe battery, pipeline code, and the obs-audit \
         forensics queries are identical across cells.",
    );
    exp.attach_metrics(wifi_snapshot);
    exp
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_server::DetectorConfig;

    #[test]
    fn e13_reproduces() {
        let exp = e13_policy_matrix();
        assert!(exp.all_ok(), "{}", exp.to_markdown());
    }

    #[test]
    fn variant_policies_differ_from_default_only_where_intended() {
        // Pin the variants to the default file's values so a threshold
        // change in one file can't silently diverge from the others.
        assert_eq!(load_policy("default.json"), ServerConfig::default());

        let no_rapid = DetectorConfig {
            enable_rapid_fire: false,
            ..DetectorConfig::default()
        };
        assert_eq!(
            load_policy("no-rapid-fire.json"),
            ServerConfig::with_detectors(no_rapid),
            "no-rapid-fire.json must differ from default only in enable_rapid_fire"
        );

        assert_eq!(
            load_policy("detectors-off.json"),
            ServerConfig::with_detectors(DetectorConfig::disabled().branding_threshold(None)),
            "detectors-off.json must disable every detector and branding, nothing else"
        );
    }
}
