//! E14 — the request frontend under overload.
//!
//! The paper's crawler (§3.2) and mayor-attack scripts (§3.4) both
//! depend on the service staying responsive while being hammered; this
//! experiment measures what the batched request frontend (DESIGN.md
//! §12) does when offered load exceeds drain capacity: decisions stay
//! exact (conservation), excess is shed at the queue high-water mark
//! with a retry hint instead of queueing without bound, and every shed
//! lands in the decision audit plane under `shed.queue_full`.
//!
//! Runs **last** in [`run_all`](crate::experiments::run_all) against
//! the shared bed, so the attached metrics snapshot is a superset of
//! every earlier bed experiment's — CI's slo-gate reads this
//! experiment's snapshot (`metrics/E14.json`) and applies both the
//! pipeline SLOs and the frontend SLOs (p99 sojourn, shed-ratio
//! ceiling) to it.

use std::sync::Arc;

use lbsn_obs::names::{reasons, server as obs_names};
use lbsn_server::{
    CheckinRequest, CheckinSource, FrontendConfig, RequestFrontend, UserId, VenueId,
};
use lbsn_sim::Duration;

use crate::harness::TestBed;
use crate::report::Experiment;

/// Check-ins submitted in the headroom phase (deep queues, no shed
/// expected).
const HEADROOM_BURST: u64 = 4_000;
/// Check-ins fired at the depth-1 frontend in the overload phase.
const OVERLOAD_BURST: u64 = 1_000;

/// Frontend counters at one instant.
struct FrontendCounters {
    submitted: u64,
    decided: u64,
    shed: u64,
}

fn counters(bed: &TestBed) -> FrontendCounters {
    let snap = bed.registry.snapshot();
    FrontendCounters {
        submitted: snap.counter(obs_names::FRONTEND_SUBMITTED),
        decided: snap.counter(obs_names::FRONTEND_DECIDED),
        shed: snap.counter(obs_names::FRONTEND_SHED),
    }
}

/// One submission against a population venue, reporting the venue's own
/// coordinates (GPS verification passes) after a 2-virtual-minute
/// advance (cooldown windows expire between same-user submissions).
fn request(bed: &TestBed, user: u64, venue: u64) -> CheckinRequest {
    let venue = VenueId(venue);
    let reported_location = bed
        .server
        .with_venue(venue, |v| v.location)
        .expect("population venue");
    bed.server.clock().advance(Duration::secs(121));
    CheckinRequest {
        user: UserId(user),
        venue,
        reported_location,
        source: CheckinSource::MobileApp,
    }
}

/// E14: overload behavior of the batched request frontend.
pub fn e14_overload(bed: &TestBed) -> Experiment {
    let mut exp = Experiment::new(
        "E14",
        "Request frontend under overload",
        "DESIGN §12 — admission backpressure",
    );
    let users = bed.population.users.len() as u64;
    let venues = bed.population.venue_count;
    assert!(users > 0 && venues > 0, "bed population is empty");

    // Phase A — headroom: default-depth queues, a burst far below
    // capacity. Everything should be decided, nothing shed.
    let before = counters(bed);
    {
        let frontend = RequestFrontend::new(Arc::clone(&bed.server), FrontendConfig::default());
        for i in 0..HEADROOM_BURST {
            let _ = frontend.submit(request(bed, i % users + 1, i % venues + 1));
        }
        frontend.quiesce();
        frontend.shutdown();
    }
    let after_a = counters(bed);
    exp.row(
        "headroom burst fully decided",
        format!("{HEADROOM_BURST} submitted, 0 shed"),
        format!(
            "{} submitted, {} shed",
            after_a.submitted - before.submitted,
            after_a.shed - before.shed
        ),
        after_a.submitted - before.submitted == HEADROOM_BURST && after_a.shed == before.shed,
    );

    // Phase B — overload: a single user hammering a workers-1 /
    // depth-1 / batch-1 frontend. The submit loop outruns the drain
    // loop, so the one queue slot is usually occupied and the
    // high-water mark does the only thing it can: shed.
    {
        let frontend = RequestFrontend::new(
            Arc::clone(&bed.server),
            FrontendConfig {
                workers: 1,
                queue_depth: 1,
                batch_max: 1,
            },
        );
        for i in 0..OVERLOAD_BURST {
            let _ = frontend.submit(request(bed, 1, i % venues + 1));
        }
        frontend.quiesce();
        frontend.shutdown();
    }
    let after_b = counters(bed);
    let shed_b = after_b.shed - after_a.shed;
    exp.row(
        "overload burst sheds at high-water mark",
        format!("some of {OVERLOAD_BURST} shed (depth-1 queue)"),
        format!("{shed_b} shed"),
        shed_b > 0,
    );

    exp.row(
        "conservation: submitted = decided + shed",
        format!("{} = decided + shed", after_b.submitted),
        format!("{} + {}", after_b.decided, after_b.shed),
        after_b.submitted == after_b.decided + after_b.shed,
    );

    let snap = bed.registry.snapshot();
    let p99_ns = snap
        .quantile_ns(obs_names::FRONTEND_SOJOURN, 0.99)
        .unwrap_or(u64::MAX);
    exp.row(
        "p99 sojourn (submit→decision) under SLO",
        "< 100 ms",
        format!("{:.2} ms", p99_ns as f64 / 1e6),
        p99_ns < 100_000_000,
    );

    let audited_sheds = bed
        .registry
        .audit()
        .decisions()
        .iter()
        .filter(|r| r.outcome == reasons::SHED_QUEUE_FULL)
        .count() as u64;
    exp.row(
        "shed decisions reach the audit plane",
        "every shed audited as shed.queue_full",
        format!("{audited_sheds} of {} shed audited", after_b.shed),
        audited_sheds > 0 && audited_sheds <= after_b.shed,
    );

    exp.note(format!(
        "Overload ratio this run: {} shed / {} submitted = {:.3} — the slo-gate \
         shed-ratio ceiling (0.25) is deliberately above the designed overload \
         phase so the gate catches regressions (a frontend that sheds under \
         headroom), not the experiment's own stress phase.",
        after_b.shed,
        after_b.submitted,
        after_b.shed as f64 / after_b.submitted.max(1) as f64,
    ));
    exp
}
