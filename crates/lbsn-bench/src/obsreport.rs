//! Snapshot diffing and SLO gating — the library behind the
//! `obs-report` binary.
//!
//! Takes two [`Snapshot`] JSON documents (a committed baseline and a
//! fresh run), prints a regression table of counters, gauges, and
//! sketch quantiles, then evaluates an [`SloPolicy`] against the new
//! snapshot. The binary exits nonzero on any SLO breach, which is what
//! turns `target/experiments/metrics/E*.json` trajectories into a
//! machine-checkable CI gate.

use std::collections::BTreeSet;

use lbsn_obs::names as obs;
use lbsn_obs::{SloOutcome, SloPolicy, SloRule, Snapshot, SNAPSHOT_SCHEMA_VERSION};

/// Quantiles shown per latency metric in the diff table.
const QUANTILES: [(f64, &str); 3] = [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")];

/// One row of the regression table.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric name (quantile rows are suffixed, e.g. `foo p99`).
    pub metric: String,
    /// Baseline value, when the metric existed there.
    pub old: Option<f64>,
    /// New-run value, when the metric exists now.
    pub new: Option<f64>,
}

impl DiffRow {
    /// Relative change new-vs-old in percent; `None` when either side
    /// is missing or the baseline is zero.
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o != 0.0 => Some((n - o) / o * 100.0),
            _ => None,
        }
    }
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "—".to_string(),
        Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{}", v as i64),
        Some(v) => format!("{v:.2}"),
    }
}

fn fmt_delta(row: &DiffRow) -> String {
    match row.delta_pct() {
        None => "—".to_string(),
        Some(d) => format!("{d:+.1}%"),
    }
}

/// Builds the regression rows: every counter and gauge in either
/// snapshot, plus p50/p95/p99 for every latency metric that has a
/// sketch or histogram on either side.
pub fn diff_rows(old: &Snapshot, new: &Snapshot) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    let counter_names: BTreeSet<&String> = old.counters.keys().chain(new.counters.keys()).collect();
    for name in counter_names {
        rows.push(DiffRow {
            metric: name.clone(),
            old: old.counters.get(name).map(|&v| v as f64),
            new: new.counters.get(name).map(|&v| v as f64),
        });
    }
    let gauge_names: BTreeSet<&String> = old.gauges.keys().chain(new.gauges.keys()).collect();
    for name in gauge_names {
        rows.push(DiffRow {
            metric: name.clone(),
            old: old.gauges.get(name).copied(),
            new: new.gauges.get(name).copied(),
        });
    }
    let latency_names: BTreeSet<&String> = old
        .sketches
        .keys()
        .chain(new.sketches.keys())
        .chain(old.histograms.keys())
        .chain(new.histograms.keys())
        .collect();
    for name in latency_names {
        for (q, label) in QUANTILES {
            rows.push(DiffRow {
                metric: format!("{name} {label}"),
                old: old.quantile_ns(name, q).map(|v| v as f64),
                new: new.quantile_ns(name, q).map(|v| v as f64),
            });
        }
    }
    rows
}

/// Renders the regression table as Markdown.
pub fn render_diff_table(rows: &[DiffRow]) -> String {
    let mut out = String::from("| metric | baseline | new | Δ |\n|---|---:|---:|---:|\n");
    for row in rows {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            row.metric,
            fmt_value(row.old),
            fmt_value(row.new),
            fmt_delta(row),
        ));
    }
    out
}

/// Rejects a snapshot written by a build newer than this one.
///
/// Old schemas parse fine (the deserializer fills the gaps), but a
/// *newer* schema means fields this binary has never heard of were
/// silently dropped — diffing or gating on such a document would
/// report false confidence. `label` names the offending file in the
/// error.
///
/// # Errors
///
/// A description of the version mismatch when `snap.schema` exceeds
/// [`SNAPSHOT_SCHEMA_VERSION`].
pub fn check_schema_ceiling(snap: &Snapshot, label: &str) -> Result<(), String> {
    if snap.schema > SNAPSHOT_SCHEMA_VERSION {
        return Err(format!(
            "{label} carries snapshot schema {} but this obs-report understands \
             at most {SNAPSHOT_SCHEMA_VERSION}; rebuild obs-report from the same \
             tree that wrote the snapshot",
            snap.schema
        ));
    }
    Ok(())
}

/// Renders every shard family's contention heatmap as Markdown: one
/// table per family plus a hottest/coldest summary line with the skew
/// ratio. Empty string when the snapshot has no heatmaps (pre-v3
/// baselines).
pub fn render_heatmap(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.shard_heat {
        let hottest = family.shards.iter().max_by_key(|s| s.ops);
        let coldest = family.shards.iter().min_by_key(|s| s.ops);
        out.push_str(&format!(
            "#### `{}` — {} ops, {} contended, skew {:.2}×\n\n",
            family.family,
            family.total_ops(),
            family.total_contended(),
            family.skew_ratio(),
        ));
        if let (Some(hot), Some(cold)) = (hottest, coldest) {
            out.push_str(&format!(
                "hottest shard {} ({} ops), coldest shard {} ({} ops)\n\n",
                hot.shard, hot.ops, cold.shard, cold.ops,
            ));
        }
        out.push_str(
            "| shard | ops | contended | mean wait ns | max wait ns | occupancy |\n\
             |---:|---:|---:|---:|---:|---:|\n",
        );
        for row in &family.shards {
            out.push_str(&format!(
                "| {} | {} | {} | {:.0} | {} | {} |\n",
                row.shard,
                row.ops,
                row.contended,
                row.mean_wait_ns(),
                row.wait_max_ns,
                row.occupancy,
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders SLO outcomes as Markdown, breaches first.
pub fn render_slo_table(outcomes: &[SloOutcome]) -> String {
    let mut out = String::from("| SLO | observed | verdict |\n|---|---:|---|\n");
    let (breached, held): (Vec<_>, Vec<_>) = outcomes.iter().partition(|o| !o.pass);
    for o in breached.iter().chain(held.iter()) {
        let observed = match o.observed {
            None => "missing".to_string(),
            Some(v) => fmt_value(Some(v)),
        };
        let verdict = if o.pass { "ok" } else { "**BREACH**" };
        out.push_str(&format!("| `{}` | {} | {} |\n", o.rule, observed, verdict));
    }
    out
}

/// The full report: diff table + SLO evaluation of the new snapshot.
#[derive(Debug, Clone)]
pub struct Report {
    /// Rendered Markdown (diff table + SLO table).
    pub markdown: String,
    /// Per-rule outcomes.
    pub outcomes: Vec<SloOutcome>,
}

impl Report {
    /// Whether any SLO rule was breached.
    pub fn breached(&self) -> bool {
        self.outcomes.iter().any(|o| !o.pass)
    }
}

/// Diffs `new` against `old` and gates `new` on `policy`.
pub fn run_report(old: &Snapshot, new: &Snapshot, policy: &SloPolicy) -> Report {
    let rows = diff_rows(old, new);
    let outcomes = policy.evaluate(new);
    let verdict = if outcomes.iter().all(|o| o.pass) {
        "all SLOs hold"
    } else {
        "SLO BREACH"
    };
    let heatmap = render_heatmap(new);
    let heatmap_section = if heatmap.is_empty() {
        String::new()
    } else {
        format!("\n### Shard contention heatmap\n\n{heatmap}")
    };
    let markdown = format!(
        "## obs-report — schema {} baseline vs schema {} run\n\n\
         ### Metric diff\n\n{}\n### SLO gate `{}` — {}\n\n{}{}",
        old.schema,
        new.schema,
        render_diff_table(&rows),
        policy.name,
        verdict,
        render_slo_table(&outcomes),
        heatmap_section,
    );
    Report { markdown, outcomes }
}

/// The default gate for experiment runs: loose enough to hold on any
/// development machine, tight enough that an order-of-magnitude
/// check-in regression, a dead crawl, or a spike in fetch errors
/// breaks CI. Applied to the bed-registry snapshots (`metrics/E8.json`
/// carries both the check-in pipeline and the stand-up crawl).
pub fn default_policy() -> SloPolicy {
    SloPolicy {
        name: "experiments-default".to_string(),
        rules: vec![
            SloRule::QuantileMaxNs {
                metric: obs::server::CHECKIN_TOTAL.to_string(),
                q: 0.99,
                max_ns: 50_000_000, // 50 ms: in-process pipeline, huge headroom
            },
            SloRule::QuantileMaxNs {
                metric: obs::crawler::FETCH.to_string(),
                q: 0.99,
                max_ns: 5_000_000_000, // 5 s simulated round-trip ceiling
            },
            SloRule::QuantileMaxNs {
                metric: obs::server::SHARD_LOCK_WAIT.to_string(),
                q: 0.99,
                max_ns: 5_000_000, // 5 ms shard-contention ceiling
            },
            SloRule::QuantileMaxNs {
                // Per-detector cost gate: each cheater-code rule is an
                // O(1)-ish predicate over the locked user record; if one
                // ever grows a scan that pushes its p99 past ~1 ms
                // (1 << 20 ns, a histogram bucket bound), the admission
                // pipeline's budget is being spent in the wrong stage.
                // The GPS detector stands proxy for the chain — it runs
                // on every non-branded check-in under the default
                // policy.
                metric: obs::server::detector_latency("gps-proximity"),
                q: 0.99,
                max_ns: 1 << 20,
            },
            SloRule::CounterMin {
                metric: obs::server::ACCEPTED.to_string(),
                min: 100, // the workload actually exercised the pipeline
            },
            SloRule::CounterMin {
                metric: obs::crawler::STORE_USERS.to_string(),
                min: 100, // the crawl actually stored profiles
            },
            SloRule::RatioMax {
                numerator: obs::crawler::FETCH_ERRORS.to_string(),
                denominator: obs::crawler::FETCH_PAGES.to_string(),
                max_ratio: 0.01,
            },
            SloRule::GaugeMin {
                metric: obs::crawler::THROUGHPUT_USERS_PER_HOUR.to_string(),
                min: 1_000.0, // paper's Fig 3.3 scale is ~100k/h
            },
            SloRule::GaugeMinMax {
                // Deep-accounted resident bytes per registered user at
                // the last memory sample. Too low means the sampler
                // stopped seeing state (instrumentation regression);
                // too high means a footprint regression that won't
                // survive the paper's 1.89M-user population. The
                // hot/cold entity split, packed check-in history, and
                // venue-string arenas put the bed workload at ~2.4
                // KB/user (small worlds carry fixed overhead the 1M
                // rung amortises to ~0.9 KB); the band leaves ~1.7×
                // headroom so a return to boxed-per-entity layouts
                // fails the gate.
                metric: obs::server::MEM_BYTES_PER_USER.to_string(),
                min: 200.0,
                max: 4_096.0,
            },
            SloRule::QuantileMaxNs {
                metric: obs::server::FRONTEND_SOJOURN.to_string(),
                q: 0.99,
                max_ns: 100_000_000, // 100 ms queue sojourn under overload
            },
            SloRule::RatioMax {
                numerator: obs::server::FRONTEND_SHED.to_string(),
                denominator: obs::server::FRONTEND_SUBMITTED.to_string(),
                max_ratio: 0.25,
            },
            SloRule::CounterMin {
                metric: obs::server::FRONTEND_DECIDED.to_string(),
                min: 100, // the overload experiment actually drained
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_obs::Registry;

    fn sample() -> Snapshot {
        let registry = Registry::new();
        registry.counter("c.pages").add(10);
        registry.gauge("g.rate").set(2.0);
        registry.latency("lat").record_ns(1_000);
        registry.snapshot()
    }

    #[test]
    fn diff_covers_counters_gauges_and_quantiles() {
        let old = sample();
        let mut new = old.clone();
        new.counters.insert("c.pages".to_string(), 20);
        let rows = diff_rows(&old, &new);
        let pages = rows.iter().find(|r| r.metric == "c.pages").unwrap();
        assert_eq!(pages.old, Some(10.0));
        assert_eq!(pages.new, Some(20.0));
        assert_eq!(pages.delta_pct(), Some(100.0));
        assert!(rows.iter().any(|r| r.metric == "lat p99"));
        let table = render_diff_table(&rows);
        assert!(table.contains("| `c.pages` | 10 | 20 | +100.0% |"));
    }

    #[test]
    fn missing_side_renders_dash() {
        let old = Snapshot::default();
        let new = sample();
        let rows = diff_rows(&old, &new);
        let pages = rows.iter().find(|r| r.metric == "c.pages").unwrap();
        assert_eq!(pages.old, None);
        assert_eq!(pages.delta_pct(), None);
        assert!(render_diff_table(&rows).contains("| `c.pages` | — | 10 | — |"));
    }

    #[test]
    fn report_flags_breaches() {
        let snap = sample();
        let ok_policy = SloPolicy {
            name: "ok".to_string(),
            rules: vec![SloRule::CounterMin {
                metric: "c.pages".to_string(),
                min: 1,
            }],
        };
        let report = run_report(&snap, &snap, &ok_policy);
        assert!(!report.breached());
        assert!(report.markdown.contains("all SLOs hold"));

        let breach_policy = SloPolicy {
            name: "tight".to_string(),
            rules: vec![SloRule::CounterMin {
                metric: "c.pages".to_string(),
                min: 1_000_000,
            }],
        };
        let report = run_report(&snap, &snap, &breach_policy);
        assert!(report.breached());
        assert!(report.markdown.contains("**BREACH**"));
    }

    #[test]
    fn default_policy_round_trips() {
        let policy = default_policy();
        let back = SloPolicy::from_json(&policy.to_json()).unwrap();
        assert_eq!(back, policy);
        assert!(!policy.rules.is_empty());
        assert!(
            policy
                .rules
                .iter()
                .any(|r| matches!(r, SloRule::GaugeMinMax { metric, .. }
                    if metric == obs::server::MEM_BYTES_PER_USER)),
            "bytes-per-user band is part of the default gate"
        );
    }

    #[test]
    fn heatmap_renders_per_family_tables_and_skew() {
        let registry = Registry::new();
        let heat = registry.shard_heat("server.shard.heat.users", 4);
        for _ in 0..30 {
            heat.record_fast(1);
        }
        heat.record_fast(3);
        heat.record_wait(3, 5_000);
        heat.set_occupancy(1, 12);
        let snap = registry.snapshot();
        let md = render_heatmap(&snap);
        assert!(md.contains("`server.shard.heat.users`"));
        assert!(md.contains("skew 30.00×"), "30 ops vs 1-op floor: {md}");
        assert!(md.contains("hottest shard 1 (30 ops)"));
        assert!(md.contains("| 1 | 30 | 0 | 0 | 0 | 12 |"));
        // The full report embeds the section; an empty snapshot omits it.
        let report = run_report(&snap, &snap, &SloPolicy::default());
        assert!(report.markdown.contains("### Shard contention heatmap"));
        assert_eq!(render_heatmap(&Snapshot::default()), "");
        let plain = run_report(
            &Snapshot::default(),
            &Snapshot::default(),
            &SloPolicy::default(),
        );
        assert!(!plain.markdown.contains("heatmap"));
    }

    #[test]
    fn cross_version_baselines_diff_against_v4_runs() {
        // One committed fixture per schema generation obs-report has
        // ever gated on: v1 (counters/gauges/histograms only), v2
        // (+sketches/windows/spans), v3 (+shard_heat), v4 (+audit
        // decisions and account forensics). Every one must still load
        // as a baseline and diff cleanly against a current-schema run.
        let fixtures: [(u32, &str); 4] = [
            (
                1,
                r#"{"counters": {"c.pages": 5}, "gauges": {}, "histograms": {}, "events": []}"#,
            ),
            (
                2,
                r#"{"schema": 2, "counters": {"c.pages": 6}, "gauges": {}, "histograms": {},
                    "sketches": {}, "windows": {}, "events": [], "spans": []}"#,
            ),
            (
                3,
                r#"{"schema": 3, "counters": {"c.pages": 7}, "gauges": {}, "histograms": {},
                    "sketches": {}, "windows": {}, "events": [], "spans": [], "shard_heat": []}"#,
            ),
            (
                4,
                r#"{"schema": 4, "counters": {"c.pages": 8}, "gauges": {}, "histograms": {},
                    "sketches": {}, "windows": {}, "events": [], "spans": [], "shard_heat": [],
                    "decisions": [], "account_forensics": []}"#,
            ),
        ];
        let new = sample();
        for (version, text) in fixtures {
            let old = Snapshot::from_json(text)
                .unwrap_or_else(|e| panic!("v{version} fixture must parse: {e}"));
            assert_eq!(old.schema, version);
            check_schema_ceiling(&old, "baseline.json")
                .unwrap_or_else(|e| panic!("v{version} is at or below the ceiling: {e}"));
            let report = run_report(&old, &new, &SloPolicy::default());
            assert!(
                report
                    .markdown
                    .contains(&format!("schema {version} baseline vs schema 4 run")),
                "v{version}: {}",
                report.markdown
            );
            let pages = diff_rows(&old, &new)
                .into_iter()
                .find(|r| r.metric == "c.pages")
                .unwrap();
            assert_eq!(pages.old, Some(4.0 + version as f64));
            assert_eq!(pages.new, Some(10.0));
        }
    }

    #[test]
    fn exit_2_message_names_seen_and_max_versions() {
        let snap = Snapshot {
            schema: lbsn_obs::SNAPSHOT_SCHEMA_VERSION + 3,
            ..Snapshot::default()
        };
        let err = check_schema_ceiling(&snap, "run.json").unwrap_err();
        let seen = format!("schema {}", snap.schema);
        let max = format!("at most {}", lbsn_obs::SNAPSHOT_SCHEMA_VERSION);
        assert!(err.contains(&seen), "names the version seen: {err}");
        assert!(err.contains(&max), "names the max supported: {err}");
    }

    #[test]
    fn schema_ceiling_rejects_future_snapshots() {
        let mut snap = Snapshot::default();
        assert!(check_schema_ceiling(&snap, "run.json").is_ok());
        snap.schema = lbsn_obs::SNAPSHOT_SCHEMA_VERSION + 1;
        let err = check_schema_ceiling(&snap, "run.json").unwrap_err();
        assert!(err.contains("run.json"), "{err}");
        assert!(err.contains("rebuild obs-report"), "{err}");
    }
}
