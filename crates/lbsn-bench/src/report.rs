//! Experiment reporting: paper-vs-measured tables.

use std::fmt::Write as _;
use std::path::Path;

use lbsn_obs::Snapshot;
use serde::Serialize;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// What is being compared.
    pub label: String,
    /// The paper's value or claim (verbatim where possible).
    pub paper: String,
    /// What the reproduction measured.
    pub measured: String,
    /// Whether the measurement reproduces the claim's shape.
    pub ok: bool,
}

impl Row {
    /// A comparison row.
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> Self {
        Row {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
            ok,
        }
    }
}

/// One regenerated figure or claim set.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Experiment ID (E1…E12, per DESIGN.md).
    pub id: String,
    /// Short title.
    pub title: String,
    /// The paper artifact it reproduces (figure/section).
    pub artifact: String,
    /// Comparison rows.
    pub rows: Vec<Row>,
    /// Free-form notes (scale, substitutions, caveats).
    pub notes: Vec<String>,
    /// Observability snapshot taken when the experiment finished —
    /// counters, gauges, histograms, and recent events from the
    /// registry the experiment ran against (see `lbsn-obs`).
    pub metrics: Option<Snapshot>,
}

impl Experiment {
    /// Creates an empty experiment report.
    pub fn new(id: &str, title: &str, artifact: &str) -> Self {
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            artifact: artifact.to_string(),
            rows: Vec::new(),
            notes: Vec::new(),
            metrics: None,
        }
    }

    /// Attaches the metrics snapshot captured after the experiment ran.
    pub fn attach_metrics(&mut self, snapshot: Snapshot) -> &mut Self {
        self.metrics = Some(snapshot);
        self
    }

    /// Adds a comparison row.
    pub fn row(
        &mut self,
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> &mut Self {
        self.rows.push(Row::new(label, paper, measured, ok));
        self
    }

    /// Adds a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Whether every row reproduced.
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// Renders the experiment as a Markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let status = if self.all_ok() { "✅" } else { "⚠️" };
        let _ = writeln!(
            out,
            "### {} — {} ({}) {}\n",
            self.id, self.title, self.artifact, status
        );
        let _ = writeln!(out, "| Quantity | Paper | Measured | Repro |");
        let _ = writeln!(out, "|---|---|---|---|");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                r.label,
                r.paper,
                r.measured,
                if r.ok { "✅" } else { "❌" }
            );
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for n in &self.notes {
                let _ = writeln!(out, "- {n}");
            }
        }
        if let Some(m) = &self.metrics {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "_metrics snapshot: {} counters, {} gauges, {} histograms, {} events_",
                m.counters.len(),
                m.gauges.len(),
                m.histograms.len(),
                m.events.len()
            );
        }
        out
    }
}

/// Writes a data series as CSV next to the experiment outputs (for
/// re-plotting the figures).
///
/// # Errors
///
/// I/O errors from creating the directory or writing the file.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(&r);
        body.push('\n');
    }
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut e = Experiment::new("E3", "Starbucks map", "Fig 3.4");
        e.row("branch count", "chain-wide", "212", true)
            .row("US silhouette", "spans map", "lon span 88°", true)
            .note("scale 1/50");
        let md = e.to_markdown();
        assert!(md.contains("### E3 — Starbucks map (Fig 3.4) ✅"));
        assert!(md.contains("| branch count | chain-wide | 212 | ✅ |"));
        assert!(md.contains("- scale 1/50"));
        assert!(e.all_ok());
    }

    #[test]
    fn failed_rows_flagged() {
        let mut e = Experiment::new("EX", "t", "a");
        e.row("x", "1", "2", false);
        assert!(!e.all_ok());
        assert!(e.to_markdown().contains("⚠️"));
        assert!(e.to_markdown().contains("❌"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("lbsn-csv-test");
        let path = dir.join("x.csv");
        write_csv(&path, "lon,lat", vec!["1,2".to_string(), "3,4".to_string()]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "lon,lat\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
