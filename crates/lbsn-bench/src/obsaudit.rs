//! Forensics queries over the decision audit plane — the library
//! behind the `obs-audit` binary.
//!
//! Aggregate counters answer *how many*; this module answers *why*.
//! Input is either a full observability [`Snapshot`] (schema ≥ 4
//! carries retained decision records and per-account timelines) or a
//! JSONL dump of [`DecisionRecord`]s as written by the experiments
//! binary under `target/experiments/audit/E*.jsonl`. Three queries:
//!
//! * `why <user-id>` — the account's evidence timeline plus its most
//!   recent negative decision, rendered with the values each detector
//!   compared and the virtual time of the terminal decision;
//! * `top-offenders` — accounts ranked by negative decisions;
//! * `reason-histogram` — terminal-outcome reason slugs by frequency.

use std::collections::BTreeMap;

use lbsn_obs::{fold_records, AccountForensics, DecisionRecord, Snapshot};
use lbsn_sim::Timestamp;

use crate::obsreport::check_schema_ceiling;

/// Where a parsed audit corpus came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditSource {
    /// A full observability snapshot (carries the schema version seen).
    Snapshot(u32),
    /// A JSONL dump of decision records, one per line.
    Jsonl,
}

/// A parsed audit corpus: retained decision records plus per-account
/// timelines (authoritative from the snapshot when present — live-fold
/// timelines survive ring eviction — otherwise rebuilt from the
/// records).
#[derive(Debug, Clone)]
pub struct AuditData {
    /// Retained decision records, ascending by capture sequence.
    pub decisions: Vec<DecisionRecord>,
    /// Per-account evidence timelines, keyed by user id.
    pub accounts: BTreeMap<u64, AccountForensics>,
    /// What kind of document the corpus was parsed from.
    pub source: AuditSource,
}

/// Parses `text` as a snapshot first, then as a decision-record JSONL
/// dump. `label` names the input in error messages.
///
/// # Errors
///
/// When the text parses as neither format, or parses as a snapshot
/// whose schema is newer than this build understands.
pub fn parse_audit_input(text: &str, label: &str) -> Result<AuditData, String> {
    if let Ok(snap) = Snapshot::from_json(text) {
        check_schema_ceiling(&snap, label)?;
        let accounts = if snap.account_forensics.is_empty() {
            fold_records(&snap.decisions)
        } else {
            snap.account_forensics
                .iter()
                .map(|a| (a.user, a.clone()))
                .collect()
        };
        return Ok(AuditData {
            decisions: snap.decisions,
            accounts,
            source: AuditSource::Snapshot(snap.schema),
        });
    }
    let mut decisions = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: DecisionRecord = serde_json::from_str(line).map_err(|e| {
            format!(
                "{label} is neither a metrics snapshot nor a decision JSONL dump \
                 (line {}: {e})",
                i + 1
            )
        })?;
        decisions.push(record);
    }
    decisions.sort_by_key(|r| r.seq);
    let accounts = fold_records(&decisions);
    Ok(AuditData {
        decisions,
        accounts,
        source: AuditSource::Jsonl,
    })
}

/// Reads and parses one audit input file.
///
/// # Errors
///
/// When the file cannot be read or [`parse_audit_input`] rejects it.
pub fn load_audit_file(path: &str) -> Result<AuditData, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_audit_input(&text, path)
}

fn vt(secs: u64) -> Timestamp {
    Timestamp(secs)
}

fn render_record(record: &DecisionRecord) -> String {
    let mut out = format!(
        "terminal decision seq {} — `{}` at {} (user {}, venue {})\n\n",
        record.seq,
        record.outcome,
        vt(record.at_secs),
        record.user,
        record.venue,
    );
    if !record.detectors.is_empty() {
        out.push_str(
            "| detector | verdict | observed | threshold | unit | cost ns |\n\
             |---|---|---:|---:|---|---:|\n",
        );
        for d in &record.detectors {
            let verdict = if d.fired {
                format!("**fired** ({})", d.flag)
            } else {
                "passed".to_string()
            };
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {} |\n",
                d.detector, verdict, d.observed, d.threshold, d.unit, d.elapsed_ns,
            ));
        }
        out.push('\n');
    }
    if !record.votes.is_empty() {
        out.push_str("| verifier | vote | evidence |\n|---|---|---|\n");
        for v in &record.votes {
            out.push_str(&format!(
                "| `{}` | {} | {} |\n",
                v.verifier, v.vote, v.evidence,
            ));
        }
        out.push('\n');
    }
    let ns = &record.stage_ns;
    out.push_str(&format!(
        "stage ns: verify {} / detect {} / record {} / rewards {} / total {}\n",
        ns.verify, ns.detect, ns.record, ns.rewards, ns.total,
    ));
    out
}

/// Renders the `why <user-id>` answer: the account's evidence timeline
/// plus its most recent negative decision in full. `None` when the
/// corpus has no captured decisions for that user.
pub fn render_why(data: &AuditData, user: u64) -> Option<String> {
    let account = data.accounts.get(&user)?;
    let mut out = format!(
        "## why user {user} — {}\n\n",
        if account.branded {
            "BRANDED cheater"
        } else if account.flagged > 0 {
            "flagged"
        } else {
            "clean (no captured negatives)"
        }
    );
    out.push_str(&format!(
        "captured decisions: {} ({} accepted under 1-in-N sampling, {} negative — exact)\n",
        account.decisions, account.accepted, account.flagged,
    ));
    if let (Some(first), Some(last)) = (account.first_offense_secs, account.last_offense_secs) {
        out.push_str(&format!(
            "first offense {}, last offense {}\n",
            vt(first),
            vt(last)
        ));
    }
    if !account.attribution.is_empty() {
        out.push_str("\n| attributed to | negatives |\n|---|---:|\n");
        let mut rows: Vec<_> = account.attribution.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (name, count) in rows {
            out.push_str(&format!("| `{name}` | {count} |\n"));
        }
    }
    if let Some(record) = &account.last_negative {
        out.push('\n');
        out.push_str(&render_record(record));
    }
    Some(out)
}

/// One `top-offenders` row.
#[derive(Debug, Clone, PartialEq)]
pub struct OffenderRow {
    /// Raw user id.
    pub user: u64,
    /// Negative decisions (exact).
    pub flagged: u64,
    /// Whether the account crossed the branding threshold.
    pub branded: bool,
    /// The detector (or verifier stage) most often blamed.
    pub top_attribution: String,
}

/// Accounts with at least one negative decision, worst first: branded
/// accounts ahead of merely-flagged ones, then by negative count, then
/// by user id for determinism.
pub fn top_offenders(data: &AuditData, limit: usize) -> Vec<OffenderRow> {
    let mut rows: Vec<OffenderRow> = data
        .accounts
        .values()
        .filter(|a| a.flagged > 0)
        .map(|a| OffenderRow {
            user: a.user,
            flagged: a.flagged,
            branded: a.branded,
            top_attribution: a
                .attribution
                .iter()
                .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(x.0)))
                .map(|(name, _)| name.clone())
                .unwrap_or_default(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.branded
            .cmp(&a.branded)
            .then(b.flagged.cmp(&a.flagged))
            .then(a.user.cmp(&b.user))
    });
    rows.truncate(limit);
    rows
}

/// Renders the `top-offenders` table. `None` when no account has a
/// captured negative decision.
pub fn render_top_offenders(data: &AuditData, limit: usize) -> Option<String> {
    let rows = top_offenders(data, limit);
    if rows.is_empty() {
        return None;
    }
    let mut out = format!(
        "## top offenders ({} of {} flagged accounts)\n\n\
         | user | negatives | branded | mostly blamed on |\n|---:|---:|---|---|\n",
        rows.len(),
        data.accounts.values().filter(|a| a.flagged > 0).count(),
    );
    for row in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | `{}` |\n",
            row.user,
            row.flagged,
            if row.branded { "yes" } else { "no" },
            row.top_attribution,
        ));
    }
    Some(out)
}

/// Terminal-outcome reason slugs by frequency over the retained
/// decision records, descending.
pub fn reason_histogram(data: &AuditData) -> Vec<(String, u64)> {
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    for record in &data.decisions {
        *counts.entry(record.outcome.as_str()).or_insert(0) += 1;
    }
    let mut rows: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

/// Renders the `reason-histogram` table. `None` when the corpus has no
/// retained decision records (timelines alone cannot rebuild it).
pub fn render_reason_histogram(data: &AuditData) -> Option<String> {
    let rows = reason_histogram(data);
    if rows.is_empty() {
        return None;
    }
    let total: u64 = rows.iter().map(|(_, c)| c).sum();
    let mut out = format!(
        "## reason histogram ({total} retained decision records)\n\n\
         | outcome | records | share |\n|---|---:|---:|\n"
    );
    for (reason, count) in &rows {
        out.push_str(&format!(
            "| `{reason}` | {count} | {:.1}% |\n",
            *count as f64 / total as f64 * 100.0,
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_obs::{AuditConfig, DecisionBuilder, DecisionOutcome, Registry};
    use std::sync::Arc;

    /// A registry whose audit plane keeps every accept, with a branded
    /// rapid-fire cheater (user 7) and a sampled honest user (user 1).
    fn corpus_registry() -> Arc<Registry> {
        let registry = Arc::new(Registry::new());
        let plane = registry.audit_with_config(AuditConfig {
            capacity: 1024,
            stripes: 2,
            sample_every: 1,
        });
        let mut b = DecisionBuilder::new(1, 5, 60);
        b.verdict("gps-proximity", None, 12.0, 150.0, "m", 800);
        plane.finish(&b, DecisionOutcome::Accepted);
        for i in 0..3u64 {
            let mut b = DecisionBuilder::new(7, 9, 3_600 + i * 45);
            b.verdict("gps-proximity", None, 8.0, 150.0, "m", 700);
            b.verdict("rapid-fire", Some("rapid_fire"), 4.0, 4.0, "checkins", 300);
            b.total_ns(5_000);
            let outcome = if i == 2 {
                DecisionOutcome::Branded("rapid_fire")
            } else {
                DecisionOutcome::Rejected("rapid_fire")
            };
            plane.finish(&b, outcome);
        }
        registry
    }

    fn corpus() -> AuditData {
        let snap = corpus_registry().snapshot();
        parse_audit_input(&snap.to_json(), "test.json").unwrap()
    }

    #[test]
    fn snapshot_input_carries_decisions_and_timelines() {
        let data = corpus();
        assert_eq!(data.source, AuditSource::Snapshot(4));
        assert_eq!(data.decisions.len(), 4);
        assert_eq!(data.accounts.len(), 2);
        assert!(data.accounts[&7].branded);
    }

    #[test]
    fn jsonl_input_rebuilds_timelines() {
        let snap = corpus_registry().snapshot();
        let jsonl: String = snap
            .decisions
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect();
        let data = parse_audit_input(&jsonl, "dump.jsonl").unwrap();
        assert_eq!(data.source, AuditSource::Jsonl);
        assert_eq!(data.decisions.len(), 4);
        assert_eq!(data.accounts[&7].flagged, 3);
        assert!(data.accounts[&7].branded);
        assert_eq!(data.accounts[&1].accepted, 1);
    }

    #[test]
    fn garbage_input_is_a_parse_error() {
        let err = parse_audit_input("not json at all", "x.json").unwrap_err();
        assert!(err.contains("x.json"), "{err}");
        assert!(err.contains("neither"), "{err}");
    }

    #[test]
    fn future_snapshot_schema_is_rejected() {
        let mut snap = corpus_registry().snapshot();
        snap.schema = lbsn_obs::SNAPSHOT_SCHEMA_VERSION + 1;
        let err = parse_audit_input(&snap.to_json(), "future.json").unwrap_err();
        assert!(err.contains("future.json"), "{err}");
    }

    #[test]
    fn why_names_detector_thresholds_and_virtual_time() {
        let data = corpus();
        let why = render_why(&data, 7).unwrap();
        assert!(why.contains("BRANDED cheater"), "{why}");
        assert!(why.contains("`rapid-fire`"), "{why}");
        assert!(why.contains("**fired** (rapid_fire)"), "{why}");
        // Observed vs threshold values the detector compared.
        assert!(why.contains("| 4 | 4 | checkins |"), "{why}");
        // Virtual time of the terminal decision: 3600 + 2*45 = d0+01:01:30.
        assert!(why.contains("`branded.rapid_fire` at d0+01:01:30"), "{why}");
        assert!(why.contains("first offense d0+01:00:00"), "{why}");
        // The non-firing detector still shows its compared values.
        assert!(why.contains("| `gps-proximity` | passed |"), "{why}");
    }

    #[test]
    fn why_unknown_user_is_none() {
        assert!(render_why(&corpus(), 999).is_none());
    }

    #[test]
    fn top_offenders_rank_branded_first() {
        let mut data = corpus();
        // Add a noisier but unbranded offender by hand.
        let mut extra = data.decisions[1].clone();
        extra.user = 50;
        extra.outcome = "rejected.gps_mismatch".to_string();
        for _ in 0..5 {
            data.accounts
                .entry(50)
                .or_insert_with(|| lbsn_obs::AccountForensics::new(50))
                .fold(&extra);
        }
        let rows = top_offenders(&data, 10);
        assert_eq!(rows[0].user, 7, "branded outranks higher counts");
        assert_eq!(rows[1].user, 50);
        assert_eq!(rows[0].top_attribution, "rapid-fire");
        let md = render_top_offenders(&data, 10).unwrap();
        assert!(md.contains("| 7 | 3 | yes | `rapid-fire` |"), "{md}");
        // The clean account never shows up.
        assert!(!md.contains("| 1 |"), "{md}");
    }

    #[test]
    fn reason_histogram_counts_outcomes() {
        let data = corpus();
        let rows = reason_histogram(&data);
        assert_eq!(
            rows,
            vec![
                ("rejected.rapid_fire".to_string(), 2),
                ("accepted".to_string(), 1),
                ("branded.rapid_fire".to_string(), 1),
            ]
        );
        let md = render_reason_histogram(&data).unwrap();
        assert!(md.contains("| `rejected.rapid_fire` | 2 | 50.0% |"), "{md}");
    }

    #[test]
    fn empty_corpus_renders_nothing() {
        let data = parse_audit_input(&Registry::new().snapshot().to_json(), "e.json").unwrap();
        assert!(render_top_offenders(&data, 10).is_none());
        assert!(render_reason_histogram(&data).is_none());
        assert!(render_why(&data, 1).is_none());
    }
}
