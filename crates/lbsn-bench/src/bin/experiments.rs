//! Regenerates every figure and quantitative claim of the paper.
//!
//! ```text
//! cargo run -p lbsn-bench --release --bin experiments -- [--scale 0.02] [--seed N] [--only E5]
//! ```
//!
//! Prints a paper-vs-measured Markdown report to stdout, and writes
//! `experiments.json` plus per-figure CSV series under
//! `target/experiments/`.

use std::path::PathBuf;

use lbsn_bench::experiments;
use lbsn_bench::report::Experiment;

struct Args {
    scale: f64,
    seed: u64,
    only: Option<String>,
    output: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.02,
        seed: 0x10CA_7104,
        only: None,
        output: PathBuf::from("target/experiments"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("bad --scale"),
            "--seed" => args.seed = value("--seed").parse().expect("bad --seed"),
            "--only" => args.only = Some(value("--only").to_uppercase()),
            "--output" => args.output = PathBuf::from(value("--output")),
            other => panic!("unknown flag {other} (supported: --scale --seed --only --output)"),
        }
    }
    args
}

use lbsn_bench::experiments::KNOWN_IDS;

fn main() {
    let args = parse_args();
    if let Some(only) = &args.only {
        assert!(
            KNOWN_IDS.contains(&only.as_str()),
            "--only {only} matched nothing; known ids: {KNOWN_IDS:?}"
        );
    }
    std::fs::create_dir_all(&args.output).expect("create output dir");
    eprintln!(
        "# building population at scale {} (~{} users, ~{} venues), seed {}",
        args.scale,
        (1_890_000.0 * args.scale) as u64,
        (5_600_000.0 * args.scale) as u64,
        args.seed
    );
    let started = std::time::Instant::now();
    let all = experiments::run_all(args.scale, args.seed, &args.output);
    let selected: Vec<&Experiment> = all
        .iter()
        .filter(|e| args.only.as_deref().map(|id| e.id == id).unwrap_or(true))
        .collect();
    assert!(!selected.is_empty(), "experiment selection came up empty");

    println!("## Location Cheating — reproduction report\n");
    println!(
        "Population scale {} (seed {}); wall time {:.1}s.\n",
        args.scale,
        args.seed,
        started.elapsed().as_secs_f64()
    );
    let mut ok = 0;
    for e in &selected {
        println!("{}", e.to_markdown());
        if e.all_ok() {
            ok += 1;
        }
    }
    println!(
        "\n**{ok}/{} experiments fully reproduced.**",
        selected.len()
    );

    let json = serde_json::to_string_pretty(&all).expect("serialize reports");
    let path = args.output.join("experiments.json");
    std::fs::write(&path, json).expect("write experiments.json");
    eprintln!("# wrote {}", path.display());

    // Dump each experiment's observability snapshot on its own too, so
    // runs can be diffed without digging through experiments.json.
    let metrics_dir = args.output.join("metrics");
    std::fs::create_dir_all(&metrics_dir).expect("create metrics dir");
    for e in &all {
        if let Some(snapshot) = &e.metrics {
            let path = metrics_dir.join(format!("{}.json", e.id));
            std::fs::write(&path, snapshot.to_json()).expect("write metrics snapshot");
        }
    }
    eprintln!("# wrote {}/E*.json", metrics_dir.display());

    // Dump each experiment's retained decision records as JSONL, one
    // file per experiment with captured records — the corpus `obs-audit`
    // answers forensics queries against.
    let audit_dir = args.output.join("audit");
    std::fs::create_dir_all(&audit_dir).expect("create audit dir");
    let mut audit_files = 0;
    for e in &all {
        let Some(snapshot) = &e.metrics else { continue };
        if snapshot.decisions.is_empty() {
            continue;
        }
        let mut jsonl = String::new();
        for record in &snapshot.decisions {
            jsonl.push_str(&serde_json::to_string(record).expect("serialize decision record"));
            jsonl.push('\n');
        }
        let path = audit_dir.join(format!("{}.jsonl", e.id));
        std::fs::write(&path, jsonl).expect("write audit dump");
        audit_files += 1;
    }
    eprintln!(
        "# wrote {}/E*.jsonl ({audit_files} experiments with captured decisions)",
        audit_dir.display()
    );

    // Merge every experiment's sampled spans into one Chrome-trace file
    // (open in chrome://tracing or Perfetto). Bed-backed experiments
    // share one registry, so the same span can appear in several
    // snapshots — dedup on (id, start_ns); ids restart only with a new
    // registry, where start_ns offsets differ.
    let mut seen = std::collections::HashSet::new();
    let mut spans = Vec::new();
    for e in &all {
        if let Some(snapshot) = &e.metrics {
            for span in &snapshot.spans {
                if seen.insert((span.id, span.start_ns)) {
                    spans.push(span.clone());
                }
            }
        }
    }
    let trace_path = args.output.join("trace.json");
    std::fs::write(&trace_path, lbsn_obs::chrome_trace_json(&spans)).expect("write trace.json");
    eprintln!("# wrote {} ({} spans)", trace_path.display(), spans.len());
}
