//! Answers "why was this account branded?" from audit-plane dumps.
//!
//! ```text
//! cargo run -p lbsn-bench --release --bin obs-audit -- \
//!     why 4711 target/experiments/metrics/E13.json
//! cargo run -p lbsn-bench --release --bin obs-audit -- \
//!     top-offenders target/experiments/audit/E13.jsonl [limit]
//! cargo run -p lbsn-bench --release --bin obs-audit -- \
//!     reason-histogram target/experiments/audit/E13.jsonl
//! ```
//!
//! Input may be a full metrics snapshot (schema ≥ 4) or a decision
//! JSONL dump; the format is sniffed. Exits 0 when the query was
//! answered, 1 when the corpus holds no answer (unknown user, no
//! captured records), 2 on usage or parse errors — including a
//! snapshot whose schema is newer than this build understands.

use std::process::ExitCode;

use lbsn_bench::obsaudit::{
    load_audit_file, render_reason_histogram, render_top_offenders, render_why,
};

const USAGE: &str = "usage: obs-audit why <user-id> <snapshot.json|dump.jsonl>\n\
                     \u{20}      obs-audit top-offenders <snapshot.json|dump.jsonl> [limit]\n\
                     \u{20}      obs-audit reason-histogram <snapshot.json|dump.jsonl>";

/// `Ok(Some(markdown))` answers, `Ok(None)` means the corpus holds no
/// answer, `Err` is a usage/parse error.
fn run(args: &[String]) -> Result<Option<String>, String> {
    let command = args.first().map(String::as_str).ok_or(USAGE)?;
    match command {
        "why" => {
            let [user, path] = &args[1..] else {
                return Err(USAGE.to_string());
            };
            let user: u64 = user
                .parse()
                .map_err(|e| format!("bad user id {user:?}: {e}"))?;
            let data = load_audit_file(path)?;
            Ok(render_why(&data, user))
        }
        "top-offenders" => {
            let (path, limit) = match &args[1..] {
                [path] => (path, 10),
                [path, limit] => (
                    path,
                    limit
                        .parse()
                        .map_err(|e| format!("bad limit {limit:?}: {e}"))?,
                ),
                _ => return Err(USAGE.to_string()),
            };
            let data = load_audit_file(path)?;
            Ok(render_top_offenders(&data, limit))
        }
        "reason-histogram" => {
            let [path] = &args[1..] else {
                return Err(USAGE.to_string());
            };
            let data = load_audit_file(path)?;
            Ok(render_reason_histogram(&data))
        }
        "--help" | "-h" => Err(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Some(answer)) => {
            println!("{answer}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            eprintln!("obs-audit: no captured decisions answer this query");
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("obs-audit: {msg}");
            ExitCode::from(2)
        }
    }
}
