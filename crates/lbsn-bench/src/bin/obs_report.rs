//! Diffs two observability snapshots and enforces SLOs.
//!
//! ```text
//! cargo run -p lbsn-bench --release --bin obs-report -- \
//!     baselines/bed-small.json target/experiments/metrics/E8.json \
//!     [--slo baselines/slo.json]
//! ```
//!
//! Prints a Markdown regression table (baseline vs new: counters,
//! gauges, p50/p95/p99) followed by the SLO verdict for the *new*
//! snapshot. Exits 0 when every SLO holds, 1 on any breach, 2 on usage
//! or parse errors — including a snapshot whose schema version is newer
//! than this build understands — so CI can gate merges on
//! `target/experiments/metrics/` trajectories.

use std::process::ExitCode;

use lbsn_bench::obsreport::{check_schema_ceiling, default_policy, run_report};
use lbsn_obs::{SloPolicy, Snapshot};

fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snap = Snapshot::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    // A future-schema document would silently lose fields in the diff:
    // usage error (exit 2), not a gate verdict.
    check_schema_ceiling(&snap, path)?;
    Ok(snap)
}

fn run() -> Result<bool, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut slo_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slo" => {
                slo_path = Some(it.next().ok_or("missing value for --slo")?);
            }
            "--write-default-slo" => {
                // Regenerates the committed baseline policy
                // (baselines/slo.json) from code, so the two can't drift.
                let path = it.next().ok_or("missing value for --write-default-slo")?;
                std::fs::write(&path, default_policy().to_json())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("wrote default SLO policy to {path}");
                return Ok(false);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: obs-report <baseline.json> <new.json> [--slo policy.json] \
                            | obs-report --write-default-slo <path>"
                        .to_string(),
                );
            }
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown flag {other} (supported: --slo --write-default-slo)"
                ));
            }
            _ => positional.push(arg),
        }
    }
    let [old_path, new_path] = positional.as_slice() else {
        return Err(format!(
            "expected exactly two snapshot paths, got {} \
             (usage: obs-report <baseline.json> <new.json> [--slo policy.json])",
            positional.len()
        ));
    };

    let old = load_snapshot(old_path)?;
    let new = load_snapshot(new_path)?;
    let policy = match &slo_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            SloPolicy::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        None => default_policy(),
    };

    let report = run_report(&old, &new, &policy);
    println!("{}", report.markdown);
    Ok(report.breached())
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("obs-report: SLO breach");
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("obs-report: {msg}");
            ExitCode::from(2)
        }
    }
}
