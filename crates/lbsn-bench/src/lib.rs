//! The benchmark and experiment harness.
//!
//! Two entry points:
//!
//! * the **experiments binary** (`cargo run -p lbsn-bench --release
//!   --bin experiments`) regenerates every figure and quantitative claim
//!   of the paper's evaluation — one [`report::Experiment`] per figure,
//!   with paper-vs-measured rows (the source of EXPERIMENTS.md);
//! * the **criterion benches** (`cargo bench`) measure the performance
//!   of each subsystem a figure depends on, plus the ablations listed in
//!   DESIGN.md §6;
//! * the **obs-report binary** (`cargo run -p lbsn-bench --release
//!   --bin obs-report -- baseline.json new.json`) diffs two metric
//!   snapshots and gates the new one on an SLO policy (see
//!   [`obsreport`]);
//! * the **obs-audit binary** (`cargo run -p lbsn-bench --release
//!   --bin obs-audit -- why <user-id> snapshot.json`) answers
//!   forensics queries — why an account was branded, the worst
//!   offenders, the reason histogram — against a metrics snapshot or a
//!   decision JSONL dump (see [`obsaudit`]).
//!
//! Both build on [`harness::TestBed`]: a generated population replayed
//! through the real server and crawled back into a
//! [`lbsn_crawler::CrawlDatabase`],
//! exactly the pipeline the paper ran against production Foursquare.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod obsaudit;
pub mod obsreport;
pub mod report;
pub mod throughput;

/// This crate's group of registered observability names (see
/// `lbsn_obs::names` for the registry and the lint that enforces it).
pub use lbsn_obs::names::bench as metric_names;
