//! End-to-end test of the `obs-report` binary: exit code 0 when SLOs
//! hold, 1 on a seeded breach, 2 on usage errors.

use std::path::PathBuf;
use std::process::Command;

use lbsn_obs::{Registry, SloPolicy, SloRule};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_obs-report")
}

/// A snapshot that satisfies every rule of the default experiments
/// policy (fast check-ins, quiet crawler, healthy throughput).
fn healthy_snapshot_json() -> String {
    let registry = Registry::new();
    let checkin = registry.latency("server.checkin.total");
    let fetch = registry.latency("crawler.fetch");
    let lock_wait = registry.latency("server.shard.lock_wait");
    let gps = registry.latency("server.checkin.detector.gps_proximity.latency");
    for _ in 0..200 {
        checkin.record_ns(1_000_000); // 1 ms
        fetch.record_ns(40_000_000); // 40 ms
        lock_wait.record_ns(2_000); // 2 µs
        gps.record_ns(500); // 500 ns
    }
    registry.counter("server.checkin.accepted").add(200);
    registry.counter("crawler.store.users").add(200);
    registry.counter("crawler.fetch.pages").add(200);
    // Registered eagerly (at zero) by CrawlerMetrics, so the ratio rule
    // always has both sides on a real crawl.
    registry.counter("crawler.fetch.errors");
    registry
        .gauge("crawler.throughput.users_per_hour")
        .set(120_000.0);
    // Inside the GaugeMinMax band (200–4096); the rule fails closed on
    // a snapshot that never sampled memory.
    registry.gauge("server.mem.bytes_per_user").set(2_048.0);
    // Frontend rules: fast sojourns, nothing shed, submitted = decided.
    let sojourn = registry.latency("server.frontend.sojourn");
    for _ in 0..200 {
        sojourn.record_ns(2_000_000); // 2 ms
    }
    registry.counter("server.frontend.submitted").add(200);
    registry.counter("server.frontend.decided").add(200);
    registry.counter("server.frontend.shed");
    registry.snapshot().to_json()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn healthy_run_exits_zero_and_prints_diff() {
    let dir = scratch_dir("obs-report-pass");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, healthy_snapshot_json()).unwrap();
    std::fs::write(&new, healthy_snapshot_json()).unwrap();

    let out = Command::new(bin()).args([&old, &new]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\n{stdout}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("all SLOs hold"), "{stdout}");
    assert!(stdout.contains("server.checkin.total p99"), "{stdout}");
}

#[test]
fn seeded_breach_exits_one() {
    let dir = scratch_dir("obs-report-breach");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, healthy_snapshot_json()).unwrap();

    // Seed the regression the gate exists to catch: check-in p99
    // explodes past the 50 ms SLO.
    let registry = Registry::new();
    let checkin = registry.latency("server.checkin.total");
    let fetch = registry.latency("crawler.fetch");
    for _ in 0..200 {
        checkin.record_ns(900_000_000); // 900 ms
        fetch.record_ns(40_000_000);
    }
    registry.counter("server.checkin.accepted").add(200);
    registry.counter("crawler.store.users").add(200);
    registry.counter("crawler.fetch.pages").add(200);
    registry.counter("crawler.fetch.errors");
    registry
        .gauge("crawler.throughput.users_per_hour")
        .set(120_000.0);
    std::fs::write(&new, registry.snapshot().to_json()).unwrap();

    let out = Command::new(bin()).args([&old, &new]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("**BREACH**"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("SLO breach"));
}

#[test]
fn explicit_policy_file_is_honoured() {
    let dir = scratch_dir("obs-report-policy");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    let slo = dir.join("slo.json");
    std::fs::write(&old, healthy_snapshot_json()).unwrap();
    std::fs::write(&new, healthy_snapshot_json()).unwrap();
    let policy = SloPolicy {
        name: "impossible".to_string(),
        rules: vec![SloRule::CounterMin {
            metric: "server.checkin.accepted".to_string(),
            min: u64::MAX,
        }],
    };
    std::fs::write(&slo, policy.to_json()).unwrap();

    let out = Command::new(bin())
        .args([&old, &new, &slo, &slo])
        .output()
        .unwrap();
    // Four positionals: usage error first.
    assert_eq!(out.status.code(), Some(2));

    let out = Command::new(bin())
        .arg(&old)
        .arg(&new)
        .arg("--slo")
        .arg(&slo)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "impossible policy must breach");
}

#[test]
fn unreadable_snapshot_exits_two() {
    let dir = scratch_dir("obs-report-bad");
    let garbled = dir.join("garbled.json");
    std::fs::write(&garbled, "{ not json").unwrap();
    let out = Command::new(bin())
        .args([&garbled, &garbled])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}
