//! End-to-end observability: a full test-bed stand-up (generate →
//! serve → crawl) plus a flagged cheating check-in must leave a
//! coherent trail in the bed's registry.

use lbsn_bench::harness::TestBed;
use lbsn_geo::destination;
use lbsn_server::{CheatFlag, CheckinRequest, CheckinSource, UserSpec};
use lbsn_workload::PopulationSpec;

#[test]
fn testbed_run_populates_the_registry() {
    let bed = TestBed::from_spec(&PopulationSpec::tiny(600, 17));

    // A blatant GPS-mismatch check-in on top of the generated traffic,
    // so at least one specific flag counter is guaranteed non-zero.
    let venue = lbsn_server::VenueId(1);
    let venue_loc = bed.server.venue(venue).unwrap().location;
    let cheater = bed.server.register_user(UserSpec::named("obs-cheater"));
    let outcome = bed
        .server
        .check_in(&CheckinRequest {
            user: cheater,
            venue,
            reported_location: destination(venue_loc, 45.0, 25_000.0),
            source: CheckinSource::MobileApp,
        })
        .unwrap();
    assert!(outcome.flags.contains(&CheatFlag::GpsMismatch));

    let snap = bed.metrics_snapshot();

    // Crawler counters: the stand-up crawl fetched every user and venue
    // page (plus end-of-space probes) and stored every row.
    assert!(snap.counter("crawler.fetch.pages") > 0);
    assert_eq!(
        snap.counter("crawler.store.users"),
        bed.db.user_count() as u64
    );
    assert_eq!(
        snap.counter("crawler.store.venues"),
        bed.db.venue_count() as u64
    );
    assert!(snap
        .gauges
        .contains_key("crawler.throughput.users_per_hour"));
    assert!(snap
        .gauges
        .contains_key("crawler.throughput.venues_per_hour"));

    // Per-CheatFlag counters: the explicit mismatch plus whatever the
    // generated cheaters tripped.
    assert!(snap.counter("server.checkin.flag.gps_mismatch") >= 1);
    let rejected = snap.counter("server.checkin.rejected");
    let accepted = snap.counter("server.checkin.accepted");
    assert!(rejected >= 1);
    assert!(
        accepted > 0,
        "generated population produced valid check-ins"
    );

    // Stage histograms: every check-in passed through the cheater-code
    // stage and the total timer; only accepted ones reached rewards.
    let total = &snap.histograms["server.checkin.total"];
    assert_eq!(total.count, accepted + rejected);
    assert_eq!(
        snap.histograms["server.checkin.stage.cheater_code"].count,
        total.count
    );
    assert_eq!(
        snap.histograms["server.checkin.stage.rewards"].count,
        accepted
    );
    assert!(total.sum > 0, "timers recorded real elapsed time");

    // Quantile sketches ride along on the hot-path latency stats, with
    // ordered quantiles and counts agreeing with the histograms.
    assert_eq!(snap.schema, lbsn_obs::SNAPSHOT_SCHEMA_VERSION);
    for name in ["server.checkin.total", "crawler.fetch"] {
        let sketch = snap
            .sketches
            .get(name)
            .unwrap_or_else(|| panic!("sketch {name} missing"));
        let p50 = sketch.quantile(0.50);
        let p95 = sketch.quantile(0.95);
        let p99 = sketch.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{name}: {p50} {p95} {p99}");
        assert!(snap.windows.contains_key(name), "window {name} missing");
    }
    assert_eq!(snap.sketches["server.checkin.total"].count, total.count);
    assert_eq!(
        snap.quantile_ns("server.checkin.total", 0.99),
        Some(snap.sketches["server.checkin.total"].quantile(0.99))
    );

    // Head-sampled spans made it into the sink: check-in roots with
    // their per-stage children, and crawler page spans.
    assert!(snap.counter("trace.finished_spans") > 0);
    let names: std::collections::HashSet<&str> =
        snap.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains("server.checkin"), "{names:?}");
    assert!(names.contains("crawler.page"), "{names:?}");
    for span in &snap.spans {
        if span.parent != 0 {
            assert!(span.name.contains('.'), "child spans are namespaced");
        }
        assert!(span.end_ns >= span.start_ns);
    }

    // The merged span set exports as a loadable Chrome trace.
    let trace = lbsn_obs::chrome_trace_json(&snap.spans);
    let doc: serde::Value = serde_json::from_str(&trace).expect("trace.json parses");
    let events = doc
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() >= snap.spans.len());

    // The snapshot a bed hands to reports is self-consistent JSON.
    let back = lbsn_obs::Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
}
