//! End-to-end observability: a full test-bed stand-up (generate →
//! serve → crawl) plus a flagged cheating check-in must leave a
//! coherent trail in the bed's registry.

use lbsn_bench::harness::TestBed;
use lbsn_geo::destination;
use lbsn_server::{CheatFlag, CheckinRequest, CheckinSource, UserSpec};
use lbsn_workload::PopulationSpec;

#[test]
fn testbed_run_populates_the_registry() {
    let bed = TestBed::from_spec(&PopulationSpec::tiny(600, 17));

    // A blatant GPS-mismatch check-in on top of the generated traffic,
    // so at least one specific flag counter is guaranteed non-zero.
    let venue = lbsn_server::VenueId(1);
    let venue_loc = bed.server.venue(venue).unwrap().location;
    let cheater = bed.server.register_user(UserSpec::named("obs-cheater"));
    let outcome = bed
        .server
        .check_in(&CheckinRequest {
            user: cheater,
            venue,
            reported_location: destination(venue_loc, 45.0, 25_000.0),
            source: CheckinSource::MobileApp,
        })
        .unwrap();
    assert!(outcome.flags.contains(&CheatFlag::GpsMismatch));

    let snap = bed.metrics_snapshot();

    // Crawler counters: the stand-up crawl fetched every user and venue
    // page (plus end-of-space probes) and stored every row.
    assert!(snap.counter("crawler.fetch.pages") > 0);
    assert_eq!(
        snap.counter("crawler.store.users"),
        bed.db.user_count() as u64
    );
    assert_eq!(
        snap.counter("crawler.store.venues"),
        bed.db.venue_count() as u64
    );
    assert!(snap
        .gauges
        .contains_key("crawler.throughput.users_per_hour"));
    assert!(snap
        .gauges
        .contains_key("crawler.throughput.venues_per_hour"));

    // Per-CheatFlag counters: the explicit mismatch plus whatever the
    // generated cheaters tripped.
    assert!(snap.counter("server.checkin.flag.gps_mismatch") >= 1);
    let rejected = snap.counter("server.checkin.rejected");
    let accepted = snap.counter("server.checkin.accepted");
    assert!(rejected >= 1);
    assert!(
        accepted > 0,
        "generated population produced valid check-ins"
    );

    // Stage histograms: every check-in passed through the cheater-code
    // stage and the total timer; only accepted ones reached rewards.
    let total = &snap.histograms["server.checkin.total"];
    assert_eq!(total.count, accepted + rejected);
    assert_eq!(
        snap.histograms["server.checkin.stage.cheater_code"].count,
        total.count
    );
    assert_eq!(
        snap.histograms["server.checkin.stage.rewards"].count,
        accepted
    );
    assert!(total.sum > 0, "timers recorded real elapsed time");

    // The snapshot a bed hands to reports is self-consistent JSON.
    let back = lbsn_obs::Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
}
