//! End-to-end forensics: inject a GPS-spoofing cheater into a real
//! server, brand the account, and verify `obs-audit why` answers with
//! the firing detector, the values it compared, and the virtual time
//! of the terminal decision — both through the library and through the
//! compiled binary (exit codes 0/1/2).

use std::process::Command;
use std::sync::Arc;

use lbsn_bench::obsaudit::{parse_audit_input, render_reason_histogram, render_why};
use lbsn_geo::GeoPoint;
use lbsn_obs::Registry;
use lbsn_server::{
    AdmissionOutcome, CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserId, UserSpec,
    VenueSpec,
};
use lbsn_sim::{Duration, SimClock};

fn wharf() -> GeoPoint {
    GeoPoint::new(37.8080, -122.4177).unwrap()
}

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

/// Stands up a default-policy server on its own registry and runs one
/// honest user plus a GPS-spoofing cheater into branding: every spoofed
/// check-in reports a fix ~1500 km from the venue, so `gps-proximity`
/// flags all of them and the 10th flag crosses the default branding
/// threshold. Returns the cheater's id and the registry.
fn branded_cheater_bed() -> (UserId, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let server = LbsnServer::with_pipeline(
        SimClock::new(),
        ServerConfig::default(),
        Arc::clone(&registry),
        Vec::new(),
    );
    let venue = server.register_venue(VenueSpec::new("Wharf Sign", wharf()));

    let honest = server.register_user(UserSpec::anonymous());
    let out = server
        .check_in_with_evidence(
            &CheckinRequest {
                user: honest,
                venue,
                reported_location: wharf(),
                source: CheckinSource::MobileApp,
            },
            None,
        )
        .unwrap();
    assert!(matches!(out, AdmissionOutcome::Processed(o) if o.rewarded()));

    let cheater = server.register_user(UserSpec::anonymous());
    // Two-hour gaps defeat the cooldown and speed rules, isolating the
    // GPS detector; the 10th flag (t = 9 * 7200 s = d0+18:00:00) brands.
    for _ in 0..10 {
        let out = server
            .check_in_with_evidence(
                &CheckinRequest {
                    user: cheater,
                    venue,
                    reported_location: abq(),
                    source: CheckinSource::ServerApi,
                },
                None,
            )
            .unwrap();
        assert!(!out.rewarded(), "every spoof is flagged");
        server.clock().advance(Duration::hours(2));
    }
    let account = registry.audit().account(cheater.value()).unwrap();
    assert!(
        account.branded,
        "the 10th flag crosses the default threshold"
    );
    (cheater, registry)
}

#[test]
fn why_names_detector_thresholds_and_terminal_time() {
    let (cheater, registry) = branded_cheater_bed();
    let snapshot = registry.snapshot();
    let data = parse_audit_input(&snapshot.to_json(), "bed.json").unwrap();

    let why = render_why(&data, cheater.value()).expect("cheater has captured evidence");
    assert!(why.contains("BRANDED cheater"), "{why}");
    // The firing detector, with the flag it raised.
    assert!(
        why.contains("| `gps-proximity` | **fired** (gps_mismatch) |"),
        "{why}"
    );
    // The values it compared: observed spoof distance vs the 500 m
    // default radius, in meters.
    assert!(why.contains("| 500 | m |"), "{why}");
    let fired_row = why
        .lines()
        .find(|l| l.contains("**fired**"))
        .expect("a fired verdict row");
    let observed: f64 = fired_row
        .split('|')
        .nth(3)
        .and_then(|v| v.trim().parse().ok())
        .expect("observed distance parses");
    assert!(observed > 1_000_000.0, "ABQ is ~1500 km out: {fired_row}");
    // The virtual time of the terminal (branding) decision.
    assert!(
        why.contains("`branded.gps_mismatch` at d0+18:00:00"),
        "{why}"
    );
    assert!(why.contains("first offense d0+00:00:00"), "{why}");

    let histogram = render_reason_histogram(&data).unwrap();
    assert!(
        histogram.contains("`rejected.gps_mismatch` | 9"),
        "{histogram}"
    );
    assert!(
        histogram.contains("`branded.gps_mismatch` | 1"),
        "{histogram}"
    );
}

#[test]
fn obs_audit_binary_answers_with_documented_exit_codes() {
    let (cheater, registry) = branded_cheater_bed();
    let dir = std::env::temp_dir().join(format!("obs-audit-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("bed.json");
    std::fs::write(&snap_path, registry.snapshot().to_json()).unwrap();
    let bin = env!("CARGO_BIN_EXE_obs-audit");
    let run = |args: &[&str]| {
        let out = Command::new(bin)
            .args(args)
            .output()
            .expect("spawn obs-audit");
        (
            out.status.code().unwrap(),
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };
    let snap = snap_path.to_str().unwrap();

    // Exit 0: the query is answered, naming detector and thresholds.
    let user = cheater.value().to_string();
    let (code, stdout, _) = run(&["why", &user, snap]);
    assert_eq!(code, 0);
    assert!(stdout.contains("BRANDED cheater"), "{stdout}");
    assert!(stdout.contains("`gps-proximity` | **fired**"), "{stdout}");
    assert!(stdout.contains("| 500 | m |"), "{stdout}");
    assert!(stdout.contains("at d0+18:00:00"), "{stdout}");

    let (code, stdout, _) = run(&["top-offenders", snap]);
    assert_eq!(code, 0);
    assert!(stdout.contains("| yes | `gps-proximity` |"), "{stdout}");

    let (code, stdout, _) = run(&["reason-histogram", snap]);
    assert_eq!(code, 0);
    assert!(stdout.contains("`branded.gps_mismatch`"), "{stdout}");

    // Exit 1: the corpus holds no answer for an unknown account.
    let (code, _, stderr) = run(&["why", "999999", snap]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("no captured decisions"), "{stderr}");

    // Exit 2: usage and parse errors.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json").unwrap();
    let (code, _, stderr) = run(&["why", &user, garbage.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(stderr.contains("neither"), "{stderr}");
    let (code, _, _) = run(&["frobnicate", snap]);
    assert_eq!(code, 2);
    let (code, _, stderr) = run(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
