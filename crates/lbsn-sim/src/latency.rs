//! Latency models for simulated network operations.

use crate::RngStream;

/// A distribution of operation latencies, in milliseconds.
///
/// The crawler experiments (§3.2 of the paper) are throughput studies:
/// pages per hour as a function of thread count. Their shape is set by
/// the per-request latency distribution, so the simulated HTTP fetcher
/// samples from one of these. `Zero` makes tests instant; `Lognormal`
/// approximates real web-server response times (long right tail).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LatencyModel {
    /// No latency at all (unit tests).
    #[default]
    Zero,
    /// A fixed latency in milliseconds.
    Constant(f64),
    /// Uniform between `lo` and `hi` milliseconds.
    Uniform {
        /// Lower bound (ms).
        lo: f64,
        /// Upper bound (ms).
        hi: f64,
    },
    /// Log-normal with the given median and sigma of the underlying
    /// normal — the classic web-latency shape.
    Lognormal {
        /// Median latency (ms).
        median_ms: f64,
        /// Spread of the underlying normal.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Samples one latency in milliseconds. Never negative.
    pub fn sample_ms(&self, rng: &mut RngStream) -> f64 {
        match *self {
            LatencyModel::Zero => 0.0,
            LatencyModel::Constant(ms) => ms.max(0.0),
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo.max(0.0)
                } else {
                    rng.range_f64(lo, hi).max(0.0)
                }
            }
            LatencyModel::Lognormal { median_ms, sigma } => {
                (median_ms.max(0.0)) * (sigma * rng.normal()).exp()
            }
        }
    }

    /// The distribution mean in milliseconds (exact, not sampled).
    pub fn mean_ms(&self) -> f64 {
        match *self {
            LatencyModel::Zero => 0.0,
            LatencyModel::Constant(ms) => ms.max(0.0),
            LatencyModel::Uniform { lo, hi } => ((lo + hi) / 2.0).max(0.0),
            LatencyModel::Lognormal { median_ms, sigma } => {
                median_ms.max(0.0) * (sigma * sigma / 2.0).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_constant() {
        let mut r = RngStream::from_seed(1);
        assert_eq!(LatencyModel::Zero.sample_ms(&mut r), 0.0);
        assert_eq!(LatencyModel::Constant(150.0).sample_ms(&mut r), 150.0);
        assert_eq!(LatencyModel::Constant(-5.0).sample_ms(&mut r), 0.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = RngStream::from_seed(2);
        let m = LatencyModel::Uniform { lo: 10.0, hi: 20.0 };
        for _ in 0..500 {
            let v = m.sample_ms(&mut r);
            assert!((10.0..20.0).contains(&v));
        }
        // Degenerate bounds collapse to lo.
        let bad = LatencyModel::Uniform { lo: 5.0, hi: 5.0 };
        assert_eq!(bad.sample_ms(&mut r), 5.0);
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let mut r = RngStream::from_seed(3);
        let m = LatencyModel::Lognormal {
            median_ms: 100.0,
            sigma: 0.5,
        };
        let n = 40_000;
        let avg = (0..n).map(|_| m.sample_ms(&mut r)).sum::<f64>() / n as f64;
        assert!(
            (avg - m.mean_ms()).abs() < m.mean_ms() * 0.05,
            "sampled {avg}, formula {}",
            m.mean_ms()
        );
    }

    #[test]
    fn means() {
        assert_eq!(LatencyModel::Zero.mean_ms(), 0.0);
        assert_eq!(LatencyModel::Constant(7.0).mean_ms(), 7.0);
        assert_eq!(LatencyModel::Uniform { lo: 0.0, hi: 10.0 }.mean_ms(), 5.0);
    }
}
