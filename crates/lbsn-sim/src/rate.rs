//! Token-bucket rate limiting over virtual time.

use crate::{Duration, Timestamp};

/// A token bucket metering events against the virtual clock.
///
/// Used by the anti-crawl defenses (§5.2): per-IP request limits are a
/// bucket per client, and the crawler's throughput collapses once its
/// request rate exceeds the refill rate.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Timestamp,
}

impl TokenBucket {
    /// A bucket holding at most `capacity` tokens, refilling at
    /// `refill_per_sec` tokens per virtual second. Starts full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `refill_per_sec` is not positive/finite.
    pub fn new(capacity: f64, refill_per_sec: f64, now: Timestamp) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive, got {capacity}"
        );
        assert!(
            refill_per_sec.is_finite() && refill_per_sec >= 0.0,
            "refill rate must be non-negative, got {refill_per_sec}"
        );
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec,
            last: now,
        }
    }

    /// A bucket allowing `n` events per virtual period, with burst equal
    /// to `n`.
    pub fn per(n: u64, period: Duration, now: Timestamp) -> Self {
        let rate = n as f64 / period.as_secs().max(1) as f64;
        TokenBucket::new(n.max(1) as f64, rate, now)
    }

    fn refill(&mut self, now: Timestamp) {
        let elapsed = now.since(self.last).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        self.last = self.last.max(now);
    }

    /// Attempts to consume one token at virtual time `now`. Returns
    /// whether the event is allowed.
    pub fn try_acquire(&mut self, now: Timestamp) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: Timestamp) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(3.0, 1.0, Timestamp(0));
        assert!(b.try_acquire(Timestamp(0)));
        assert!(b.try_acquire(Timestamp(0)));
        assert!(b.try_acquire(Timestamp(0)));
        assert!(!b.try_acquire(Timestamp(0)));
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(2.0, 0.5, Timestamp(0)); // 1 token / 2s
        assert!(b.try_acquire(Timestamp(0)));
        assert!(b.try_acquire(Timestamp(0)));
        assert!(!b.try_acquire(Timestamp(1)));
        assert!(b.try_acquire(Timestamp(2)));
        assert!(!b.try_acquire(Timestamp(2)));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(2.0, 100.0, Timestamp(0));
        assert_eq!(b.available(Timestamp(1000)), 2.0);
    }

    #[test]
    fn per_helper_allows_n_per_period() {
        let mut b = TokenBucket::per(10, Duration::hours(1), Timestamp(0));
        let allowed = (0..20).filter(|_| b.try_acquire(Timestamp(0))).count();
        assert_eq!(allowed, 10);
        // After a full period the bucket is full again.
        let allowed2 = (0..20)
            .filter(|_| b.try_acquire(Timestamp(crate::HOUR)))
            .count();
        assert_eq!(allowed2, 10);
    }

    #[test]
    fn time_moving_backwards_is_harmless() {
        let mut b = TokenBucket::new(1.0, 1.0, Timestamp(100));
        assert!(b.try_acquire(Timestamp(100)));
        // A stale timestamp neither panics nor grants free tokens.
        assert!(!b.try_acquire(Timestamp(50)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TokenBucket::new(0.0, 1.0, Timestamp(0));
    }
}
