//! Deterministic, forkable random-number streams.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random stream that can be forked into independent substreams.
///
/// Reproducibility discipline: every experiment takes one root seed, and
/// every component forks its own labelled stream. Adding a new consumer
/// (say, a second cheater archetype) never perturbs the draws seen by
/// existing ones, so figures stay stable as the codebase grows.
///
/// ```
/// use lbsn_sim::RngStream;
///
/// let mut root = RngStream::from_seed(42);
/// let mut venues = root.fork("venues");
/// let mut users = root.fork("users");
/// // Forks are deterministic functions of (seed, label):
/// let mut venues2 = RngStream::from_seed(42).fork("venues");
/// assert_eq!(venues.next_u64(), venues2.next_u64());
/// # let _ = users.next_u64();
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    seed: u64,
    rng: StdRng,
}

impl RngStream {
    /// Creates a stream from a root seed.
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Forks an independent substream identified by a label.
    ///
    /// The fork depends only on this stream's original seed and the
    /// label — not on how many values have been drawn — so call order
    /// does not matter.
    pub fn fork(&self, label: &str) -> RngStream {
        let mixed = fnv1a(label) ^ self.seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
        RngStream::from_seed(splitmix64(mixed))
    }

    /// Forks a numbered substream (e.g. one per user).
    pub fn fork_indexed(&self, label: &str, index: u64) -> RngStream {
        let mixed = fnv1a(label) ^ self.seed.rotate_left(17) ^ splitmix64(index);
        RngStream::from_seed(splitmix64(mixed))
    }

    /// The next `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// A uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.rng.gen_range(lo..hi)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A standard-normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A log-normal sample with the given parameters of the underlying
    /// normal. Used for the heavy-tailed check-in-count distribution.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Picks a uniformly random element. Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range_u64(0, items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(0, (i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Access to the underlying `rand` RNG for generic APIs.
    pub fn as_rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::from_seed(7);
        let mut b = RngStream::from_seed(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_draw_order() {
        let mut root1 = RngStream::from_seed(1);
        let _ = root1.next_u64(); // consume some values first
        let _ = root1.next_u64();
        let mut f1 = root1.fork("x");

        let root2 = RngStream::from_seed(1);
        let mut f2 = root2.fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn different_labels_differ() {
        let root = RngStream::from_seed(1);
        assert_ne!(root.fork("a").next_u64(), root.fork("b").next_u64());
        assert_ne!(
            root.fork_indexed("u", 0).next_u64(),
            root.fork_indexed("u", 1).next_u64()
        );
    }

    #[test]
    fn uniform_ranges_respect_bounds() {
        let mut r = RngStream::from_seed(3);
        for _ in 0..1000 {
            let v = r.range_u64(5, 10);
            assert!((5..10).contains(&v));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::from_seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(5.0));
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = RngStream::from_seed(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = RngStream::from_seed(6);
        for _ in 0..1000 {
            assert!(r.log_normal(1.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = RngStream::from_seed(8);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items left them sorted");
    }
}
