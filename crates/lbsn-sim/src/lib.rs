//! Simulation substrate: virtual time, deterministic randomness, latency
//! models, and rate limiting.
//!
//! The paper's experiments ran against live Foursquare over days (the
//! mayorship took 4 daily check-ins plus a 9-day wait; the crawl took ~2
//! days per full pass). The reproduction replays those timelines against a
//! virtual clock so a "week" of check-ins takes microseconds, while the
//! crawler's thread-scaling experiments use real threads with injectable
//! latency. Everything is seeded and deterministic: the same
//! [`RngStream`] seed regenerates the same population, the same figures.

#![warn(missing_docs)]

mod clock;
mod latency;
mod rate;
mod rng;

pub use clock::{Duration, SimClock, Timestamp, DAY, HOUR, MINUTE};
pub use latency::LatencyModel;
pub use rate::TokenBucket;
pub use rng::RngStream;
