//! Virtual time: the shared simulation clock and time newtypes.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Seconds in a virtual minute.
pub const MINUTE: u64 = 60;
/// Seconds in a virtual hour.
pub const HOUR: u64 = 60 * MINUTE;
/// Seconds in a virtual day.
pub const DAY: u64 = 24 * HOUR;

/// A point in virtual time: seconds since the service launched.
///
/// Epoch 0 corresponds to the paper's "Foursquare launched in March 2009";
/// the August-2010 crawl is then around day 520. Nothing depends on the
/// absolute calendar — only on differences and on day boundaries (the
/// mayorship algorithm counts *days with check-ins*).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Timestamp at the given number of whole virtual days since launch.
    pub fn at_day(day: u64) -> Self {
        Timestamp(day * DAY)
    }

    /// The virtual day index this timestamp falls in.
    pub fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Seconds since launch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day(),
            (self.0 % DAY) / HOUR,
            (self.0 % HOUR) / MINUTE,
            self.0 % MINUTE
        )
    }
}

/// A span of virtual time in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Duration {
    /// A duration of `n` seconds.
    pub fn secs(n: u64) -> Self {
        Duration(n)
    }

    /// A duration of `n` minutes.
    pub fn minutes(n: u64) -> Self {
        Duration(n * MINUTE)
    }

    /// A duration of `n` hours.
    pub fn hours(n: u64) -> Self {
        Duration(n * HOUR)
    }

    /// A duration of `n` days.
    pub fn days(n: u64) -> Self {
        Duration(n * DAY)
    }

    /// The span as seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// The span as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// The shared, monotonic virtual clock.
///
/// Cheap to clone (an `Arc` around an atomic); every component of the
/// simulation — server, devices, crawler, attack schedulers — reads the
/// same clock, and the test driver advances it.
///
/// ```
/// use lbsn_sim::{Duration, SimClock};
///
/// let clock = SimClock::new();
/// let h = clock.clone();
/// clock.advance(Duration::minutes(5));
/// assert_eq!(h.now().secs(), 300);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at virtual time zero (service launch).
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at the given time.
    pub fn starting_at(t: Timestamp) -> Self {
        let c = SimClock::new();
        c.now.store(t.0, Ordering::SeqCst);
        c
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d`. Returns the new time.
    pub fn advance(&self, d: Duration) -> Timestamp {
        Timestamp(self.now.fetch_add(d.0, Ordering::SeqCst) + d.0)
    }

    /// Moves the clock forward to `t`. A no-op if `t` is in the past —
    /// the clock never runs backwards.
    pub fn advance_to(&self, t: Timestamp) {
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp(0));
        assert_eq!(c.advance(Duration::secs(10)), Timestamp(10));
        assert_eq!(c.now(), Timestamp(10));
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let d = c.clone();
        c.advance(Duration::hours(1));
        assert_eq!(d.now().secs(), HOUR);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::starting_at(Timestamp(100));
        c.advance_to(Timestamp(50));
        assert_eq!(c.now(), Timestamp(100));
        c.advance_to(Timestamp(150));
        assert_eq!(c.now(), Timestamp(150));
    }

    #[test]
    fn day_boundaries() {
        assert_eq!(Timestamp(0).day(), 0);
        assert_eq!(Timestamp(DAY - 1).day(), 0);
        assert_eq!(Timestamp(DAY).day(), 1);
        assert_eq!(Timestamp::at_day(520).day(), 520);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::minutes(5).as_secs(), 300);
        assert_eq!(Duration::hours(2).as_secs(), 7200);
        assert_eq!(Duration::days(1).as_secs(), 86_400);
        assert_eq!(Duration::hours(3).as_hours_f64(), 3.0);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t + Duration::secs(50), Timestamp(150));
        assert_eq!(Timestamp(150) - t, Duration(50));
        // Saturating: earlier - later is zero, not underflow.
        assert_eq!(t - Timestamp(150), Duration(0));
        let mut u = t;
        u += Duration::secs(1);
        assert_eq!(u, Timestamp(101));
    }

    #[test]
    fn timestamp_display() {
        let t = Timestamp::at_day(3) + Duration::hours(4) + Duration::minutes(5);
        assert_eq!(t.to_string(), "d3+04:05:00");
    }
}
