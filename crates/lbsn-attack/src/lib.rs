//! The automated location-cheating toolkit of §3.3–3.4.
//!
//! Everything the paper's "semiautomatic location cheating tool" did,
//! as a library:
//!
//! * [`PacingPolicy`] / [`Schedule`] — turn a venue tour into a check-in
//!   timetable that evades every cheater-code rule ("we can check into
//!   venues less than 1 mile apart with a 5-minute interval … if
//!   D > 1 mile, we let T = D × 5 minutes");
//! * [`VirtualPath`] / [`VenueSnapper`] — the Fig 3.5 virtual tour:
//!   "move 500 yards to the west", snap to the nearest crawled venue;
//! * [`VenueIntel`] — §3.4's target selection over the crawl database:
//!   venues with unclaimed mayor specials, dormant mayors, a victim's
//!   mayorship portfolio;
//! * [`AttackSession`] — drives a spoofed emulator through a schedule
//!   against the live server;
//! * [`MayorFarmer`] / [`deny_mayorships`] — the mayorship-farming and
//!   mayor-denial attacks.

#![warn(missing_docs)]

mod autosquare;
mod executor;
mod farmer;
mod intel;
mod path;
mod schedule;

pub use autosquare::{Autosquare, AutosquareReport};

pub use executor::{AttackSession, CampaignReport};
pub use farmer::{deny_mayorships, DenialReport, FarmResult, MayorFarmer};
pub use intel::VenueIntel;
/// This crate's group of registered observability names (see
/// `lbsn_obs::names` for the registry and the lint that enforces it).
pub use lbsn_obs::names::attack as metric_names;
pub use path::{VenueSnapper, VirtualPath};
pub use schedule::{PacingPolicy, Schedule, ScheduledCheckin};
