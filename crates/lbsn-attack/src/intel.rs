//! Venue-profile intelligence: §3.4's target selection.

use lbsn_crawler::{CrawlDatabase, UserInfoRow, VenueInfoRow};

/// Target-selection queries over a crawl database.
///
/// "an attacker may select the victim venues that provide special offers
/// to their mayors and don't have a mayor yet (or are less competitive
/// for mayorship) as targets. … Amongst the venues we have crawled,
/// around 1000 venues fall into this category."
#[derive(Debug)]
pub struct VenueIntel<'a> {
    db: &'a CrawlDatabase,
}

impl<'a> VenueIntel<'a> {
    /// Builds intel over a completed crawl.
    pub fn new(db: &'a CrawlDatabase) -> Self {
        VenueIntel { db }
    }

    /// Venues with a mayor-only special and no mayor: one check-in wins
    /// the real-world reward.
    pub fn unclaimed_mayor_specials(&self) -> Vec<VenueInfoRow> {
        self.db.venues_where(|v| v.is_unclaimed_special())
    }

    /// Venues whose special does not require mayorship — "much easier to
    /// obtain; it's difficult to find such information without crawling
    /// the venue profiles."
    pub fn easy_specials(&self) -> Vec<VenueInfoRow> {
        self.db
            .venues_where(|v| matches!(&v.special, Some((kind, _)) if kind != "mayor"))
    }

    /// Venues with a mayor-only special whose mayorship looks weakly
    /// defended: a dormant venue (few recent visitors) is cheap to take
    /// with a handful of daily check-ins.
    pub fn weak_mayor_targets(&self, max_recent_visitors: usize) -> Vec<VenueInfoRow> {
        self.db.venues_where(|v| {
            v.mayor.is_some()
                && matches!(&v.special, Some((kind, _)) if kind == "mayor")
                && v.recent_visitors.len() <= max_recent_visitors
        })
    }

    /// The victim's mayorship portfolio — the prerequisite for the
    /// mayor-denial attack ("the attacker will analyze venue profiles
    /// and find venues that the victim user is mayor of").
    pub fn mayorships_of(&self, user_id: u64) -> Vec<VenueInfoRow> {
        self.db.venues_where(|v| v.mayor == Some(user_id))
    }

    /// The Fig 3.4 query: `SELECT Longitude, Latitude FROM VenueInfo
    /// WHERE Name LIKE <pattern>`, returned as `(lon, lat)` pairs in the
    /// figure's axis order.
    pub fn coordinates_where_name_like(&self, pattern: &str) -> Vec<(f64, f64)> {
        self.db
            .venues_where_name_like(pattern)
            .into_iter()
            .map(|v| (v.location.lon(), v.location.lat()))
            .collect()
    }

    /// Users holding suspiciously many mayorships relative to their
    /// check-in count — how the paper spotted "a user on Foursquare
    /// \[who\] is the mayor of 865 venues but with a total number of
    /// check-ins of only 1265". Requires
    /// [`CrawlDatabase::recompute_aggregates`] to have run.
    pub fn mayor_hoarders(&self, min_mayorships: u64) -> Vec<UserInfoRow> {
        let mut rows = self.db.users_where(|u| u.total_mayors >= min_mayorships);
        rows.sort_by_key(|u| std::cmp::Reverse(u.total_mayors));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_crawler::VisitorRef;
    use lbsn_geo::GeoPoint;

    fn venue(
        id: u64,
        name: &str,
        special: Option<(&str, &str)>,
        mayor: Option<u64>,
        visitors: &[u64],
    ) -> VenueInfoRow {
        VenueInfoRow {
            id,
            name: name.to_string(),
            address: String::new(),
            category: "Coffee Shop".to_string(),
            location: GeoPoint::new(35.0 + id as f64 * 0.01, -106.0).unwrap(),
            checkins_here: visitors.len() as u64,
            unique_visitors: visitors.len() as u64,
            special: special.map(|(k, d)| (k.to_string(), d.to_string())),
            tips: 0,
            mayor,
            recent_visitors: visitors.iter().map(|u| VisitorRef::Id(*u)).collect(),
        }
    }

    fn sample_db() -> CrawlDatabase {
        let db = CrawlDatabase::new();
        db.insert_venue(venue(
            1,
            "Starbucks #1",
            Some(("mayor", "Free coffee")),
            None,
            &[],
        ));
        db.insert_venue(venue(
            2,
            "Starbucks #2",
            Some(("mayor", "Free latte")),
            Some(9),
            &[9],
        ));
        db.insert_venue(venue(3, "Gym", Some(("loyalty", "Free month")), None, &[]));
        db.insert_venue(venue(4, "Diner", None, Some(9), &[1, 2, 3, 4, 5]));
        db.insert_venue(venue(
            5,
            "Cafe Roma",
            Some(("mayor", "Free espresso")),
            Some(7),
            &[7, 8, 1, 2, 3],
        ));
        for i in 1..=9 {
            db.insert_user(lbsn_crawler::UserInfoRow {
                id: i,
                username: None,
                home: None,
                total_checkins: i * 10,
                total_badges: 0,
                friends: 0,
                points: 0,
                recent_checkins: 0,
                total_mayors: 0,
            });
        }
        db.recompute_aggregates();
        db
    }

    #[test]
    fn unclaimed_specials_found() {
        let db = sample_db();
        let intel = VenueIntel::new(&db);
        let targets = intel.unclaimed_mayor_specials();
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].id, 1);
    }

    #[test]
    fn easy_specials_exclude_mayor_only() {
        let db = sample_db();
        let intel = VenueIntel::new(&db);
        let easy = intel.easy_specials();
        assert_eq!(easy.len(), 1);
        assert_eq!(easy[0].id, 3);
    }

    #[test]
    fn weak_mayors_are_dormant_venues() {
        let db = sample_db();
        let intel = VenueIntel::new(&db);
        // Venue 2's mayor has 1 recent visitor (dormant); venue 5 has 5.
        let weak = intel.weak_mayor_targets(2);
        assert_eq!(weak.len(), 1);
        assert_eq!(weak[0].id, 2);
        // Loosening the threshold pulls in venue 5 too.
        assert_eq!(intel.weak_mayor_targets(10).len(), 2);
    }

    #[test]
    fn victim_portfolio() {
        let db = sample_db();
        let intel = VenueIntel::new(&db);
        let victim = intel.mayorships_of(9);
        assert_eq!(victim.iter().map(|v| v.id).collect::<Vec<_>>(), vec![2, 4]);
        assert!(intel.mayorships_of(42).is_empty());
    }

    #[test]
    fn starbucks_coordinates_in_lon_lat_order() {
        let db = sample_db();
        let intel = VenueIntel::new(&db);
        let coords = intel.coordinates_where_name_like("%starbucks%");
        assert_eq!(coords.len(), 2);
        // (lon, lat) order like the figure's axes.
        assert_eq!(coords[0], (-106.0, 35.01));
    }

    #[test]
    fn mayor_hoarders_ranked() {
        let db = sample_db();
        let intel = VenueIntel::new(&db);
        let hoarders = intel.mayor_hoarders(1);
        assert_eq!(hoarders[0].id, 9);
        assert_eq!(hoarders[0].total_mayors, 2);
        assert_eq!(hoarders.len(), 2);
        assert!(intel.mayor_hoarders(3).is_empty());
    }
}
