//! Virtual paths and venue snapping: the Fig 3.5 tour machinery.

use lbsn_crawler::CrawlDatabase;
use lbsn_geo::{destination, GeoGrid, GeoPoint, Meters, METERS_PER_DEGREE_LAT};
use lbsn_server::VenueId;

/// A sequence of *desired* locations for a cheating tour — the
/// cross-points of Fig 3.5. Actual check-ins go to the nearest venue
/// ([`VenueSnapper::snap`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualPath {
    /// Waypoints in visit order (includes the start).
    pub points: Vec<GeoPoint>,
}

impl VirtualPath {
    /// Builds a path from explicit `(bearing°, distance m)` moves — the
    /// tool's "set the moving direction and distance, for example,
    /// 'move 500 yards to the west'".
    pub fn from_moves(start: GeoPoint, moves: &[(f64, Meters)]) -> Self {
        let mut points = vec![start];
        let mut here = start;
        for &(bearing, dist) in moves {
            here = destination(here, bearing, dist);
            points.push(here);
        }
        VirtualPath { points }
    }

    /// The Fig 3.5 walk: start heading north, move in fixed-degree
    /// steps, and turn right every `straight_run` steps, tracing a
    /// clockwise circuit through the city.
    ///
    /// `step_deg` is the per-move displacement in degrees (the paper
    /// used 0.005°, "equivalent to about 550 meters in latitude
    /// direction or about 450 meters in longitude direction around this
    /// location").
    pub fn clockwise_circuit(
        start: GeoPoint,
        step_deg: f64,
        steps: usize,
        straight_run: usize,
    ) -> Self {
        let step_m = step_deg * METERS_PER_DEGREE_LAT;
        let headings = [0.0, 90.0, 180.0, 270.0]; // N, E, S, W
        let mut moves = Vec::with_capacity(steps);
        for i in 0..steps {
            let turn = i / straight_run.max(1);
            moves.push((headings[turn % 4], step_m));
        }
        VirtualPath::from_moves(start, &moves)
    }

    /// A clockwise rectangular spiral: straight runs grow as
    /// 1, 1, 2, 2, 3, 3, … steps, so the walk keeps covering new
    /// ground instead of closing back onto its own track the way
    /// [`VirtualPath::clockwise_circuit`] does after one lap. The
    /// outermost arm after `steps` moves is about `√steps` steps long,
    /// so a 240-step spiral at 0.005° stays within ~9 km of the start —
    /// inside E4's 15 km venue radius even at the smallest CI scale.
    pub fn outward_spiral(start: GeoPoint, step_deg: f64, steps: usize) -> Self {
        let step_m = step_deg * METERS_PER_DEGREE_LAT;
        let headings = [0.0, 90.0, 180.0, 270.0]; // N, E, S, W
        let mut moves = Vec::with_capacity(steps);
        let mut turn = 0usize;
        let mut run = 0usize;
        while moves.len() < steps {
            moves.push((headings[turn % 4], step_m));
            run += 1;
            if run == turn / 2 + 1 {
                run = 0;
                turn += 1;
            }
        }
        VirtualPath::from_moves(start, &moves)
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the path has no waypoints.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Snaps desired locations to real venues from the crawl database —
/// "the tool will search for the venue that is the closest to the
/// target location".
#[derive(Debug)]
pub struct VenueSnapper {
    grid: GeoGrid<VenueId>,
}

impl VenueSnapper {
    /// Indexes every crawled venue.
    pub fn from_db(db: &CrawlDatabase) -> Self {
        let mut grid = GeoGrid::new(500.0);
        db.for_each_venue(|v| {
            grid.insert(v.location, VenueId(v.id));
        });
        VenueSnapper { grid }
    }

    /// Indexes an explicit venue list.
    pub fn from_venues(venues: impl IntoIterator<Item = (VenueId, GeoPoint)>) -> Self {
        let mut grid = GeoGrid::new(500.0);
        for (id, loc) in venues {
            grid.insert(loc, id);
        }
        VenueSnapper { grid }
    }

    /// The closest venue to a desired location, with the snap distance.
    pub fn snap(&self, target: GeoPoint) -> Option<(VenueId, Meters)> {
        self.grid.nearest(target).map(|(id, d)| (*id, d))
    }

    /// Number of indexed venues.
    pub fn venue_count(&self) -> usize {
        self.grid.len()
    }

    /// Converts a virtual path into a venue tour: snap each waypoint,
    /// look up the venue's true coordinates (the spoof target), and drop
    /// consecutive duplicates — exactly the diamond points of Fig 3.5.
    ///
    /// `resolve` maps a venue ID to its coordinates (the executor spoofs
    /// the *venue's* location, not the waypoint's).
    pub fn tour(
        &self,
        path: &VirtualPath,
        mut resolve: impl FnMut(VenueId) -> Option<GeoPoint>,
    ) -> Vec<(VenueId, GeoPoint)> {
        let mut out: Vec<(VenueId, GeoPoint)> = Vec::new();
        for &waypoint in &path.points {
            let Some((id, _)) = self.snap(waypoint) else {
                continue;
            };
            if out.last().map(|(last, _)| *last) == Some(id) {
                continue;
            }
            if let Some(loc) = resolve(id) {
                out.push((id, loc));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_geo::distance;

    fn abq() -> GeoPoint {
        GeoPoint::new(35.06, -106.62).unwrap()
    }

    #[test]
    fn from_moves_traces_waypoints() {
        let p = VirtualPath::from_moves(abq(), &[(0.0, 550.0), (90.0, 450.0)]);
        assert_eq!(p.len(), 3);
        assert!((distance(p.points[0], p.points[1]) - 550.0).abs() < 1.0);
        assert!((distance(p.points[1], p.points[2]) - 450.0).abs() < 1.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn circuit_turns_right_and_returns() {
        // 24 steps, turning right every 6: a full square circuit that
        // ends near the start.
        let p = VirtualPath::clockwise_circuit(abq(), 0.005, 24, 6);
        assert_eq!(p.len(), 25);
        let home_gap = distance(p.points[0], *p.points.last().unwrap());
        assert!(home_gap < 500.0, "circuit should close, gap {home_gap} m");
        // The far corner is ~6 steps × 550 m away on each axis.
        let far = p
            .points
            .iter()
            .map(|q| distance(p.points[0], *q))
            .fold(0.0f64, f64::max);
        assert!(far > 3_000.0, "far corner {far}");
    }

    #[test]
    fn spiral_never_retraces_and_stays_bounded() {
        let p = VirtualPath::outward_spiral(abq(), 0.005, 240);
        assert_eq!(p.len(), 241);
        // Every waypoint is new ground: no two closer than half a step.
        for (i, a) in p.points.iter().enumerate() {
            for b in &p.points[i + 1..] {
                assert!(
                    distance(*a, *b) > 200.0,
                    "spiral retraced itself at waypoint {i}"
                );
            }
        }
        // ... yet the whole walk stays inside E4's 15 km venue radius.
        let far = p
            .points
            .iter()
            .map(|q| distance(p.points[0], *q))
            .fold(0.0f64, f64::max);
        assert!(far < 12_000.0, "spiral wandered {far} m from the start");
    }

    #[test]
    fn spiral_out_tours_the_circuit_on_a_sparse_grid() {
        // A sparse 5×5 venue grid, one venue per ~1.1 km: the closed
        // circuit laps its own track and stops yielding new venues,
        // while the spiral keeps crossing fresh snap cells. This is the
        // E4 regression at tiny world scales, in miniature.
        let mut venues = Vec::new();
        for i in -2i64..=2 {
            for j in -2i64..=2 {
                let p = destination(
                    destination(abq(), 0.0, 1_100.0 * i as f64),
                    90.0,
                    1_100.0 * j as f64,
                );
                venues.push((VenueId(((i + 2) * 5 + j + 3) as u64), p));
            }
        }
        let lookup: std::collections::HashMap<_, _> = venues.iter().cloned().collect();
        let snapper = VenueSnapper::from_venues(venues);
        let distinct = |path: &VirtualPath| {
            snapper
                .tour(path, |id| lookup.get(&id).copied())
                .into_iter()
                .map(|(id, _)| id)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        // Once the circuit closes, further laps revisit the same ring
        // of snap cells; the spiral keeps reaching venues it has never
        // seen. (Consecutive-dedup tour *length* can still grow on a
        // lap — distinct venues is what feeds E4's 25-check-in quota.)
        let steps = 120;
        let circuit = distinct(&VirtualPath::clockwise_circuit(abq(), 0.005, steps, 7));
        let spiral = distinct(&VirtualPath::outward_spiral(abq(), 0.005, steps));
        assert!(
            spiral > circuit,
            "spiral {spiral} distinct venues vs circuit {circuit}"
        );
    }

    #[test]
    fn snapper_picks_nearest_venue() {
        let venues: Vec<_> = (0..20)
            .map(|i| {
                (
                    VenueId(i + 1),
                    destination(abq(), (i * 18) as f64, 200.0 * (i + 1) as f64),
                )
            })
            .collect();
        let snapper = VenueSnapper::from_venues(venues.clone());
        assert_eq!(snapper.venue_count(), 20);
        let (id, d) = snapper.snap(abq()).unwrap();
        assert_eq!(id, VenueId(1));
        assert!((d - 200.0).abs() < 2.0);
    }

    #[test]
    fn tour_dedupes_consecutive_snaps() {
        // One venue only: every waypoint snaps to it; tour has length 1.
        let v = vec![(VenueId(1), abq())];
        let snapper = VenueSnapper::from_venues(v.clone());
        let path = VirtualPath::clockwise_circuit(abq(), 0.005, 8, 2);
        let tour = snapper.tour(&path, |_| Some(abq()));
        assert_eq!(tour.len(), 1);
    }

    #[test]
    fn tour_visits_distinct_venues_along_path() {
        // A line of venues every ~550 m heading north; a straight-north
        // path should sweep them in order.
        let venues: Vec<_> = (0..10)
            .map(|i| (VenueId(i + 1), destination(abq(), 0.0, 550.0 * i as f64)))
            .collect();
        let lookup: std::collections::HashMap<_, _> = venues.iter().cloned().collect();
        let snapper = VenueSnapper::from_venues(venues);
        let path = VirtualPath::from_moves(abq(), &[(0.0, 550.0); 9]);
        let tour = snapper.tour(&path, |id| lookup.get(&id).copied());
        assert_eq!(tour.len(), 10);
        assert_eq!(tour[0].0, VenueId(1));
        assert_eq!(tour[9].0, VenueId(10));
    }

    #[test]
    fn empty_snapper_yields_empty_tour() {
        let snapper = VenueSnapper::from_venues(std::iter::empty());
        assert!(snapper.snap(abq()).is_none());
        let path = VirtualPath::from_moves(abq(), &[(0.0, 500.0)]);
        assert!(snapper.tour(&path, |_| Some(abq())).is_empty());
    }
}
