//! Check-in scheduling: pacing that stays under the cheater code.

use lbsn_geo::{distance, meters_to_miles, GeoPoint};
use lbsn_server::VenueId;
use lbsn_sim::{Duration, Timestamp};

/// The empirical pacing law of §3.3.
///
/// "Based on our experiments, we can check into venues less than 1 mile
/// apart with a 5-minute interval without being detected as a cheater.
/// So for distance D less than 1 mile, we should set T to 5 minutes, if
/// D > 1 mile, we let T = D × 5 minutes."
///
/// `per_mile` is ablation-tunable: the `ablation_pacing` bench sweeps it
/// downward to find where the super-human-speed rule starts firing.
#[derive(Debug, Clone, PartialEq)]
pub struct PacingPolicy {
    /// Minimum interval between any two check-ins (paper: 5 minutes).
    pub min_interval: Duration,
    /// Additional interval per mile of displacement (paper: 5 minutes).
    pub per_mile: Duration,
    /// Same-venue cooldown to respect (paper: 1 hour).
    pub venue_cooldown: Duration,
}

impl Default for PacingPolicy {
    fn default() -> Self {
        PacingPolicy {
            min_interval: Duration::minutes(5),
            per_mile: Duration::minutes(5),
            venue_cooldown: Duration::hours(1),
        }
    }
}

impl PacingPolicy {
    /// The wait before a check-in `dist_m` metres from the previous one.
    pub fn interval_for(&self, dist_m: f64) -> Duration {
        let miles = meters_to_miles(dist_m);
        if miles <= 1.0 {
            self.min_interval
        } else {
            Duration::secs((miles * self.per_mile.as_secs() as f64).ceil() as u64)
        }
    }
}

/// One planned check-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledCheckin {
    /// Target venue.
    pub venue: VenueId,
    /// The coordinates to spoof (the venue's own location).
    pub location: GeoPoint,
    /// When to fire.
    pub at: Timestamp,
}

/// A time-ordered check-in plan satisfying the pacing policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    items: Vec<ScheduledCheckin>,
}

impl Schedule {
    /// Plans a tour: visits venues in order, spacing check-ins by the
    /// pacing law and pushing a revisit past the venue cooldown.
    ///
    /// Consecutive duplicate venues are merged (you cannot "move" to the
    /// venue you are already at).
    pub fn build(
        tour: &[(VenueId, GeoPoint)],
        start: Timestamp,
        policy: &PacingPolicy,
    ) -> Schedule {
        let mut items: Vec<ScheduledCheckin> = Vec::new();
        let mut t = start;
        let mut prev_loc: Option<GeoPoint> = None;
        for &(venue, location) in tour {
            if let Some(last) = items.last() {
                if last.venue == venue {
                    continue;
                }
            }
            if let Some(prev) = prev_loc {
                t += policy.interval_for(distance(prev, location));
            }
            // Respect the same-venue cooldown against our own earlier
            // visits.
            if let Some(prior) = items.iter().rev().find(|i| i.venue == venue) {
                let earliest = prior.at + policy.venue_cooldown + Duration::secs(1);
                if earliest > t {
                    t = earliest;
                }
            }
            items.push(ScheduledCheckin {
                venue,
                location,
                at: t,
            });
            prev_loc = Some(location);
        }
        Schedule { items }
    }

    /// The planned check-ins, time-ordered.
    pub fn items(&self) -> &[ScheduledCheckin] {
        &self.items
    }

    /// Number of planned check-ins.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total plan duration from first to last check-in.
    pub fn span(&self) -> Duration {
        match (self.items.first(), self.items.last()) {
            (Some(a), Some(b)) => b.at.since(a.at),
            _ => Duration::secs(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_geo::{destination, miles_to_meters};

    fn abq() -> GeoPoint {
        GeoPoint::new(35.0844, -106.6504).unwrap()
    }

    #[test]
    fn interval_matches_paper_law() {
        let p = PacingPolicy::default();
        // Under a mile: flat 5 minutes.
        assert_eq!(p.interval_for(100.0), Duration::minutes(5));
        assert_eq!(p.interval_for(miles_to_meters(0.99)), Duration::minutes(5));
        // Over a mile: 5 minutes per mile.
        assert_eq!(
            p.interval_for(miles_to_meters(2.0)),
            Duration::secs(2 * 300)
        );
        let d10 = p.interval_for(miles_to_meters(10.0));
        assert_eq!(d10, Duration::secs(3000));
    }

    #[test]
    fn schedule_spaces_checkins() {
        let a = abq();
        let b = destination(a, 90.0, 500.0);
        let c = destination(a, 90.0, 500.0 + miles_to_meters(3.0));
        let tour = vec![(VenueId(1), a), (VenueId(2), b), (VenueId(3), c)];
        let s = Schedule::build(&tour, Timestamp(0), &PacingPolicy::default());
        assert_eq!(s.len(), 3);
        let items = s.items();
        assert_eq!(items[0].at, Timestamp(0));
        assert_eq!(items[1].at, Timestamp(300), "short hop: 5 minutes");
        // 3 miles: ~15 minutes later (ceil of the great-circle distance
        // can add a second or two).
        let gap = items[2].at.secs() - items[1].at.secs();
        assert!((900..=905).contains(&gap), "gap {gap}");
    }

    #[test]
    fn revisits_wait_out_the_cooldown() {
        let a = abq();
        let b = destination(a, 0.0, 400.0);
        let tour = vec![(VenueId(1), a), (VenueId(2), b), (VenueId(1), a)];
        let s = Schedule::build(&tour, Timestamp(0), &PacingPolicy::default());
        assert_eq!(s.len(), 3);
        let items = s.items();
        // The revisit to venue 1 must be > 1 h after its first visit.
        assert!(items[2].at.secs() > items[0].at.secs() + 3600);
    }

    #[test]
    fn consecutive_duplicates_merge() {
        let a = abq();
        let tour = vec![(VenueId(1), a), (VenueId(1), a), (VenueId(1), a)];
        let s = Schedule::build(&tour, Timestamp(0), &PacingPolicy::default());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_tour_empty_schedule() {
        let s = Schedule::build(&[], Timestamp(0), &PacingPolicy::default());
        assert!(s.is_empty());
        assert_eq!(s.span(), Duration::secs(0));
    }

    #[test]
    fn span_covers_plan() {
        let a = abq();
        let tour: Vec<_> = (0..25)
            .map(|i| (VenueId(i + 1), destination(a, 90.0, 450.0 * i as f64)))
            .collect();
        let s = Schedule::build(&tour, Timestamp(0), &PacingPolicy::default());
        assert_eq!(s.len(), 25);
        // 24 hops × 5 min = 2 hours.
        assert_eq!(s.span(), Duration::minutes(120));
    }

    #[test]
    fn schedule_speed_stays_under_cheater_threshold() {
        // The pacing law implies ≤ 12 mph between consecutive check-ins
        // — far under the 40 m/s rule.
        let a = abq();
        let tour: Vec<_> = (0..10)
            .map(|i| {
                (
                    VenueId(i + 1),
                    destination(a, (i * 36) as f64 % 360.0, 3_000.0 * i as f64),
                )
            })
            .collect();
        let s = Schedule::build(&tour, Timestamp(0), &PacingPolicy::default());
        for w in s.items().windows(2) {
            let d = distance(w[0].location, w[1].location);
            let dt = w[1].at.since(w[0].at).as_secs() as f64;
            assert!(d / dt <= 6.0, "implied speed {} m/s", d / dt);
        }
    }
}
