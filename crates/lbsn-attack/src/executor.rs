//! Executing a cheating campaign against the live server.

use std::collections::HashSet;
use std::sync::Arc;

use lbsn_device::Emulator;
use lbsn_geo::GeoPoint;
use lbsn_obs::names::attack as obs_names;
use lbsn_obs::{Counter, Histogram, Registry};
use lbsn_server::{
    AdmissionOutcome, Badge, CheatFlag, CheckinError, CheckinEvidence, LbsnServer, UserId, VenueId,
};

use crate::schedule::Schedule;

/// Evasion-streak histogram buckets: streaks are small integers, not
/// latencies, so the default nanosecond layout would waste resolution.
const STREAK_BUCKETS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Pre-resolved observability handles for an attack session (scheme
/// `attack.component.metric`).
struct AttackMetrics {
    /// Kept for campaign/step spans, which must be opened per execute.
    registry: Arc<Registry>,
    /// `attack.checkins.attempted`: spoofed check-ins submitted.
    attempted: Counter,
    /// `attack.checkins.rewarded`: check-ins that earned rewards.
    rewarded: Counter,
    /// `attack.checkins.flagged`: check-ins the cheater code caught.
    flagged: Counter,
    /// `attack.checkins.verifier_rejected`: check-ins a §5.1 verifier
    /// stage dropped before the server recorded them.
    verifier_rejected: Counter,
    /// `attack.evasion.streak`: lengths of consecutive-unflagged runs,
    /// recorded each time a streak ends (a flag, or end of campaign).
    evasion_streak: Histogram,
}

impl AttackMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        AttackMetrics {
            attempted: registry.counter(obs_names::CHECKINS_ATTEMPTED),
            rewarded: registry.counter(obs_names::CHECKINS_REWARDED),
            flagged: registry.counter(obs_names::CHECKINS_FLAGGED),
            verifier_rejected: registry.counter(obs_names::CHECKINS_VERIFIER_REJECTED),
            evasion_streak: registry
                .histogram_with_buckets(obs_names::EVASION_STREAK, &STREAK_BUCKETS),
            registry,
        }
    }
}

/// What happened when a schedule was executed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignReport {
    /// Check-ins attempted.
    pub attempted: u64,
    /// Check-ins that earned rewards.
    pub rewarded: u64,
    /// Check-ins the cheater code flagged, with their flags.
    pub flagged: Vec<(VenueId, Vec<CheatFlag>)>,
    /// Check-ins dropped by a pre-admission verifier stage (verified
    /// deployments only) — never recorded server-side, unlike flagged
    /// check-ins, which still count toward the account's totals.
    pub verifier_rejected: u64,
    /// Total points earned.
    pub points: u64,
    /// Badges unlocked during the campaign.
    pub badges: Vec<Badge>,
    /// Venues whose mayorship the attacker took.
    pub mayorships_gained: Vec<VenueId>,
    /// Specials unlocked (real-world rewards!).
    pub specials: Vec<String>,
}

impl CampaignReport {
    /// Whether the whole campaign evaded detection.
    pub fn undetected(&self) -> bool {
        self.flagged.is_empty() && self.verifier_rejected == 0
    }
}

/// An attacker driving one spoofed account: the §3.1 emulator rig,
/// packaged.
///
/// Boots an emulator, flashes the recovery image, installs the client
/// app, and then executes schedules by setting `geo fix` coordinates and
/// tapping "check in" — advancing the shared virtual clock to each
/// planned time, exactly as the real attack waits out its intervals.
pub struct AttackSession {
    server: Arc<LbsnServer>,
    emulator: Emulator,
    app: lbsn_device::ClientApp,
    metrics: AttackMetrics,
}

impl std::fmt::Debug for AttackSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackSession")
            .field("user", &self.app.user())
            .finish()
    }
}

impl AttackSession {
    /// Prepares the full §3.1 rig for `user`, reporting metrics into
    /// the process-wide [`lbsn_obs::global`] registry.
    pub fn new(server: Arc<LbsnServer>, user: UserId) -> Self {
        Self::with_registry(server, user, lbsn_obs::global())
    }

    /// Prepares the rig, reporting metrics into an injected registry.
    pub fn with_registry(server: Arc<LbsnServer>, user: UserId, registry: Arc<Registry>) -> Self {
        let mut emulator = Emulator::boot();
        emulator.flash_recovery_image();
        let app = emulator
            .install_lbsn_app(Arc::clone(&server), user)
            .expect("market unlocked after recovery image");
        AttackSession {
            server,
            emulator,
            app,
            metrics: AttackMetrics::new(registry),
        }
    }

    /// The attacking account.
    pub fn user(&self) -> UserId {
        self.app.user()
    }

    /// The underlying server (shared clock lives there).
    pub fn server(&self) -> &Arc<LbsnServer> {
        &self.server
    }

    /// The §2.2 badmouthing attack: "a business owner may use location
    /// cheating to check into a competing business, and badmouth that
    /// business by leaving negative comments." Spoofs a check-in at the
    /// competitor (so the account reads like a recent customer), then
    /// leaves the comment. Returns whether the check-in passed
    /// verification; the tip posts either way.
    pub fn badmouth(&self, competitor: VenueId, comment: impl Into<String>) -> bool {
        let checked_in = self
            .spoof_and_check_in(competitor)
            .map(|o| o.rewarded())
            .unwrap_or(false);
        let _ = self.server.leave_tip(self.user(), competitor, comment);
        checked_in
    }

    /// Spoofs to a single venue and checks in right now.
    pub fn spoof_and_check_in(&self, venue: VenueId) -> Option<lbsn_server::CheckinOutcome> {
        let loc = self.server.with_venue(venue, |v| v.location)?;
        self.emulator
            .debug_monitor()
            .geo_fix(loc.lon(), loc.lat())
            .expect("venue coordinates are valid");
        self.metrics.attempted.inc();
        let outcome = self.app.check_in(venue).ok();
        if let Some(o) = &outcome {
            if o.rewarded() {
                self.metrics.rewarded.inc();
            } else {
                self.metrics.flagged.inc();
            }
        }
        outcome
    }

    /// Executes a schedule: waits (in virtual time) until each planned
    /// check-in, spoofs the GPS, checks in, and accounts the outcome.
    pub fn execute(&self, schedule: &Schedule) -> CampaignReport {
        self.run(schedule, |venue| {
            self.app.check_in(venue).map(AdmissionOutcome::Processed)
        })
    }

    /// Executes a schedule against a *verified* deployment (§5.1): the
    /// attacker's device physically sits at `true_location` (their
    /// desk) while the spoofed GPS walks the schedule. Each submission
    /// travels with transport evidence carrying the true position, so
    /// any installed verifier stage gets to judge it — dropped
    /// check-ins land in [`CampaignReport::verifier_rejected`].
    pub fn execute_with_evidence(
        &self,
        schedule: &Schedule,
        true_location: GeoPoint,
    ) -> CampaignReport {
        let evidence = CheckinEvidence::local(true_location);
        self.run(schedule, |venue| {
            self.app.check_in_verified(venue, &evidence)
        })
    }

    fn run(
        &self,
        schedule: &Schedule,
        submit: impl Fn(VenueId) -> Result<AdmissionOutcome, CheckinError>,
    ) -> CampaignReport {
        let mut report = CampaignReport::default();
        let mut mayorships: HashSet<VenueId> = HashSet::new();
        // Campaigns are rare, high-value roots: force-sample so every
        // one appears in the trace with one child span per path step.
        let mut campaign = self.metrics.registry.span_forced(obs_names::CAMPAIGN_SPAN);
        campaign.attr("user", self.user().value());
        campaign.attr("steps", schedule.items().len());
        // Consecutive check-ins that evaded the cheater code; recorded
        // into `attack.evasion.streak` whenever a flag ends the run.
        let mut streak: u64 = 0;
        for item in schedule.items() {
            self.server.clock().advance_to(item.at);
            self.emulator
                .debug_monitor()
                .geo_fix(item.location.lon(), item.location.lat())
                .expect("schedule coordinates are valid");
            let mut step = campaign.child(obs_names::STEP_SPAN);
            step.attr("venue", item.venue.value());
            step.attr("at_secs", item.at.secs());
            report.attempted += 1;
            self.metrics.attempted.inc();
            let mut caught = true;
            match submit(item.venue) {
                Ok(AdmissionOutcome::Processed(outcome)) => {
                    if outcome.rewarded() {
                        caught = false;
                        report.rewarded += 1;
                        report.points += outcome.points;
                        report.badges.extend(outcome.new_badges.iter().copied());
                        if outcome.became_mayor && mayorships.insert(item.venue) {
                            report.mayorships_gained.push(item.venue);
                        }
                        if let Some(s) = outcome.special_unlocked {
                            report.specials.push(s);
                        }
                    } else {
                        for &flag in &outcome.flags {
                            step.event_with(|| format!("flag.{flag:?}"));
                        }
                        report.flagged.push((item.venue, outcome.flags));
                        self.metrics.flagged.inc();
                    }
                }
                Ok(AdmissionOutcome::VerifierRejected { verifier }) => {
                    step.event_with(|| format!("verifier.rejected.{verifier}"));
                    report.verifier_rejected += 1;
                    self.metrics.verifier_rejected.inc();
                }
                Err(_) => {
                    step.event("checkin.error");
                    report.flagged.push((item.venue, Vec::new()));
                    self.metrics.flagged.inc();
                }
            }
            if caught {
                self.metrics.evasion_streak.record(streak);
                streak = 0;
            } else {
                self.metrics.rewarded.inc();
                streak += 1;
            }
            step.end();
        }
        if streak > 0 {
            // A campaign that ends clean still contributes its tail.
            self.metrics.evasion_streak.record(streak);
        }
        campaign.attr("rewarded", report.rewarded);
        campaign.attr("flagged", report.flagged.len());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{PacingPolicy, Schedule};
    use lbsn_geo::{destination, GeoPoint};
    use lbsn_server::{ServerConfig, UserSpec, VenueSpec};
    use lbsn_sim::{SimClock, Timestamp};

    fn abq() -> GeoPoint {
        GeoPoint::new(35.0844, -106.6504).unwrap()
    }

    fn city_server(venues: usize) -> (Arc<LbsnServer>, Vec<(VenueId, GeoPoint)>) {
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let list: Vec<_> = (0..venues)
            .map(|i| {
                let loc = destination(abq(), (i * 47 % 360) as f64, 300.0 * (i + 1) as f64);
                (
                    server.register_venue(VenueSpec::new(format!("V{i}"), loc)),
                    loc,
                )
            })
            .collect();
        (server, list)
    }

    #[test]
    fn paced_campaign_is_undetected_and_rewarded() {
        let (server, venues) = city_server(12);
        let user = server.register_user(UserSpec::named("attacker"));
        let session = AttackSession::new(Arc::clone(&server), user);
        let schedule = Schedule::build(&venues, Timestamp(0), &PacingPolicy::default());
        let report = session.execute(&schedule);
        assert_eq!(report.attempted, 12);
        assert_eq!(report.rewarded, 12);
        assert!(report.undetected());
        assert!(report.points > 0);
        assert!(
            report.badges.contains(&lbsn_server::Badge::Adventurer),
            "10+ venues unlocks Adventurer: {:?}",
            report.badges
        );
        // Vacant venues: every check-in took a mayorship.
        assert_eq!(report.mayorships_gained.len(), 12);
    }

    #[test]
    fn unpaced_campaign_gets_flagged() {
        // Same tour but all at the same instant: super-human speed and
        // rapid-fire both bite.
        let (server, venues) = city_server(8);
        let user = server.register_user(UserSpec::named("greedy"));
        let session = AttackSession::new(Arc::clone(&server), user);
        let schedule = Schedule::build(
            &venues,
            Timestamp(0),
            &PacingPolicy {
                min_interval: lbsn_sim::Duration::secs(1),
                per_mile: lbsn_sim::Duration::secs(0),
                venue_cooldown: lbsn_sim::Duration::secs(0),
            },
        );
        let report = session.execute(&schedule);
        assert!(!report.undetected());
        assert!(report.rewarded < report.attempted);
        let u = server.user(user).unwrap();
        assert_eq!(u.total_checkins, 8, "flagged check-ins still count");
        assert!(u.valid_checkins < 8);
    }

    #[test]
    fn badmouthing_a_competitor() {
        // §2.2: a bar owner in Albuquerque trashes the rival across town
        // — having "visited" it via the emulator.
        let (server, venues) = city_server(1);
        let rival = venues[0].0;
        let owner = server.register_user(UserSpec::named("owner"));
        let session = AttackSession::new(Arc::clone(&server), owner);
        assert!(session.badmouth(rival, "Dirty tables, rude staff. Avoid."));
        let v = server.venue(rival).unwrap();
        assert_eq!(v.tips().len(), 1);
        assert_eq!(v.tips()[0].user, owner);
        assert!(v.tips()[0].text.contains("Avoid"));
        // The fake visit shows in the recent-visitor list — the comment
        // reads like a real customer's.
        assert!(v.recent_visitors().contains(&owner));
    }

    #[test]
    fn verified_deployment_drops_the_paced_campaign() {
        // The §3.3 pacing that beats the cheater code is useless against
        // a venue-side WiFi verifier: the attacker's device never left
        // Albuquerque, and the transport evidence says so.
        use lbsn_defense::{RouterRegistry, VerifierStack, VerifierStage, WifiVerifier};
        let routers = Arc::new(RouterRegistry::new());
        let stage = VerifierStage::new(
            VerifierStack::new().push(Box::new(WifiVerifier::narrowed(30.0))),
            Arc::clone(&routers),
        );
        let server = Arc::new(LbsnServer::with_pipeline(
            SimClock::new(),
            ServerConfig::default(),
            Arc::new(lbsn_obs::Registry::new()),
            vec![Box::new(stage)],
        ));
        let venues: Vec<_> = (0..6)
            .map(|i| {
                let loc = destination(abq(), (i * 47 % 360) as f64, 2_000.0 * (i + 1) as f64);
                let v = server.register_venue(VenueSpec::new(format!("V{i}"), loc));
                routers.register(v);
                (v, loc)
            })
            .collect();
        let user = server.register_user(UserSpec::named("caught"));
        let session = AttackSession::new(Arc::clone(&server), user);
        let schedule = Schedule::build(&venues, Timestamp(0), &PacingPolicy::default());
        let home = abq(); // the device never moves
        let report = session.execute_with_evidence(&schedule, home);
        assert_eq!(report.attempted, 6);
        assert_eq!(report.verifier_rejected, 6);
        assert_eq!(report.rewarded, 0);
        assert!(!report.undetected());
        // Dropped, not flagged: nothing was recorded server-side.
        assert!(report.flagged.is_empty());
        assert_eq!(server.user(user).unwrap().total_checkins, 0);
    }

    #[test]
    fn spoof_and_check_in_single_venue() {
        let (server, venues) = city_server(1);
        let user = server.register_user(UserSpec::anonymous());
        let session = AttackSession::new(Arc::clone(&server), user);
        let out = session.spoof_and_check_in(venues[0].0).unwrap();
        assert!(out.rewarded());
        assert!(session.spoof_and_check_in(VenueId(99)).is_none());
    }
}
