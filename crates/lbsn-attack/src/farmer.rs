//! Mayorship farming and mayor-denial attacks (§3.1 experiment, §3.4).

use lbsn_crawler::CrawlDatabase;
use lbsn_server::VenueId;
use lbsn_sim::Duration;

use crate::executor::AttackSession;
use crate::intel::VenueIntel;

/// Result of farming one venue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmResult {
    /// The farmed venue.
    pub venue: VenueId,
    /// Whether the mayorship was taken.
    pub became_mayor: bool,
    /// Daily check-ins spent.
    pub days_spent: u32,
}

/// Farms mayorships by checking in once per (virtual) day — the paper's
/// §3.1 experiment: "we kept checking in to it once a day for 4
/// consecutive days. After 9 days, we had found our test user became the
/// mayor of the venue."
#[derive(Debug)]
pub struct MayorFarmer<'a> {
    session: &'a AttackSession,
}

impl<'a> MayorFarmer<'a> {
    /// Wraps an attack session.
    pub fn new(session: &'a AttackSession) -> Self {
        MayorFarmer { session }
    }

    /// Checks in daily until mayor or until `max_days` is exhausted.
    ///
    /// Each attempt waits 25 virtual hours: a beat over a day keeps the
    /// attempts on distinct days *and* keeps every hop — including the
    /// teleport from the previously farmed venue, which may be across
    /// the country — outside the super-human-speed rule's 24-hour
    /// window. An unpaced farmer gets branded within a handful of
    /// venues.
    pub fn farm(&self, venue: VenueId, max_days: u32) -> FarmResult {
        let clock = self.session.server().clock();
        for day in 1..=max_days {
            clock.advance(Duration::hours(25));
            let outcome = self.session.spoof_and_check_in(venue);
            let is_mayor = outcome.as_ref().map(|o| o.is_mayor).unwrap_or(false);
            if is_mayor {
                return FarmResult {
                    venue,
                    became_mayor: true,
                    days_spent: day,
                };
            }
        }
        FarmResult {
            venue,
            became_mayor: false,
            days_spent: max_days,
        }
    }

    /// Farms every venue in a target list (e.g.
    /// [`VenueIntel::unclaimed_mayor_specials`]), spending at most
    /// `max_days_each` per venue. Dormant venues fall on day one — how a
    /// single account accumulates hundreds of mayorships (the paper's
    /// 865-mayorship user).
    pub fn farm_all(&self, venues: &[VenueId], max_days_each: u32) -> Vec<FarmResult> {
        venues
            .iter()
            .map(|v| self.farm(*v, max_days_each))
            .collect()
    }
}

/// Result of a mayor-denial campaign against one victim.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenialReport {
    /// The venues the victim was mayor of when the attack started.
    pub targeted: Vec<VenueId>,
    /// The venues successfully taken from the victim.
    pub taken: Vec<VenueId>,
}

impl DenialReport {
    /// Fraction of the victim's mayorships captured.
    pub fn capture_rate(&self) -> f64 {
        if self.targeted.is_empty() {
            0.0
        } else {
            self.taken.len() as f64 / self.targeted.len() as f64
        }
    }
}

/// The §3.4 mayor-denial attack: "to stop a user from getting any
/// mayorship, the attacker will analyze venue profiles and find venues
/// that the victim user is mayor of … then apply an automated cheating
/// attack on those venues."
///
/// For each venue in the victim's crawled portfolio, the attacker checks
/// in daily until the mayorship flips (needs strictly more active days
/// in the 60-day window than the incumbent).
pub fn deny_mayorships(
    session: &AttackSession,
    victim: u64,
    db: &CrawlDatabase,
    max_days_each: u32,
) -> DenialReport {
    let intel = VenueIntel::new(db);
    let portfolio = intel.mayorships_of(victim);
    let mut report = DenialReport::default();
    for row in &portfolio {
        let venue = VenueId(row.id);
        report.targeted.push(venue);
        let result = MayorFarmer::new(session).farm(venue, max_days_each);
        if result.became_mayor {
            report.taken.push(venue);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_geo::{destination, GeoPoint};
    use lbsn_server::{
        CheckinRequest, CheckinSource, LbsnServer, ServerConfig, UserSpec, VenueSpec,
    };
    use lbsn_sim::SimClock;
    use std::sync::Arc;

    fn abq() -> GeoPoint {
        GeoPoint::new(35.0844, -106.6504).unwrap()
    }

    fn setup(venues: usize) -> (Arc<LbsnServer>, Vec<VenueId>) {
        let server = Arc::new(LbsnServer::new(SimClock::new(), ServerConfig::default()));
        let ids = (0..venues)
            .map(|i| {
                server.register_venue(VenueSpec::new(
                    format!("V{i}"),
                    destination(abq(), (i * 31 % 360) as f64, 400.0 * (i + 1) as f64),
                ))
            })
            .collect();
        (server, ids)
    }

    #[test]
    fn vacant_venue_farmed_in_one_day() {
        let (server, venues) = setup(1);
        let user = server.register_user(UserSpec::anonymous());
        let session = AttackSession::new(Arc::clone(&server), user);
        let result = MayorFarmer::new(&session).farm(venues[0], 10);
        assert!(result.became_mayor);
        assert_eq!(result.days_spent, 1);
    }

    #[test]
    fn defended_venue_takes_more_days_than_incumbent_has() {
        let (server, venues) = setup(1);
        let venue = venues[0];
        // An honest local checks in for 3 days first.
        let local = server.register_user(UserSpec::named("local"));
        let loc = server.venue(venue).unwrap().location;
        for _ in 0..3 {
            server
                .check_in(&CheckinRequest {
                    user: local,
                    venue,
                    reported_location: loc,
                    source: CheckinSource::MobileApp,
                })
                .unwrap();
            server.clock().advance(Duration::days(1));
        }
        assert_eq!(server.venue(venue).unwrap().mayor, Some(local));

        let attacker = server.register_user(UserSpec::named("attacker"));
        let session = AttackSession::new(Arc::clone(&server), attacker);
        let result = MayorFarmer::new(&session).farm(venue, 10);
        assert!(result.became_mayor);
        // Must strictly exceed the incumbent's 3 days: 4 days needed.
        assert_eq!(result.days_spent, 4);
        assert_eq!(server.venue(venue).unwrap().mayor, Some(attacker));
    }

    #[test]
    fn farm_all_accumulates_portfolio() {
        let (server, venues) = setup(5);
        let user = server.register_user(UserSpec::anonymous());
        let session = AttackSession::new(Arc::clone(&server), user);
        let results = MayorFarmer::new(&session).farm_all(&venues, 3);
        assert!(results.iter().all(|r| r.became_mayor));
        assert_eq!(server.user(user).unwrap().mayorships.len(), 5);
    }

    #[test]
    fn denial_takes_victims_crown() {
        let (server, venues) = setup(2);
        let victim = server.register_user(UserSpec::named("victim"));
        for &venue in &venues {
            let loc = server.venue(venue).unwrap().location;
            server
                .check_in(&CheckinRequest {
                    user: victim,
                    venue,
                    reported_location: loc,
                    source: CheckinSource::MobileApp,
                })
                .unwrap();
            server.clock().advance(Duration::hours(2));
        }
        // Crawl the venue profiles (shortcut: hand-build rows).
        let db = CrawlDatabase::new();
        for &venue in &venues {
            let v = server.venue(venue).unwrap();
            db.insert_venue(lbsn_crawler::VenueInfoRow {
                id: venue.value(),
                name: v.name().to_string(),
                address: v.address().to_string(),
                category: "Other".into(),
                location: v.location,
                checkins_here: v.checkins_here,
                unique_visitors: v.unique_visitors().len() as u64,
                special: None,
                tips: 0,
                mayor: v.mayor.map(|m| m.value()),
                recent_visitors: vec![],
            });
        }
        let attacker = server.register_user(UserSpec::named("attacker"));
        let session = AttackSession::new(Arc::clone(&server), attacker);
        let report = deny_mayorships(&session, victim.value(), &db, 10);
        assert_eq!(report.targeted.len(), 2);
        assert_eq!(report.taken.len(), 2);
        assert_eq!(report.capture_rate(), 1.0);
        assert!(server.user(victim).unwrap().mayorships.is_empty());
    }

    #[test]
    fn denial_of_unknown_victim_is_empty() {
        let (server, _) = setup(1);
        let attacker = server.register_user(UserSpec::anonymous());
        let session = AttackSession::new(Arc::clone(&server), attacker);
        let db = CrawlDatabase::new();
        let report = deny_mayorships(&session, 12345, &db, 5);
        assert!(report.targeted.is_empty());
        assert_eq!(report.capture_rate(), 0.0);
    }
}
