//! "Autosquare": the pre-verification-era auto-check-in tool.
//!
//! §2.2: "the check-ins to any place a user can find in the Foursquare
//! client application (using the suggested list of nearby venues,
//! searching for a venue by name, or browsing and locating the venue on
//! the map) were valid. Software tools are available on the market that
//! can automatically check people into their desired venues, e.g.,
//! 'Autosquare' for Android. The basic cheating method worked in the
//! early days of Foursquare … and obviously does not work now after the
//! introduction of location verification."
//!
//! This module is that tool: given venue names, it searches the public
//! API and checks in on a timer — no GPS involvement at all. Against a
//! server with the cheater code enabled, everything it does is flagged;
//! against [`CheaterCodeConfig::disabled`]
//! (the pre-April-2010 service) it farms rewards freely — both halves
//! are the historical record.
//!
//! [`CheaterCodeConfig::disabled`]: lbsn_server::cheatercode::CheaterCodeConfig::disabled

use std::sync::Arc;

use lbsn_geo::GeoPoint;
use lbsn_server::api::ApiClient;
use lbsn_server::{LbsnServer, UserId};
use lbsn_sim::Duration;

/// Results of one Autosquare run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AutosquareReport {
    /// Venue names that matched nothing.
    pub not_found: Vec<String>,
    /// Check-ins that earned rewards.
    pub rewarded: u64,
    /// Check-ins the service refused to reward.
    pub flagged: u64,
}

/// The auto-check-in tool: searches venues by name, checks in on a
/// fixed interval, reports nothing about location because it has no
/// location to report beyond what it claims.
#[derive(Debug)]
pub struct Autosquare {
    api: ApiClient,
    user: UserId,
    /// Interval between automatic check-ins.
    pub interval: Duration,
    /// The coordinates the tool reports. The historical tool predates
    /// GPS verification and sent none; against a verifying server this
    /// field is what it claims (defaults to wherever the user "is").
    pub claimed_location: GeoPoint,
}

impl Autosquare {
    /// Installs the tool for `user`, claiming `claimed_location` on
    /// every check-in.
    pub fn new(server: Arc<LbsnServer>, user: UserId, claimed_location: GeoPoint) -> Self {
        Autosquare {
            api: ApiClient::new(server),
            user,
            interval: Duration::minutes(30),
            claimed_location,
        }
    }

    /// Auto-checks into every venue matching the given names, spacing
    /// check-ins by `interval`.
    pub fn run(&self, server: &LbsnServer, venue_names: &[&str]) -> AutosquareReport {
        let mut report = AutosquareReport::default();
        for name in venue_names {
            let matches = self.api.search_venues(name, 1);
            let Some(venue) = matches.first() else {
                report.not_found.push((*name).to_string());
                continue;
            };
            match self.api.checkin(self.user, venue.id, self.claimed_location) {
                Ok(outcome) if outcome.rewarded() => report.rewarded += 1,
                Ok(_) => report.flagged += 1,
                Err(_) => report.not_found.push((*name).to_string()),
            }
            server.clock().advance(self.interval);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsn_geo::destination;
    use lbsn_server::cheatercode::CheaterCodeConfig;
    use lbsn_server::{ServerConfig, UserSpec, VenueSpec};
    use lbsn_sim::SimClock;

    fn abq() -> GeoPoint {
        GeoPoint::new(35.0844, -106.6504).unwrap()
    }

    fn world(cheater_code: CheaterCodeConfig) -> (Arc<LbsnServer>, UserId) {
        let server = Arc::new(LbsnServer::new(
            SimClock::new(),
            ServerConfig::with_detectors(cheater_code),
        ));
        // Venues all over the country, far from the user's claim.
        for (i, name) in ["Blue Bistro", "Golden Gate Bridge", "Joe's Diner"]
            .iter()
            .enumerate()
        {
            server.register_venue(VenueSpec::new(
                *name,
                destination(abq(), (i * 100) as f64, 500_000.0 * (i + 1) as f64),
            ));
        }
        let user = server.register_user(UserSpec::named("autosquare-user"));
        (server, user)
    }

    #[test]
    fn farms_freely_in_the_early_days() {
        // Pre-April-2010: no location verification at all.
        let (server, user) = world(CheaterCodeConfig::disabled());
        let tool = Autosquare::new(Arc::clone(&server), user, abq());
        let report = tool.run(&server, &["Blue Bistro", "Golden Gate", "Joe's"]);
        assert_eq!(report.rewarded, 3);
        assert_eq!(report.flagged, 0);
        assert!(report.not_found.is_empty());
    }

    #[test]
    fn obviously_does_not_work_now() {
        // The modern service: the same run is flagged wholesale (GPS
        // mismatch on every distant venue).
        let (server, user) = world(CheaterCodeConfig::default());
        let tool = Autosquare::new(Arc::clone(&server), user, abq());
        let report = tool.run(&server, &["Blue Bistro", "Golden Gate", "Joe's"]);
        assert_eq!(report.rewarded, 0);
        assert_eq!(report.flagged, 3);
        // The check-ins still count toward totals, as always.
        assert_eq!(server.user(user).unwrap().total_checkins, 3);
    }

    #[test]
    fn unknown_names_reported() {
        let (server, user) = world(CheaterCodeConfig::disabled());
        let tool = Autosquare::new(Arc::clone(&server), user, abq());
        let report = tool.run(&server, &["No Such Place"]);
        assert_eq!(report.not_found, vec!["No Such Place".to_string()]);
        assert_eq!(report.rewarded + report.flagged, 0);
    }
}
