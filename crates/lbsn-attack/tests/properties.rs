//! Property tests: any tour, scheduled under the pacing policy, obeys
//! every cheater-code bound — the attack's core safety guarantee.

use lbsn_attack::{PacingPolicy, Schedule, VenueSnapper, VirtualPath};
use lbsn_geo::{destination, distance, GeoPoint};
use lbsn_server::VenueId;
use lbsn_sim::{Duration, Timestamp};
use proptest::prelude::*;

fn abq() -> GeoPoint {
    GeoPoint::new(35.0844, -106.6504).unwrap()
}

fn arb_tour() -> impl Strategy<Value = Vec<(VenueId, GeoPoint)>> {
    prop::collection::vec((1u64..40, 0.0..360.0f64, 0.0..30_000.0f64), 1..40).prop_map(|stops| {
        stops
            .into_iter()
            .map(|(id, bearing, dist)| (VenueId(id), destination(abq(), bearing, dist)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The schedule never implies super-human speed, never violates the
    /// same-venue cooldown, and never allows a rapid-fire burst.
    #[test]
    fn schedules_always_evade_the_cheater_code(tour in arb_tour()) {
        let policy = PacingPolicy::default();
        let schedule = Schedule::build(&tour, Timestamp(1_000), &policy);
        let items = schedule.items();
        prop_assert!(items.len() <= tour.len());
        for w in items.windows(2) {
            let gap = w[1].at.since(w[0].at);
            // Rapid-fire needs sub-minute intervals; 5-minute floor.
            prop_assert!(gap >= Duration::minutes(5));
            // Speed stays far under 40 m/s.
            let d = distance(w[0].location, w[1].location);
            let speed = d / gap.as_secs() as f64;
            prop_assert!(speed <= 6.0, "speed {speed} m/s over {d} m");
        }
        // Same-venue revisits obey the one-hour cooldown.
        for (i, a) in items.iter().enumerate() {
            for b in &items[i + 1..] {
                if a.venue == b.venue {
                    prop_assert!(b.at.since(a.at) > Duration::hours(1));
                }
            }
        }
        // Time ordering is strict enough to execute.
        for w in items.windows(2) {
            prop_assert!(w[0].at < w[1].at);
        }
    }

    /// Aggressive policies still produce ordered schedules (they just
    /// get caught when executed).
    #[test]
    fn any_policy_yields_ordered_schedule(
        tour in arb_tour(),
        min_s in 0u64..600,
        per_mile_s in 0u64..600,
    ) {
        let policy = PacingPolicy {
            min_interval: Duration::secs(min_s),
            per_mile: Duration::secs(per_mile_s),
            venue_cooldown: Duration::hours(1),
        };
        let schedule = Schedule::build(&tour, Timestamp(0), &policy);
        for w in schedule.items().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    /// Snapping is idempotent and always returns an indexed venue.
    #[test]
    fn snap_returns_member_of_index(
        venues in prop::collection::vec((0.0..360.0f64, 0.0..20_000.0f64), 1..60),
        probe_bearing in 0.0..360.0f64,
        probe_dist in 0.0..25_000.0f64,
    ) {
        let list: Vec<(VenueId, GeoPoint)> = venues
            .iter()
            .enumerate()
            .map(|(i, (b, d))| (VenueId(i as u64 + 1), destination(abq(), *b, *d)))
            .collect();
        let snapper = VenueSnapper::from_venues(list.iter().copied());
        let probe = destination(abq(), probe_bearing, probe_dist);
        let (id, snap_dist) = snapper.snap(probe).unwrap();
        let loc = list.iter().find(|(v, _)| *v == id).map(|(_, l)| *l).unwrap();
        // The snap distance matches the actual distance, and no other
        // venue is meaningfully closer.
        prop_assert!((distance(probe, loc) - snap_dist).abs() < snap_dist.max(1.0) * 0.02 + 1.0);
        for (_, other) in &list {
            prop_assert!(distance(probe, *other) + 2.0 >= snap_dist);
        }
    }

    /// Virtual paths have exactly the requested number of waypoints and
    /// consecutive waypoints are one step apart.
    #[test]
    fn circuit_geometry(steps in 1usize..60, straight in 1usize..10, step_deg in 0.001..0.02f64) {
        let path = VirtualPath::clockwise_circuit(abq(), step_deg, steps, straight);
        prop_assert_eq!(path.len(), steps + 1);
        let step_m = step_deg * lbsn_geo::METERS_PER_DEGREE_LAT;
        for w in path.points.windows(2) {
            let d = distance(w[0], w[1]);
            prop_assert!((d - step_m).abs() < step_m * 0.02 + 1.0, "step {d} vs {step_m}");
        }
    }
}
